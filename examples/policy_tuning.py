"""Tuning the proxy's prefetching policy (§4.4, Figs. 9 and 17).

Demonstrates every configuration knob on the Wish proxy:

* probabilistic prefetching (the latency/data trade-off of Fig. 17),
* per-signature disable + expiration times,
* the ``add_header`` prefetch indicator,
* field-specific conditions ("only prefetch items over $40").

Usage::

    python examples/policy_tuning.py
"""

from repro.analysis import analyze_apk
from repro.apps import get_app
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.proxy import AccelerationProxy, ProxiedTransport, default_config
from repro.proxy.config import Condition
from repro.server.content import Catalog


def run_session(spec, analysis, config):
    sim = Simulator()
    origins, servers = spec.build_origin_map(sim, Catalog())
    proxy = AccelerationProxy(sim, origins, analysis, config=config)
    runtime = AppRuntime(
        spec.build_apk(),
        ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy),
        sim,
        spec.default_profile(),
    )

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        result = yield sim.spawn(runtime.dispatch("select_item", 3))
        return result

    result = sim.run_process(flow())
    return result.latency, proxy


def main():
    spec = get_app("wish")
    analysis = analyze_apk(spec.build_apk())

    print("== Probability sweep (Fig. 17's knob) ==")
    print("{:>6} {:>12} {:>12}".format("prob", "latency", "prefetched"))
    for probability in (0.0, 0.5, 1.0):
        config = default_config(analysis)
        config.global_probability = probability
        latency, proxy = run_session(spec, analysis, config)
        print("{:>5.0f}% {:>10.0f}ms {:>12}".format(
            100 * probability, 1000 * latency, proxy.prefetcher.issued))

    print()
    print("== Field condition: prefetch details only for items over $40 ==")
    config = default_config(analysis)
    detail_site = next(s.site for s in analysis.signatures if "postDetail" in s.site)
    config.policy(detail_site).condition = Condition("price", "gt", "40")
    latency, proxy = run_session(spec, analysis, config)
    print("  latency {:.0f} ms; {} prefetches skipped by the condition".format(
        1000 * latency, proxy.prefetcher.skipped_condition))

    print()
    print("== Prefetch indicator header (like Firefox's X-moz: prefetch) ==")
    config = default_config(analysis)
    for site in config.policies:
        config.policies[site].add_header = [("X-APPx", "prefetch")]
    latency, proxy = run_session(spec, analysis, config)
    print("  latency {:.0f} ms; the origin can now separate proxy traffic "
          "from real views".format(1000 * latency))

    print()
    print("== Tight expiration: stale entries are never served ==")
    config = default_config(analysis)
    for site in config.policies:
        config.policies[site].expiration_time = 1.0
    latency, proxy = run_session(spec, analysis, config)
    print("  latency {:.0f} ms; expired evictions: {}".format(
        1000 * latency, proxy.cache.expired_evictions))


if __name__ == "__main__":
    main()
