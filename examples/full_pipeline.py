"""The complete three-phase APPx pipeline on one app (Fig. 4).

Phase 1  automatic proxy generation — static analysis of the binary.
Phase 2  testing & verification — UI fuzzing through the proxy against
         sandbox origins; failing reconstructions get disabled and
         per-signature expiration times are estimated by probing.
Phase 3  configuration — the generated initial configuration is shown
         and then customized (a side-effect ban and a field condition),
         before a "deployment" run demonstrates the effect.

Usage::

    python examples/full_pipeline.py [app]

where ``app`` is one of wish, geek, doordash, purple_ocean, postmates.
"""

import sys

from repro.analysis import analyze_apk
from repro.apps import get_app
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.proxy import AccelerationProxy, ProxiedTransport
from repro.proxy.verification import run_verification
from repro.server.content import Catalog


def main():
    app_name = sys.argv[1] if len(sys.argv) > 1 else "wish"
    spec = get_app(app_name)
    apk = spec.build_apk()

    print("=== Phase 1: static program analysis ===")
    analysis = analyze_apk(apk)
    for signature in analysis.signatures:
        print("  {:<40} variants={} side_effect={}".format(
            signature.site, len(signature.variants), signature.side_effect))
    print("  dependencies:")
    for edge in analysis.dependencies:
        print("    {}:{}".format(edge.pred_site, edge.pred_path.to_string()))
        print("      -> {}:{}".format(edge.succ_site, edge.succ_path.to_string()))

    print()
    print("=== Phase 2: testing & verification (UI fuzzing + expiry probes) ===")
    config, report = run_verification(
        apk,
        analysis,
        build_origin_map=lambda sim: spec.build_origin_map(sim, Catalog())[0],
        profile=spec.default_profile("verify-user"),
        fuzz_duration=90.0,
    )
    print("  fuzz interactions: {}".format(report.fuzz_interactions))
    print("  prefetch successes per signature:")
    for site, count in sorted(report.prefetch_successes.items()):
        print("    {:<40} {}".format(site, count))
    if report.disabled:
        print("  disabled by verification: {}".format(report.disabled))
    print("  estimated expiration times:")
    for site, expiry in sorted(report.expiry_estimates.items()):
        print("    {:<40} {:>7.0f} s".format(site, expiry))

    print()
    print("=== Phase 3: configuration ===")
    print(config.to_json()[:800] + "\n  ... (truncated)")

    print()
    print("=== Deployment: accelerated session ===")
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog())
    from repro.proxy.learning import DynamicLearner

    proxy = AccelerationProxy(
        sim, origins, analysis, config=config,
        learner=DynamicLearner(analysis, store=report.seed_store.global_snapshot()),
    )
    runtime = AppRuntime(
        apk, ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy),
        sim, spec.default_profile("demo-user"),
    )

    def session():
        launch = yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        main_result = yield sim.spawn(runtime.dispatch(*spec.main_flow[-1]))
        return launch, main_result

    launch, main_result = sim.run_process(session())
    print("  launch: {:.0f} ms   {}: {:.0f} ms".format(
        1000 * launch.latency, spec.main_flow[-1][0], 1000 * main_result.latency))
    print("  proxy: {}".format(proxy.stats()))


if __name__ == "__main__":
    main()
