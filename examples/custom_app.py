"""Accelerate *your own* app: build a program with the DSL, analyze it,
wire an origin server, and watch the generated proxy prefetch.

This is the path a new user of the framework takes for an app that is
not one of the paper's five: write (or decompile into) the mini-IR,
point APPx at it, and get an acceleration proxy out.

Usage::

    python examples/custom_app.py
"""

from repro.analysis import analyze_apk
from repro.apk import AppBuilder, MethodBuilder
from repro.apk.builder import Lit
from repro.device.runtime import AppRuntime
from repro.device.profile import DeviceProfile
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy import AccelerationProxy, ProxiedTransport
from repro.server.origin import OriginServer

API = "https://api.weatherly.example"


def build_weather_app():
    """A tiny weather app: city list -> per-city forecast + radar tile."""
    app = AppBuilder("com.example.weatherly", "Weatherly")
    app.config_default("api_host", API)
    app.config_default("units", "metric")

    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/cities"))
    req = m.new_request("GET", url)
    m.add_header(req, "User-Agent", m.user_agent())
    resp = m.execute(req)
    body = m.body_json(resp)
    cities = m.json_get(body, "cities")
    m.put_field("this", "cities", cities)
    m.render(body)
    app.method("CityListActivity", m)

    m = MethodBuilder("onCityClick", params=["this", "index"])
    cities = m.get_field("this", "cities")
    city = m.invoke("Json.index", cities, "index")
    city_id = m.json_get(city, "id")
    intent = m.intent_new()
    m.intent_put(intent, "city", city_id)
    m.start_component(intent, "forecast")
    app.method("CityListActivity", m)

    m = MethodBuilder("onStart", params=["this", "intent"])
    city_id = m.intent_get("intent", "city")
    furl = m.concat(m.config("api_host"), m.const("/forecast?city="), city_id)
    freq = m.new_request("GET", furl)
    m.add_query(freq, "units", m.config("units"))
    fresp = m.execute(freq)
    forecast = m.body_json(fresp)
    tile = m.json_get(forecast, "radar_tile")
    turl = m.concat(m.config("api_host"), m.const("/tiles/"), tile, m.const(".png"))
    treq = m.new_request("GET", turl)
    m.body_blob(m.execute(treq))
    m.render(forecast)
    app.method("ForecastActivity", m)

    app.component("cities", "CityListActivity", screen="cities", main=True)
    app.component("forecast", "ForecastActivity", screen="forecast")
    app.screen("cities")
    app.event("cities", "select_city", "CityListActivity.onCityClick",
              takes_index=True, description="open a city's forecast")
    app.screen("forecast")
    return app.build()


def build_weather_server(sim):
    """Matching origin backend."""
    from repro.httpmsg.body import BlobBody
    from repro.httpmsg.message import Response
    from repro.server.content import stable_id

    server = OriginServer(sim, API)

    def cities(server, request, user):
        return server.json({
            "cities": [
                {"id": stable_id("weather", i), "name": "City {}".format(i)}
                for i in range(8)
            ]
        })

    def forecast(server, request, user):
        city = request.uri.query_get("city", "")
        return server.json({
            "city": city,
            "temperature_c": 11 + (int(city, 16) % 20),
            "radar_tile": "tile-{}".format(city),
        })

    def tile(server, request, user):
        name = request._captures["name"]
        return Response(200, body=BlobBody(name, 55_000, "image/png"))

    server.route("GET", "/cities", cities, service_time=0.20)
    server.route("GET", "/forecast", forecast, service_time=0.25)
    server.route("GET", "/tiles/<name>", tile, service_time=0.01)
    return server


def main():
    apk = build_weather_app()
    print("== Analyzing Weatherly ==")
    analysis = analyze_apk(apk)
    for edge in analysis.dependencies:
        print("  {} --> {}".format(edge.pred_site, edge.succ_site))

    sim = Simulator()
    origins = OriginMap()
    origins.register(API, build_weather_server(sim), Link(rtt=0.120, name=API))
    proxy = AccelerationProxy(sim, origins, analysis)
    runtime = AppRuntime(
        apk,
        ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy),
        sim,
        DeviceProfile(user="weather-fan"),
    )

    def flow():
        launch = yield sim.spawn(runtime.launch())
        yield Delay(4.0)
        # first visit: the proxy has never seen a forecast request, so
        # the `units` query value is still unknown — dynamic learning
        # fills it in from this very transaction (§4.2)
        first = yield sim.spawn(runtime.dispatch("select_city", 3))
        yield Delay(4.0)
        # back on the city list; by now every city's forecast (and its
        # radar tile) sits in the prefetch cache
        yield sim.spawn(runtime.launch())
        yield Delay(4.0)
        second = yield sim.spawn(runtime.dispatch("select_city", 5))
        return launch, first, second

    launch, first, second = sim.run_process(flow())
    print()
    print("launch:          {:.0f} ms".format(1000 * launch.latency))
    print("first forecast:  {:.0f} ms  (cold: proxy still learning)".format(
        1000 * first.latency))
    print("second forecast: {:.0f} ms  ({} responses served from cache)".format(
        1000 * second.latency, proxy.served_prefetched))
    assert proxy.served_prefetched >= 1, "the proxy should have prefetched"
    assert second.latency < first.latency


if __name__ == "__main__":
    main()
