"""Replay a synthetic user study through the acceleration proxy.

Mirrors the paper's §6.2 methodology: N participants freely use the app
for three minutes each; their event traces replay in virtual time with
and without the proxy, and the script reports per-interaction latency
percentiles plus the proxy's data-usage overhead.

Usage::

    python examples/user_study_replay.py [app] [participants]
"""

import sys

from repro.experiments.runner import user_study_run
from repro.metrics.stats import median, percentile


def main():
    app_name = sys.argv[1] if len(sys.argv) > 1 else "doordash"
    participants = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print("Replaying {} participants on {} (3 minutes each)...".format(
        participants, app_name))
    original = user_study_run(app_name, proxied=False, participants=participants)
    accelerated = user_study_run(app_name, proxied=True, participants=participants)

    orig = original["main_latencies"]
    appx = accelerated["main_latencies"]
    print()
    print("Main interaction ({} samples):".format(len(orig)))
    print("            {:>10} {:>10}".format("Orig", "APPx"))
    print("  median    {:>9.0f}ms {:>9.0f}ms".format(1000 * median(orig), 1000 * median(appx)))
    print("  90%-tile  {:>9.0f}ms {:>9.0f}ms".format(
        1000 * percentile(orig, 90), 1000 * percentile(appx, 90)))
    print("  reduction (median): {:.0f}%".format(
        100 * (1 - median(appx) / median(orig))))
    print()
    usage = accelerated["server_bytes"] / original["demand_bytes"]
    print("Data usage (proxy<->server, normalized to no-prefetch): {:.2f}x".format(usage))
    print()
    stats = accelerated["proxy_stats"]
    print("Proxy: issued {issued} prefetches, served {served_prefetched} "
          "from cache, forwarded {forwarded}".format(**stats))


if __name__ == "__main__":
    main()
