"""Quickstart: analyze an app, generate its proxy, measure the speedup.

Runs the whole APPx pipeline on the Wish model in under a minute:

1. static analysis of the app binary (signatures + dependencies),
2. an accelerated vs direct run of the app's main interaction,
3. a summary of what the proxy did.

Usage::

    python examples/quickstart.py
"""

from repro.analysis import analyze_apk
from repro.apps import get_app
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport
from repro.proxy import AccelerationProxy, ProxiedTransport
from repro.server.content import Catalog


def browse(spec, analysis, proxied):
    """Launch the app, think, open an item; return (latency, proxy)."""
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog())
    access = Link(rtt=0.055, bandwidth_bps=25e6, shared=True)
    proxy = None
    if proxied:
        proxy = AccelerationProxy(sim, origins, analysis)
        transport = ProxiedTransport(sim, access, proxy)
    else:
        transport = DirectTransport(sim, access, origins)
    runtime = AppRuntime(spec.build_apk(), transport, sim, spec.default_profile())

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)  # the user looks at the feed
        result = yield sim.spawn(runtime.dispatch(*spec.main_flow[-1]))
        return result

    result = sim.run_process(flow())
    return result, proxy


def main():
    spec = get_app("wish")
    apk = spec.build_apk()
    print("== Static analysis of {} ({} IR instructions) ==".format(
        spec.label, apk.instruction_count()))
    analysis = analyze_apk(apk)
    summary = analysis.summary()
    print("signatures: {signatures}  prefetchable: {prefetchable}  "
          "dependencies: {dependencies}  longest chain: {max_chain}".format(**summary))
    print()
    for signature in analysis.signatures:
        marker = "*" if signature.is_successor() else " "
        print("  {} {:<38} {} {}".format(
            marker, signature.site, signature.request.method,
            signature.request.uri.regex()))
    print("  (* = successor: prefetchable from a predecessor's response)")
    print()

    original, _ = browse(spec, analysis, proxied=False)
    accelerated, proxy = browse(spec, analysis, proxied=True)
    reduction = 100 * (1 - accelerated.latency / original.latency)
    print("== Main interaction: {} ==".format(spec.main_interaction))
    print("  without proxy: {:.0f} ms".format(1000 * original.latency))
    print("  with APPx:     {:.0f} ms  ({:.0f}% lower)".format(
        1000 * accelerated.latency, reduction))
    print()
    stats = proxy.stats()
    print("== Proxy activity ==")
    print("  prefetches issued: {}   served from cache: {}".format(
        stats["issued"], stats["served_prefetched"]))
    print("  origin bytes (demand): {:,}   (incl. prefetch): {:,}".format(
        stats["server_bytes_demand"], stats["server_bytes_total"]))


if __name__ == "__main__":
    main()
