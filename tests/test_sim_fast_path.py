"""Fast-path scheduler vs heap-only compat scheduler.

``Simulator(fast_path=False)`` keeps the seed's pure-heap loop as the
differential oracle: both modes must produce the same callback order,
the same virtual timestamps, and the same return values on workloads
that mix zero-delay spawn chains, timed delays, events, timeouts,
errors, and interrupts.
"""

import pytest

from repro.metrics.perf import PERF
from repro.netsim.sim import Delay, Event, Process, Simulator, Timeout


# ======================================================================
# differential: identical traces in both modes
# ======================================================================
def spawn_heavy_workload(sim, trace):
    """Nested spawn chains + ties in time + failures, fully recorded."""

    def leaf(tag, delay):
        trace.append(("leaf-start", tag, sim.now))
        if delay:
            yield Delay(delay)
        trace.append(("leaf-end", tag, sim.now))
        return tag

    def failing():
        yield Delay(0.05)
        raise ValueError("boom")

    def mid(tag):
        first = yield sim.spawn(leaf(tag + ".a", 0.0))
        second = yield sim.spawn(leaf(tag + ".b", 0.1))
        try:
            yield sim.spawn(failing())
        except ValueError as error:
            trace.append(("caught", tag, str(error), sim.now))
        return first, second

    def root():
        # multi-spawn-then-wait: children start in spawn order even
        # though the parent only waits afterwards
        children = [sim.spawn(mid("m{}".format(i))) for i in range(3)]
        gate = sim.event()
        sim.schedule(0.2, gate.succeed, "gated")
        trace.append(("gate", (yield gate), sim.now))
        timeout = sim.timeout(0.01)
        yield timeout
        results = []
        for child in children:
            results.append((yield child))
        trace.append(("done", sim.now))
        return results

    return root


def run_workload(fast_path):
    sim = Simulator(fast_path=fast_path)
    trace = []
    value = sim.run_process(spawn_heavy_workload(sim, trace)())
    return trace, value, sim.now


def test_fast_path_trace_identical_to_compat():
    fast = run_workload(True)
    compat = run_workload(False)
    assert fast == compat


def test_default_fast_path_toggle_controls_new_simulators():
    assert Simulator().fast_path is True
    try:
        Simulator.default_fast_path = False
        assert Simulator().fast_path is False
        assert Simulator(fast_path=True).fast_path is True
    finally:
        Simulator.default_fast_path = True


def test_run_until_identical_in_both_modes():
    def clocked(sim, ticks):
        def process():
            for _ in range(10):
                yield Delay(0.1)
                ticks.append(sim.now)

        return process

    outcomes = []
    for fast_path in (True, False):
        sim = Simulator(fast_path=fast_path)
        ticks = []
        sim.spawn(clocked(sim, ticks)())
        stopped = sim.run(until=0.35)
        outcomes.append((ticks, stopped, sim.now))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][1] == 0.35


def test_interrupt_identical_in_both_modes():
    def run(fast_path):
        sim = Simulator(fast_path=fast_path)
        log = []

        def worker():
            log.append("started")
            yield Delay(1.0)
            log.append("never")

        process = sim.spawn(worker())
        sim.run(until=0.5)
        process.interrupt()
        sim.run()
        return log, process.alive, process.triggered

    assert run(True) == run(False) == (["started"], False, False)


# ======================================================================
# fast-path internals
# ======================================================================
def test_inline_start_counter_increments_on_spawn_chains():
    sim = Simulator()

    def child():
        yield Delay(0.0)
        return 1

    def parent():
        total = 0
        for _ in range(5):
            total += yield sim.spawn(child())
        return total

    with PERF.capture():
        assert sim.run_process(parent()) == 5
        inline_starts = PERF.get("sim.inline_starts")
        events = PERF.get("sim.events")
    assert inline_starts == 5
    assert events > 0


def test_compat_mode_never_inlines():
    sim = Simulator(fast_path=False)

    def child():
        yield Delay(0.0)
        return 1

    def parent():
        value = yield sim.spawn(child())
        return value

    with PERF.capture():
        assert sim.run_process(parent()) == 1
        assert PERF.get("sim.inline_starts") == 0


def test_slots_reject_stray_attributes():
    sim = Simulator()
    event = Event(sim)
    with pytest.raises(AttributeError):
        event.stray = 1
    with pytest.raises(AttributeError):
        Delay(1.0).stray = 1
    with pytest.raises(AttributeError):
        Timeout(sim, 1.0).stray = 1

    def noop():
        yield Delay(0.0)

    with pytest.raises(AttributeError):
        Process(sim, noop()).stray = 1
