"""Small unit tests across remaining surfaces."""

import pytest

from repro.device.profile import DeviceProfile
from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.netsim.link import Link
from repro.netsim.transport import OriginMap


# -- DeviceProfile ------------------------------------------------------------
def test_profile_config_precedence():
    profile = DeviceProfile(config={"api_host": "https://override.com"})
    defaults = {"api_host": "https://default.com", "other": "x"}
    assert profile.config_value("api_host", defaults) == "https://override.com"
    assert profile.config_value("other", defaults) == "x"
    assert profile.config_value("missing", defaults) == ""


def test_profile_flags_default_false():
    profile = DeviceProfile(flags={"vip": True})
    assert profile.flag("vip")
    assert not profile.flag("unknown")


def test_profile_processing_default_zero():
    profile = DeviceProfile(processing={"launch": 2.0})
    assert profile.processing_delay("launch") == 2.0
    assert profile.processing_delay("interaction") == 0.0


def test_profile_copy_for_user():
    base = DeviceProfile(
        user="a", config={"k": "v"}, flags={"f": True}, processing={"launch": 1.0}
    )
    copy = base.copy_for_user("b")
    assert copy.user == "b"
    assert copy.device_id == "device-b"
    assert copy.config == base.config
    copy.config["k"] = "changed"
    assert base.config["k"] == "v"  # deep enough to be independent


# -- OriginMap ------------------------------------------------------------------
def test_origin_map_default_link_for_unknown():
    origins = OriginMap()
    request = Request("GET", Uri.parse("https://nowhere.com/x"))
    link = origins.link_for(request)
    assert isinstance(link, Link)
    assert origins.endpoint_for(request) is None


# -- Transaction -------------------------------------------------------------------
def test_transaction_elapsed():
    transaction = Transaction(
        Request("GET", Uri.parse("https://a.com/x")),
        Response(200),
        started_at=1.0,
        finished_at=1.5,
    )
    assert transaction.elapsed == pytest.approx(0.5)
    assert not transaction.prefetched


def test_response_ok_bounds():
    assert Response(200).ok
    assert Response(204).ok
    assert not Response(304).ok
    assert not Response(404).ok
    assert not Response(500).ok


def test_request_wire_size_components():
    small = Request("GET", Uri.parse("https://a.com/x"))
    big = Request(
        "GET", Uri.parse("https://a.com/x"), body=JsonBody({"k": "v" * 100})
    )
    assert big.wire_size() > small.wire_size() + 90


def test_request_exact_key_sensitive_to_all_parts():
    base = Request("GET", Uri.parse("https://a.com/x?q=1"))
    assert base.exact_key() != Request("POST", Uri.parse("https://a.com/x?q=1")).exact_key()
    assert base.exact_key() != Request("GET", Uri.parse("https://a.com/x?q=2")).exact_key()
    with_header = base.copy()
    with_header.headers.add("Cookie", "a=1")
    assert base.exact_key() != with_header.exact_key()


# -- public package surface -----------------------------------------------------------
def test_top_level_imports():
    import repro
    from repro.analysis import (
        analyze_apk,
        dump_signatures,
        load_signatures,
        render_report,
    )
    from repro.proxy import (
        AccelerationProxy,
        MultiAppProxy,
        PopularityTracker,
        Refresher,
    )

    assert repro.__version__
    assert callable(analyze_apk)
    assert callable(dump_signatures) and callable(load_signatures)
    assert callable(render_report)
    for symbol in (AccelerationProxy, MultiAppProxy, PopularityTracker, Refresher):
        assert symbol is not None
