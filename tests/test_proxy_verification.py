"""Tests for the testing & verification phase (§4.3)."""

import pytest

from repro.analysis import analyze_apk
from repro.apps.wish import SPEC as WISH
from repro.proxy.verification import run_verification
from repro.server.content import Catalog


@pytest.fixture(scope="module")
def apk():
    return WISH.build_apk()


@pytest.fixture(scope="module")
def analysis(apk):
    return analyze_apk(apk)


def build_origins_factory(fault=None):
    def build(sim):
        origin_map, servers = WISH.build_origin_map(sim, Catalog())
        if fault is not None:
            fault(servers)
        return origin_map

    return build


def test_clean_verification_disables_nothing(apk, analysis):
    config, report = run_verification(
        apk, analysis, build_origins_factory(),
        profile=WISH.default_profile("verify-user"),
        fuzz_duration=30.0, estimate_expiry=False,
    )
    assert report.disabled == {}
    assert report.fuzz_interactions > 1
    assert report.prefetch_successes


def test_failing_endpoint_disabled(apk, analysis):
    def fault(servers):
        servers["https://api.wish.com"].force_error("related-get", 500)

    config, report = run_verification(
        apk, analysis, build_origins_factory(fault),
        profile=WISH.default_profile("verify-user"),
        fuzz_duration=30.0, estimate_expiry=False,
    )
    related_site = next(s.site for s in analysis.signatures if "onStart#0" in s.site and "Detail" in s.site)
    assert related_site in report.disabled
    assert not config.policy(related_site).prefetch
    assert "failed" in config.policy(related_site).disabled_reason


def test_hanging_endpoint_disabled(apk, analysis):
    def fault(servers):
        servers["https://api.wish.com"].hang("ratings")

    config, report = run_verification(
        apk, analysis, build_origins_factory(fault),
        profile=WISH.default_profile("verify-user"),
        fuzz_duration=40.0, estimate_expiry=False,
    )
    ratings_site = next(
        s.site for s in analysis.signatures if "MerchantActivity.onStart#1" in s.site
    )
    # the hang yields 504s: disabled if the fuzzer reached the merchant page
    if ratings_site in report.prefetch_errors:
        assert ratings_site in report.disabled


def test_expiry_estimation_orders_by_rotation(apk, analysis):
    config, report = run_verification(
        apk, analysis, build_origins_factory(),
        profile=WISH.default_profile("verify-user"),
        fuzz_duration=30.0, estimate_expiry=True,
    )
    assert report.expiry_estimates
    # static images never change: probe runs to the cap
    image_sites = [s for s in report.expiry_estimates if "onStart#1" in s and "Feed" in s]
    for site in image_sites:
        assert report.expiry_estimates[site] >= 3600.0
    # every estimated expiry became the policy default
    for site, estimate in report.expiry_estimates.items():
        assert config.policy(site).expiration_time == estimate


def test_seed_store_carries_app_level_values(apk, analysis):
    _, report = run_verification(
        apk, analysis, build_origins_factory(),
        profile=WISH.default_profile("verify-user"),
        fuzz_duration=30.0, estimate_expiry=False,
    )
    store = report.seed_store
    assert store is not None
    assert store.tag_value("any-user", "env:config:api_host") == "https://api.wish.com"
    assert store.tag_value("any-user", "env:config:img_host") == "https://img.wish.com"
    # user-bound state must not leak
    assert store.tag_value("verify-user", "env:cookie") is None
