"""Tests for the prefetch cache and the configuration model."""

import pytest

from repro.analysis.model import (
    AnalysisResult,
    ConstAtom,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    ValueTemplate,
)
from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import Condition, ProxyConfig, SignaturePolicy, default_config


def request(path="/x", cid="1"):
    return Request("GET", Uri.parse("https://a.com{}?cid={}".format(path, cid)))


# -- cache ----------------------------------------------------------------
def test_exact_match_hit():
    cache = PrefetchCache()
    cache.put("u1", request(), Response(200), "s#0", now=0.0, ttl=60.0)
    entry = cache.get("u1", request(), now=10.0)
    assert entry is not None
    assert entry.site == "s#0"


def test_different_query_value_misses():
    cache = PrefetchCache()
    cache.put("u1", request(cid="1"), Response(200), "s#0", now=0.0, ttl=60.0)
    assert cache.get("u1", request(cid="2"), now=1.0) is None


def test_user_isolation():
    cache = PrefetchCache()
    cache.put("u1", request(), Response(200), "s#0", now=0.0, ttl=60.0)
    assert cache.get("u2", request(), now=1.0) is None


def test_expiry_evicts():
    cache = PrefetchCache()
    cache.put("u1", request(), Response(200), "s#0", now=0.0, ttl=5.0)
    assert cache.get("u1", request(), now=4.9) is not None
    assert cache.get("u1", request(), now=5.0) is None
    assert cache.expired_evictions == 1
    assert len(cache) == 0


def test_contains_fresh():
    cache = PrefetchCache()
    cache.put("u1", request(), Response(200), "s#0", now=0.0, ttl=5.0)
    assert cache.contains_fresh("u1", request(), now=1.0)
    assert not cache.contains_fresh("u1", request(), now=9.0)


def test_hit_rate_accounting():
    cache = PrefetchCache()
    cache.record_hit("s#0")
    cache.record_hit("s#0")
    cache.record_miss("s#0")
    assert cache.hit_rate("s#0") == pytest.approx(2 / 3)
    assert cache.hit_rate("unknown") == 0.0


def test_purge_expired():
    cache = PrefetchCache()
    for i in range(5):
        cache.put("u1", request(cid=str(i)), Response(200), "s#0", now=0.0, ttl=1.0)
    assert cache.purge_expired(now=2.0) == 5
    assert len(cache) == 0


def test_newer_put_replaces():
    cache = PrefetchCache()
    cache.put("u1", request(), Response(200, body=JsonBody({"v": 1})), "s#0", 0.0, 60.0)
    cache.put("u1", request(), Response(200, body=JsonBody({"v": 2})), "s#0", 1.0, 60.0)
    assert cache.get("u1", request(), 2.0).response.body.value == {"v": 2}
    assert len(cache) == 1


# -- config ------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        SignaturePolicy(hash="x", probability=1.5)


def test_condition_operators():
    assert Condition("price", "gt", "1000").evaluate({"price": 2000})
    assert not Condition("price", "gt", "1000").evaluate({"price": 500})
    assert Condition("price", "lt", "10").evaluate({"price": 5})
    assert Condition("tier", "eq", "gold").evaluate({"tier": "gold"})
    assert Condition("tier", "ne", "gold").evaluate({"tier": "silver"})
    assert not Condition("missing", "eq", "x").evaluate({})


def test_condition_unknown_operator_rejected():
    with pytest.raises(ValueError):
        Condition("f", "contains", "x")


def test_config_json_round_trip():
    config = ProxyConfig(global_probability=0.5, data_budget_bytes=1_000_000)
    config.policies["s#0"] = SignaturePolicy(
        hash="abc",
        uri=".*/product/get",
        expiration_time=86400.0,
        prefetch=True,
        probability=0.8,
        add_header=[("proxy", "prefetch")],
        condition=Condition("price", "gt", "1000"),
    )
    restored = ProxyConfig.from_json(config.to_json())
    assert restored.global_probability == 0.5
    assert restored.data_budget_bytes == 1_000_000
    policy = restored.policies["s#0"]
    assert policy.probability == 0.8
    assert policy.add_header == [("proxy", "prefetch")]
    assert policy.condition.evaluate({"price": 1500})
    assert policy.expiration_time == 86400.0


def test_effective_probability_multiplies():
    config = ProxyConfig(global_probability=0.5)
    config.policies["s#0"] = SignaturePolicy(hash="x", probability=0.5)
    assert config.effective_probability("s#0") == pytest.approx(0.25)


def test_policy_autocreated_with_defaults():
    config = ProxyConfig(default_expiration=120.0)
    policy = config.policy("new#0")
    assert policy.prefetch
    assert policy.expiration_time == 120.0


def test_disable_records_reason():
    config = ProxyConfig()
    config.disable("s#0", "verification failed")
    assert not config.policy("s#0").prefetch
    assert config.policy("s#0").disabled_reason == "verification failed"


def test_default_config_disables_side_effects():
    side_effect = TransactionSignature(
        "Buy.onClick#0",
        RequestTemplate("POST", ValueTemplate([ConstAtom("https://a.com/buy")])),
        ResponseTemplate(),
        side_effect=True,
    )
    normal = TransactionSignature(
        "Feed.onStart#0",
        RequestTemplate("GET", ValueTemplate([ConstAtom("https://a.com/feed")])),
        ResponseTemplate(),
    )
    config = default_config(AnalysisResult("t", [side_effect, normal], []))
    assert not config.policy("Buy.onClick#0").prefetch
    assert "side-effect" in config.policy("Buy.onClick#0").disabled_reason
    assert config.policy("Feed.onStart#0").prefetch
