"""End-to-end proxy tests: Fig. 10 behavior on the Wish app."""

import pytest

from repro.analysis import analyze_apk
from repro.apps.wish import SPEC as WISH
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport
from repro.proxy import AccelerationProxy, ProxiedTransport, default_config
from repro.server.content import Catalog


@pytest.fixture(scope="module")
def analysis():
    return analyze_apk(WISH.build_apk())


def build(analysis, config=None, user="u1"):
    sim = Simulator()
    origins, servers = WISH.build_origin_map(sim, Catalog())
    proxy = AccelerationProxy(sim, origins, analysis, config=config)
    transport = ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy)
    runtime = AppRuntime(WISH.build_apk(), transport, sim, WISH.default_profile(user))
    return sim, proxy, runtime, servers


def browse(sim, runtime, think=6.0, index=3):
    def flow():
        launch = yield sim.spawn(runtime.launch())
        yield Delay(think)
        select = yield sim.spawn(runtime.dispatch("select_item", index))
        return launch, select

    return sim.run_process(flow())


def test_prefetched_responses_served(analysis):
    sim, proxy, runtime, _ = build(analysis)
    _, select = browse(sim, runtime)
    assert proxy.served_prefetched >= 3  # product/get, related/get, image
    paths = {t.request.uri.path for t in select.transactions}
    assert "/product/get" in paths


def test_served_responses_identical_to_origin(analysis):
    sim_p, proxy, runtime_p, _ = build(analysis)
    _, select_proxied = browse(sim_p, runtime_p)

    sim_d = Simulator()
    origins, _ = WISH.build_origin_map(sim_d, Catalog())
    transport = DirectTransport(sim_d, Link(rtt=0.055, shared=True), origins)
    runtime_d = AppRuntime(
        WISH.build_apk(), transport, sim_d, WISH.default_profile("u1")
    )
    _, select_direct = browse(sim_d, runtime_d)

    # R3: the proxy must not alter app behavior — same bodies either way
    proxied = {
        t.request.uri.path: t.response.body.to_wire()
        for t in select_proxied.transactions
    }
    direct = {
        t.request.uri.path: t.response.body.to_wire()
        for t in select_direct.transactions
    }
    assert proxied == direct


def test_acceleration_reduces_latency(analysis):
    sim_p, _, runtime_p, _ = build(analysis)
    _, select_proxied = browse(sim_p, runtime_p)

    sim_d = Simulator()
    origins, _ = WISH.build_origin_map(sim_d, Catalog())
    transport = DirectTransport(sim_d, Link(rtt=0.055, shared=True), origins)
    runtime_d = AppRuntime(WISH.build_apk(), transport, sim_d, WISH.default_profile())
    _, select_direct = browse(sim_d, runtime_d)

    assert select_proxied.latency < select_direct.latency * 0.75


def test_side_effect_transaction_never_prefetched(analysis):
    sim, proxy, runtime, servers = build(analysis)

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        yield sim.spawn(runtime.dispatch("select_item", 1))
        yield Delay(2.0)
        yield sim.spawn(runtime.dispatch("buy"))
        return None

    sim.run_process(flow())
    api = servers["https://api.wish.com"]
    # exactly the one client purchase; the proxy never fired /cart/add
    assert api.requests_by_route.get("cart-adds") == 1
    assert proxy.prefetcher.skipped_policy > 0


def test_prefetch_disabled_entirely(analysis):
    config = default_config(analysis)
    for site in list(config.policies):
        config.disable(site, "test")
    sim, proxy, runtime, _ = build(analysis, config=config)
    browse(sim, runtime)
    assert proxy.prefetcher.issued == 0
    assert proxy.served_prefetched == 0


def test_probability_zero_disables_prefetch(analysis):
    config = default_config(analysis)
    config.global_probability = 0.0
    sim, proxy, runtime, _ = build(analysis, config=config)
    browse(sim, runtime)
    assert proxy.prefetcher.issued == 0
    assert proxy.prefetcher.skipped_probability > 0


def test_data_budget_caps_prefetching(analysis):
    config = default_config(analysis)
    config.data_budget_bytes = 500_000
    sim, proxy, runtime, _ = build(analysis, config=config)
    browse(sim, runtime)
    assert proxy.prefetcher.skipped_budget > 0
    # budget is a high-water cutoff: one in-flight batch may overshoot,
    # but issuing stops right after crossing it
    assert proxy.prefetcher.issued < 120


def test_expired_prefetch_not_served(analysis):
    config = default_config(analysis)
    for site in config.policies:
        config.policies[site].expiration_time = 0.5  # everything stale fast
    sim, proxy, runtime, _ = build(analysis, config=config)
    _, select = browse(sim, runtime, think=30.0)
    # the detail-page entries expired during the 30 s think time: the
    # client's select-item requests all went to the origin (launch
    # thumbnails may still hit — they are consumed within the TTL)
    detail_site = next(s.site for s in analysis.signatures if "postDetail" in s.site)
    assert proxy.cache.hits.get(detail_site) is None
    assert proxy.cache.expired_evictions > 0
    assert select.transactions[0].response.status == 200


def test_add_header_marks_prefetch_requests(analysis):
    config = default_config(analysis)
    for site in config.policies:
        config.policies[site].add_header = [("X-Moz", "prefetch")]
    sim, proxy, runtime, servers = build(analysis, config=config)
    browse(sim, runtime)
    api = servers["https://api.wish.com"]
    marked = [
        req for req, _ in api.log if req.headers.get("X-Moz") == "prefetch"
    ]
    unmarked = [req for req, _ in api.log if "X-Moz" not in req.headers]
    assert marked, "prefetch requests must carry the indicator header"
    assert unmarked, "client requests must not"
    # and the marked requests still hit the cache for the client
    assert proxy.served_prefetched >= 1


def test_condition_policy_gates_prefetch(analysis):
    from repro.proxy.config import Condition

    config = default_config(analysis)
    detail_site = next(s for s in config.policies if "postDetail" in s)
    config.policies[detail_site].condition = Condition("price", "gt", "1000000")
    sim, proxy, runtime, _ = build(analysis, config=config)
    browse(sim, runtime)
    assert proxy.prefetcher.skipped_condition > 0
    assert proxy.prefetcher.success_by_site.get(detail_site) is None


def test_proxy_counts_bytes(analysis):
    sim, proxy, runtime, _ = build(analysis)
    browse(sim, runtime)
    assert proxy.client_bytes > 0
    assert proxy.server_bytes > 0
    assert proxy.total_server_bytes() > proxy.server_bytes  # prefetch traffic


def test_per_user_cache_isolation(analysis):
    sim = Simulator()
    origins, _ = WISH.build_origin_map(sim, Catalog())
    proxy = AccelerationProxy(sim, origins, analysis)
    link1 = Link(rtt=0.055, shared=True)
    link2 = Link(rtt=0.055, shared=True)
    r1 = AppRuntime(
        WISH.build_apk(), ProxiedTransport(sim, link1, proxy), sim,
        WISH.default_profile("alice"),
    )
    r2 = AppRuntime(
        WISH.build_apk(), ProxiedTransport(sim, link2, proxy), sim,
        WISH.default_profile("bob"),
    )

    def flow():
        yield sim.spawn(r1.launch())
        yield sim.spawn(r2.launch())
        yield Delay(6.0)
        a = yield sim.spawn(r1.dispatch("select_item", 2))
        b = yield sim.spawn(r2.dispatch("select_item", 2))
        return a, b

    a, b = sim.run_process(flow())
    # both accelerated, with distinct (personalized) feeds and cookies
    cookie_a = next(
        t for t in a.transactions if t.request.uri.path == "/product/get"
    ).request.headers.get("Cookie")
    cookie_b = next(
        t for t in b.transactions if t.request.uri.path == "/product/get"
    ).request.headers.get("Cookie")
    assert cookie_a != cookie_b
    assert proxy.served_prefetched >= 4
