"""Tests for the app builder DSL and the program validator."""

import pytest

from repro.apk.builder import AppBuilder, MethodBuilder
from repro.apk.validate import ValidationError, validate_apk


def minimal_app(break_it=None):
    app = AppBuilder("com.test.app")
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/feed"))
    req = m.new_request("GET", url)
    resp = m.execute(req)
    m.render(m.body_json(resp))
    app.method("Main", m)
    app.component("main", "Main", screen="home", main=True)
    app.screen("home")
    if break_it:
        break_it(app)
    return app


def test_valid_app_builds():
    apk = minimal_app().build()
    assert apk.main().name == "main"
    assert apk.instruction_count() > 0


def test_builder_arity_check():
    m = MethodBuilder("m")
    with pytest.raises(ValueError):
        m.invoke("Str.concat", m.const("only-one"))


def test_builder_unknown_api_rejected():
    m = MethodBuilder("m")
    with pytest.raises(KeyError):
        m.invoke("No.suchApi")


def test_builder_fresh_registers_unique():
    m = MethodBuilder("m")
    registers = {m.const(i) for i in range(50)}
    assert len(registers) == 50


def test_if_else_nesting():
    m = MethodBuilder("m", params=["this"])
    flag = m.flag("x")
    with m.if_(flag):
        m.const("in-then")
    with m.else_():
        m.const("in-else")
    body = m.method.body
    branch = body.instructions[-1]
    assert branch.kind == "if"
    assert len(branch.then_block) == 1
    assert len(branch.else_block) == 1


def test_else_without_if_rejected():
    m = MethodBuilder("m", params=["this"])
    m.const("x")
    with pytest.raises(ValueError):
        with m.else_():
            pass


def test_validator_catches_missing_handler():
    def break_it(app):
        app.event("home", "tap", "Main.noSuchHandler")

    with pytest.raises(ValidationError) as error:
        minimal_app(break_it).build()
    assert "noSuchHandler" in str(error.value)


def test_validator_catches_missing_component_class():
    def break_it(app):
        app.component("ghost", "GhostActivity", screen="home")

    with pytest.raises(ValidationError):
        minimal_app(break_it).build()


def test_validator_catches_bad_component_start_target():
    def break_it(app):
        m = MethodBuilder("go", params=["this"])
        intent = m.intent_new()
        m.start_component(intent, "nonexistent")
        app.method("Main", m)

    with pytest.raises(ValidationError) as error:
        minimal_app(break_it).build()
    assert "nonexistent" in str(error.value)


def test_validator_catches_bad_rx_funcref():
    def break_it(app):
        m = MethodBuilder("rx", params=["this"])
        obs = m.rx_just(m.const(1))
        m.rx_subscribe(obs, "Main.missingCallback")
        app.method("Main", m)

    with pytest.raises(ValidationError):
        minimal_app(break_it).build()


def test_validator_catches_use_before_definition():
    def break_it(app):
        m = MethodBuilder("bad", params=["this"])
        m.emit_use_undefined = m.emit  # readability
        from repro.apk.ir import Move

        m.emit(Move("x", "never_defined"))
        app.method("Main", m)

    with pytest.raises(ValidationError) as error:
        minimal_app(break_it).build()
    assert "never_defined" in str(error.value)


def test_validator_branch_join_definitions():
    # a register defined in only one arm must not be usable after the If
    def break_it(app):
        m = MethodBuilder("branchy", params=["this"])
        flag = m.flag("f")
        with m.if_(flag):
            m.emit_target = m.const("one")
        from repro.apk.ir import Const, Move

        branch = m.method.body.instructions[-1]
        only_then = branch.then_block.instructions[-1].dst
        m.emit(Move("after", only_then))
        app.method("Main", m)

    with pytest.raises(ValidationError):
        minimal_app(break_it).build()


def test_validator_both_arm_definitions_survive():
    app = minimal_app()
    m = MethodBuilder("ok", params=["this"])
    flag = m.flag("f")
    from repro.apk.ir import Const, Move

    with m.if_(flag):
        m.emit(Const("v", 1))
    with m.else_():
        m.emit(Const("v", 2))
    m.emit(Move("after", "v"))
    app.method("Main", m)
    app.build()  # must not raise


def test_component_without_lifecycle_method_rejected():
    app = AppBuilder("com.test.broken")
    app.app_class("Empty")
    app.component("c", "Empty", screen=None, main=True)
    with pytest.raises(ValidationError):
        validate_apk(app.apk)


def test_call_arity_mismatch_caught():
    app = minimal_app()
    m = MethodBuilder("helper", params=["this", "a", "b"])
    m.ret("a")
    app.method("Main", m)
    caller = MethodBuilder("caller", params=["this"])
    caller.call("Main.helper", "this")  # too few args
    app.method("Main", caller)
    with pytest.raises(ValidationError) as error:
        app.build()
    assert "wants 3" in str(error.value)
