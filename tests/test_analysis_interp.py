"""Tests for the abstract interpreter and signature builder.

Built around a small synthetic app exercising each §4.1 mechanism:
constants, environment wildcards, response-derived dependencies,
Intents, Rx chains, aliased heap objects, and branch variants.
"""

import pytest

from repro.analysis.model import AltAtom, DepAtom, UnknownAtom
from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apk.builder import AppBuilder, Lit, MethodBuilder
from repro.httpmsg.fieldpath import FieldPath


def build_test_app():
    app = AppBuilder("com.test.interp")
    app.config_default("api_host", "https://api.test.com")

    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/feed"))
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    feed = m.body_json(resp)
    items = m.json_get(feed, "items")
    m.put_field("this", "items", items)
    with m.foreach(items) as item:
        iid = m.json_get(item, "id")
        iurl = m.concat(m.config("api_host"), m.const("/thumb?tid="), iid)
        ireq = m.new_request("GET", iurl)
        m.invoke("Http.bodyBlob", m.execute(ireq))
    m.render(feed)
    app.method("Home", m)

    m = MethodBuilder("onClick", params=["this", "index"])
    items = m.get_field("this", "items")
    item = m.invoke("Json.index", items, "index")
    iid = m.json_get(item, "id")
    intent = m.intent_new()
    m.intent_put(intent, "key_id", iid)
    m.start_component(intent, "detail")
    app.method("Home", m)

    # Detail: Rx chain + aliased heap object + branch-dependent field
    m = MethodBuilder("onStart", params=["this", "intent"])
    iid = m.intent_get("intent", "key_id")
    holder = m.new("Holder")
    m.put_field(holder, "the_id", iid)
    alias = m.move(holder)
    m.put_field("this", "ctx", alias)
    obs = m.rx_defer("Detail.fetch")
    m.rx_subscribe(obs, "Detail.show")
    app.method("Detail", m)

    m = MethodBuilder("fetch", params=["this"])
    ctx = m.get_field("this", "ctx")
    iid = m.get_field(ctx, "the_id")
    url = m.concat(m.config("api_host"), m.const("/detail"))
    req = m.new_request("POST", url)
    m.add_form_field(req, "id", iid)
    m.add_form_field(req, "v", Lit("7"))
    premium = m.flag("premium")
    with m.if_(premium):
        m.add_form_field(req, "tier", m.config("tier"))
        m.add_form_field(req, "limit", Lit("100"))
    with m.else_():
        m.add_form_field(req, "limit", Lit("10"))
    resp = m.execute(req)
    m.ret(m.body_json(resp))
    app.method("Detail", m)

    m = MethodBuilder("show", params=["this", "body"])
    m.render("body")
    app.method("Detail", m)

    app.component("home", "Home", screen="home", main=True)
    app.component("detail", "Detail", screen="detail")
    app.screen("home")
    app.event("home", "click", "Home.onClick", takes_index=True)
    app.screen("detail")
    return app.build()


@pytest.fixture(scope="module")
def result():
    return analyze_apk(build_test_app())


def site(result, fragment):
    matches = [s for s in result.signatures if fragment in s.site]
    assert matches, "no signature matching {}".format(fragment)
    return matches[0]


def test_all_three_sites_found(result):
    assert len(result.signatures) == 3


def test_feed_request_has_cookie_wildcard(result):
    feed = site(result, "Home.onStart#0")
    template = feed.request.fields[FieldPath.parse("header.Cookie")]
    assert isinstance(template.atoms[0], UnknownAtom)
    assert template.atoms[0].tag == "env:cookie"


def test_feed_response_paths_recorded(result):
    feed = site(result, "Home.onStart#0")
    paths = {p.to_string() for p in feed.response.paths}
    assert "body.items" in paths
    assert "body.items[].id" in paths


def test_thumbnail_uri_split_into_query_dependency(result):
    thumb = site(result, "Home.onStart#1")
    template = thumb.request.fields[FieldPath.parse("query.tid")]
    atom = template.atoms[0]
    assert isinstance(atom, DepAtom)
    assert atom.pred_site == "Home.onStart#0"
    assert atom.pred_path.to_string() == "body.items[].id"


def test_detail_dependency_flows_through_intent_alias_and_rx(result):
    detail = site(result, "Detail.fetch#0")
    template = detail.request.fields[FieldPath.parse("body.id")]
    deps = template.dep_atoms()
    assert deps and deps[0].pred_site == "Home.onStart#0"


def test_detail_const_field(result):
    detail = site(result, "Detail.fetch#0")
    template = detail.request.fields[FieldPath.parse("body.v")]
    assert template.is_const()
    assert template.const_value() == "7"


def test_branch_variants_enumerated(result):
    detail = site(result, "Detail.fetch#0")
    variant_sets = {frozenset(v) for v in detail.variants}
    assert len(variant_sets) == 2
    with_tier = {v for v in variant_sets if "body.tier" in v}
    assert len(with_tier) == 1


def test_branch_value_alternation(result):
    detail = site(result, "Detail.fetch#0")
    template = detail.request.fields[FieldPath.parse("body.limit")]
    assert any(isinstance(atom, AltAtom) for atom in template.atoms)
    assert template.matches("100")
    assert template.matches("10")
    assert not template.matches("55")


def test_dependencies_extracted(result):
    pairs = {(e.pred_site, e.succ_site) for e in result.dependencies}
    assert ("Home.onStart#0", "Home.onStart#1") in pairs
    assert ("Home.onStart#0", "Detail.fetch#0") in pairs


def test_prefetchable_signatures(result):
    prefetchable = {s.site for s in result.prefetchable()}
    assert prefetchable == {"Home.onStart#1", "Detail.fetch#0"}


# ---------------------------------------------------------------------
# ablations: disabling the §4.1 extensions loses dependencies
# ---------------------------------------------------------------------
def test_intent_ablation_loses_detail_dependency():
    result = analyze_apk(build_test_app(), AnalysisOptions(intent_support=False))
    detail = site(result, "Detail.fetch#0")
    template = detail.request.fields[FieldPath.parse("body.id")]
    assert not template.dep_atoms()


def test_rx_ablation_loses_detail_site_entirely():
    result = analyze_apk(build_test_app(), AnalysisOptions(rx_support=False))
    assert not any("Detail.fetch" in s.site for s in result.signatures)


def test_heap_ablation_loses_alias_routed_dependency():
    result = analyze_apk(build_test_app(), AnalysisOptions(precise_heap=False))
    detail = site(result, "Detail.fetch#0")
    template = detail.request.fields[FieldPath.parse("body.id")]
    assert not template.dep_atoms()


def test_full_analysis_beats_every_ablation():
    full = analyze_apk(build_test_app()).summary()["dependencies"]
    for options in (
        AnalysisOptions(intent_support=False),
        AnalysisOptions(rx_support=False),
        AnalysisOptions(precise_heap=False),
    ):
        ablated = analyze_apk(build_test_app(), options).summary()["dependencies"]
        assert ablated < full
