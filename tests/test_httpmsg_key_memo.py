"""Request.exact_key() memoization: cached, and invalidated on mutation.

The memo contract: ``exact_key()`` may serve a cached digest only while
the (method, headers, uri, body) version stamp is unchanged; any
mutation — through the component mutators or through
``FieldPath.assign`` — must produce the same key a fresh, uncached
request would.
"""

from repro.httpmsg.body import FormBody, JsonBody
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri


def make_request():
    return Request(
        method="POST",
        uri=Uri.parse("https://api.wish.com/product/get?v=2"),
        headers=Headers([("Cookie", "bsid=1")]),
        body=FormBody([("cid", "09cf")]),
    )


def fresh_key(request):
    """The key an uncached request with this exact content computes."""
    return request.copy().exact_key()


def test_key_is_cached_until_mutation():
    request = make_request()
    first = request.exact_key()
    assert request._key_cache is not None
    assert request.exact_key() == first == fresh_key(request)


def test_copy_does_not_share_the_memo():
    request = make_request()
    request.exact_key()
    duplicate = request.copy()
    duplicate.body.set("cid", "ffff")
    assert duplicate.exact_key() != request.exact_key()
    assert request.exact_key() == fresh_key(request)


def test_header_mutations_invalidate():
    request = make_request()
    before = request.exact_key()
    request.headers.add("X-Extra", "1")
    assert request.exact_key() != before
    assert request.exact_key() == fresh_key(request)
    request.headers.remove("X-Extra")
    assert request.exact_key() == fresh_key(request)


def test_uri_and_body_mutations_invalidate():
    request = make_request()
    before = request.exact_key()
    request.uri.query_set("v", "3")
    after_query = request.exact_key()
    assert after_query != before
    request.body.set("cid", "beef")
    assert request.exact_key() != after_query
    assert request.exact_key() == fresh_key(request)


def test_method_change_invalidates():
    request = make_request()
    before = request.exact_key()
    request.method = "GET"
    assert request.exact_key() != before
    assert request.exact_key() == fresh_key(request)


def test_fieldpath_assign_invalidates_query_body_and_method():
    request = make_request()
    for path, value in (
        ("query.v", "9"),
        ("body.cid", "feed"),
        ("method", "PUT"),
        ("uri.host", "api2.wish.com"),
    ):
        before = request.exact_key()
        assert FieldPath.parse(path).assign(request, value)
        assert request.exact_key() != before, path
        assert request.exact_key() == fresh_key(request), path


def test_fieldpath_assign_invalidates_nested_json_body():
    request = Request(
        method="POST",
        uri=Uri.parse("https://api.wish.com/cart/update"),
        body=JsonBody({"item": {"id": "1", "qty": 2}}),
    )
    before = request.exact_key()
    assert FieldPath.parse("body.item.id").assign(request, "42")
    assert request.exact_key() != before
    assert request.exact_key() == fresh_key(request)
