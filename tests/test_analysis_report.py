"""Tests for the Fig. 5-style signature report."""

import pytest

from repro.analysis import analyze_apk
from repro.analysis.report import render_report, render_signature
from repro.apps import get_app


@pytest.fixture(scope="module")
def wish_result():
    return analyze_apk(get_app("wish").build_apk())


def detail_signature(result):
    return next(s for s in result.signatures if "postDetail" in s.site)


def test_signature_rendering_contains_fig5_elements(wish_result):
    text = render_signature(detail_signature(wish_result))
    assert "URI" in text
    assert "/product/get" in text
    assert "cid: (" in text  # alternation of its three predecessors
    assert "_xsrf: 1" in text
    # dependency annotation points back at the feed
    assert "<- FeedActivity" in text
    # run-time wildcards carry their provenance tag
    assert "[env:cookie]" in text


def test_variants_rendered_when_branching(wish_result):
    text = render_signature(detail_signature(wish_result))
    assert "Variants (2 run-time classes)" in text
    assert "body.credit_id" in text


def test_side_effect_flagged(wish_result):
    buy = next(s for s in wish_result.signatures if "onBuyClick" in s.site)
    assert "side-effecting" in render_signature(buy)


def test_blob_response_rendered(wish_result):
    image = next(s for s in wish_result.signatures if s.site == "FeedActivity.loadFeed#1")
    assert "Response (blob)" in render_signature(image)


def test_full_report_lists_everything(wish_result):
    text = render_report(wish_result)
    assert "Analysis of com.wish.android" in text
    for signature in wish_result.signatures:
        assert signature.site in text
    assert "Dependency map" in text
    assert text.count("-->") == len(wish_result.dependencies)


def test_report_renders_for_every_app():
    for name in ("geek", "doordash", "purple_ocean", "postmates"):
        result = analyze_apk(get_app(name).build_apk())
        text = render_report(result)
        assert result.package in text
        assert len(text.splitlines()) > 20
