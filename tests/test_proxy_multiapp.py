"""Tests for the multi-app proxy (§2)."""

import pytest

from repro.analysis import analyze_apk
from repro.apps import get_app
from repro.device.runtime import AppRuntime
from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import Endpoint, OriginMap
from repro.proxy import AccelerationProxy
from repro.proxy.multiapp import MultiAppProxy, MultiAppTransport
from repro.server.content import Catalog


class PlainEndpoint(Endpoint):
    def handle(self, request, user):
        yield Delay(0.01)
        return Response(200, body=JsonBody({"plain": True}))


@pytest.fixture()
def env():
    sim = Simulator()
    shared_origins = OriginMap()
    proxies = {}
    apks = {}
    for name in ("wish", "doordash"):
        spec = get_app(name)
        app_origins, _ = spec.build_origin_map(sim, Catalog())
        for origin, endpoint in app_origins.origins().items():
            shared_origins.register(
                origin, endpoint, app_origins.link_for(
                    Request("GET", Uri.parse(origin + "/"))
                )
            )
        analysis = analyze_apk(spec.build_apk())
        proxies[name] = AccelerationProxy(sim, app_origins, analysis)
        apks[name] = spec
    shared_origins.register(
        "https://other.example", PlainEndpoint(), Link(rtt=0.08)
    )
    multi = MultiAppProxy(sim, shared_origins)
    for name, proxy in proxies.items():
        multi.register_app(name, proxy)
    return sim, multi, proxies, apks


def run_app(sim, multi, spec, user):
    runtime = AppRuntime(
        spec.build_apk(),
        MultiAppTransport(sim, Link(rtt=0.055, shared=True), multi),
        sim,
        spec.default_profile(user),
    )

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        result = yield sim.spawn(runtime.dispatch(*spec.main_flow[-1]))
        return result

    return sim.run_process(flow())


def test_routing_by_origin(env):
    sim, multi, proxies, apks = env
    request = Request("GET", Uri.parse("https://api.wish.com/api/get-feed"))
    assert multi.app_for(request) is proxies["wish"]
    request = Request("GET", Uri.parse("https://api.doordash.com/v2/stores"))
    assert multi.app_for(request) is proxies["doordash"]
    request = Request("GET", Uri.parse("https://other.example/x"))
    assert multi.app_for(request) is None


def test_both_apps_accelerated_through_one_proxy(env):
    sim, multi, proxies, apks = env
    run_app(sim, multi, apks["wish"], "alice")
    run_app(sim, multi, apks["doordash"], "alice")
    assert proxies["wish"].served_prefetched >= 1
    assert proxies["doordash"].served_prefetched >= 1


def test_state_is_per_app(env):
    sim, multi, proxies, apks = env
    run_app(sim, multi, apks["wish"], "alice")
    # doordash's proxy saw no traffic at all
    assert proxies["doordash"].forwarded == 0
    assert len(proxies["doordash"].cache) == 0


def test_unknown_origin_passes_through(env):
    sim, multi, _, _ = env
    request = Request("GET", Uri.parse("https://other.example/ping"))

    def flow():
        response = yield sim.spawn(multi.handle_request(request, "u1"))
        return response

    response = sim.run_process(flow())
    assert response.status == 200
    assert response.body.value == {"plain": True}
    assert multi.passthrough == 1


def test_stats_aggregate_per_app(env):
    sim, multi, proxies, apks = env
    run_app(sim, multi, apks["wish"], "alice")
    stats = multi.stats()
    assert "wish" in stats and "doordash" in stats
    assert stats["wish"]["forwarded"] > 0
    assert stats["_passthrough"]["requests"] == 0


def test_register_app_rejects_reserved_names(env):
    sim, multi, proxies, _ = env
    with pytest.raises(ValueError) as excinfo:
        multi.register_app("_passthrough", proxies["wish"])
    assert "reserved" in str(excinfo.value)
    with pytest.raises(ValueError):
        multi.register_app("_anything", proxies["wish"])
    # the failed registrations left no trace in stats
    assert set(multi.stats()) == {"wish", "doordash", "_passthrough"}


def test_register_app_rejects_duplicate_names(env):
    sim, multi, proxies, _ = env
    with pytest.raises(ValueError) as excinfo:
        multi.register_app("wish", proxies["doordash"])
    assert "already registered" in str(excinfo.value)


def test_purge_expired_sums_across_app_caches(env):
    sim, multi, proxies, _ = env
    request_a = Request("GET", Uri.parse("https://a.example/1"))
    request_b = Request("GET", Uri.parse("https://b.example/2"))
    proxies["wish"].cache.put("u1", request_a, Response(200), "s#0", 0.0, 5.0)
    proxies["doordash"].cache.put("u1", request_b, Response(200), "s#1", 0.0, 7.0)
    assert multi.cache_entries() == 2
    assert multi.purge_expired(6.0) == 1
    assert multi.cache_entries() == 1
    assert multi.purge_expired(8.0) == 1
    assert multi.cache_entries() == 0
