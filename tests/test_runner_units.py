"""Unit tests for experiment-runner internals."""

import pytest

from repro.experiments.runner import _observed_coverage, table1_rows, table2_rows
from repro.experiments.scenario import Scenario, prepare_app
from repro.netsim.sim import Delay


@pytest.fixture(scope="module")
def wish():
    return prepare_app("wish")


def test_observed_coverage_empty_runtimes(wish):
    coverage = _observed_coverage(wish.analysis, [])
    assert coverage == {
        "signatures": 0,
        "prefetchable": 0,
        "dependencies": 0,
        "max_chain": 0,
    }


def test_observed_coverage_counts_matched_sites(wish):
    scenario = Scenario(wish, proxied=False)
    runtime = scenario.runtime("u1")

    def flow():
        yield scenario.sim.spawn(runtime.launch())
        yield Delay(2.0)
        yield scenario.sim.spawn(runtime.dispatch("select_item", 0))
        return None

    scenario.sim.run_process(flow())
    coverage = _observed_coverage(wish.analysis, [runtime])
    # launch + one detail view: feed, thumbs, product, related, image
    assert coverage["signatures"] == 5
    assert coverage["prefetchable"] == 4
    assert 0 < coverage["dependencies"] < len(wish.analysis.dependencies)
    assert coverage["max_chain"] >= 2


def test_observed_coverage_never_exceeds_static(wish):
    scenario = Scenario(wish, proxied=False)
    runtime = scenario.runtime("u1")
    scenario.sim.run_process(runtime.launch())
    coverage = _observed_coverage(wish.analysis, [runtime])
    static = wish.analysis.summary()
    for key in ("signatures", "prefetchable", "dependencies", "max_chain"):
        assert coverage[key] <= static[key]


def test_table_rows_static_content():
    assert len(table1_rows()) == 5
    rows = table2_rows()
    assert len(rows) == 10  # Table 2 has ten transaction rows
    assert all(row["rtt_ms"] > 0 for row in rows)
