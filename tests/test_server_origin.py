"""Tests for the origin-server framework and content catalogs."""

import pytest

from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri
from repro.netsim.sim import Simulator
from repro.server.content import Catalog, filler, stable_id, stable_name
from repro.server.origin import OriginServer


def make_server():
    sim = Simulator()
    server = OriginServer(sim, "https://api.test.com", Catalog())

    def echo(server, request, user):
        return server.json({"path": request.uri.path, "user": user})

    def captured(server, request, user):
        return server.json({"sid": request._captures["sid"]})

    server.route("GET", "/echo", echo, service_time=0.01, name="echo")
    server.route("GET", "/store/<sid>/menu", captured, service_time=0.01, name="menu")
    return sim, server


def call(sim, server, request, user="u1"):
    return sim.run_process(server.handle(request, user))


def test_route_dispatch_and_service_time():
    sim, server = make_server()
    response = call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    assert response.status == 200
    assert response.body.value["path"] == "/echo"
    assert sim.now == pytest.approx(0.01)


def test_path_captures():
    sim, server = make_server()
    response = call(
        sim, server, Request("GET", Uri.parse("https://api.test.com/store/ab12/menu"))
    )
    assert response.body.value["sid"] == "ab12"


def test_unknown_path_404():
    sim, server = make_server()
    response = call(sim, server, Request("GET", Uri.parse("https://api.test.com/nope")))
    assert response.status == 404


def test_method_mismatch_404():
    sim, server = make_server()
    response = call(sim, server, Request("POST", Uri.parse("https://api.test.com/echo")))
    assert response.status == 404


def test_forced_error_and_clear():
    sim, server = make_server()
    server.force_error("echo", 503)
    response = call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    assert response.status == 503
    server.clear_faults()
    response = call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    assert response.status == 200


def test_hang_returns_gateway_timeout_late():
    sim, server = make_server()
    server.hang("echo")
    response = call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    assert response.status == 504
    assert sim.now >= 30.0


def test_session_cookie_issued_once_and_stable():
    sim, server = make_server()
    first = call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    issued = first.headers.get("Set-Cookie")
    assert issued and issued.startswith("bsid=u1-")
    # same user, still cookie-less request: identical session id
    second = call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    assert second.headers.get("Set-Cookie") == issued
    # request presenting the session: no new Set-Cookie
    with_cookie = Request(
        "GET", Uri.parse("https://api.test.com/echo"),
        Headers([("Cookie", issued.split("=", 1)[0] + "=" + issued.split("=", 1)[1])]),
    )
    third = call(sim, server, with_cookie)
    assert third.headers.get("Set-Cookie") is None


def test_request_accounting():
    sim, server = make_server()
    for _ in range(3):
        call(sim, server, Request("GET", Uri.parse("https://api.test.com/echo")))
    assert server.request_count == 3
    assert server.requests_by_route["echo"] == 3


def test_content_version_rotates():
    sim, server = make_server()
    assert server.content_version() == 0
    sim._now = server.rotation_period + 1
    assert server.content_version() == 1
    server.rotation_period = 0
    assert server.content_version() == 0


# -- catalog -----------------------------------------------------------------------
def test_stable_id_deterministic_and_short():
    assert stable_id("a", 1) == stable_id("a", 1)
    assert stable_id("a", 1) != stable_id("a", 2)
    assert len(stable_id("x")) == 4


def test_stable_name_deterministic():
    assert stable_name("m", 3) == stable_name("m", 3)
    assert " " in stable_name("m", 3)


def test_filler_size_and_determinism():
    assert len(filler("x", 1000)) == 1000
    assert filler("x", 100) == filler("x", 100)
    assert filler("x", 100) != filler("y", 100)
    assert filler("x", 0) == ""


def test_catalog_feed_rotation_changes_items():
    catalog = Catalog()
    v0 = catalog.product_ids("wish", 0, user="u1")
    v1 = catalog.product_ids("wish", 1, user="u1")
    assert v0 != v1
    assert catalog.product_ids("wish", 0, user="u1") == v0


def test_catalog_feeds_personalized_per_user():
    catalog = Catalog()
    assert catalog.product_ids("wish", 0, user="u1") != catalog.product_ids(
        "wish", 0, user="u2"
    )


def test_catalog_product_consistent():
    catalog = Catalog()
    product_id = catalog.product_ids("wish", 0)[0]
    assert catalog.product("wish", product_id) == catalog.product("wish", product_id)


def test_catalog_image_sizes_bounded():
    catalog = Catalog()
    size = catalog.image_size("wish", "product-x", 315_000)
    assert 315_000 * 0.7 < size < 315_000 * 1.3


def test_catalog_different_seeds_differ():
    assert Catalog(seed=1).product_ids("wish", 0) != Catalog(seed=2).product_ids(
        "wish", 0
    )
