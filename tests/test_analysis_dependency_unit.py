"""Unit tests for dependency extraction, chains, and fan-out."""

from repro.analysis.dependency import dependency_chains, extract_dependencies, fan_out
from repro.analysis.model import (
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import FieldPath


def signature(site, deps=None):
    fields = {}
    for index, pred in enumerate(deps or []):
        fields[FieldPath.parse("query.k{}".format(index))] = ValueTemplate(
            [DepAtom(pred, FieldPath.parse("body.id"))]
        )
    return TransactionSignature(
        site,
        RequestTemplate("GET", ValueTemplate([ConstAtom("https://a.com/" + site)]), fields),
        ResponseTemplate(),
    )


def edge(pred, succ):
    return DependencyEdge(
        pred, FieldPath.parse("body.id"), succ, FieldPath.parse("query.k0")
    )


def test_extract_skips_unknown_predecessor_sites():
    signatures = [signature("b#0", deps=["ghost#0"])]
    assert extract_dependencies(signatures) == []


def test_extract_dedupes_identical_edges():
    succ = signature("b#0", deps=["a#0", "a#0"])
    # both fields point at the same pred field but different succ paths
    result = extract_dependencies([signature("a#0"), succ])
    assert len(result) == 2  # distinct succ paths, both kept
    keys = {e.key() for e in result}
    assert len(keys) == 2


def test_chains_linear():
    chains = dependency_chains([edge("a#0", "b#0"), edge("b#0", "c#0")])
    assert ["a#0", "b#0", "c#0"] in chains


def test_chains_branching_enumerates_maximal_paths():
    chains = dependency_chains(
        [edge("a#0", "b#0"), edge("a#0", "c#0"), edge("b#0", "d#0")]
    )
    rendered = {"->".join(c) for c in chains}
    assert "a#0->b#0->d#0" in rendered
    assert "a#0->c#0" in rendered


def test_chains_pure_cycle_has_no_roots():
    # a pure cycle has no entry point: terminates with no chains
    assert dependency_chains([edge("a#0", "b#0"), edge("b#0", "a#0")]) == []


def test_chains_cycle_reached_from_root_is_cut():
    chains = dependency_chains(
        [edge("r#0", "a#0"), edge("a#0", "b#0"), edge("b#0", "a#0")]
    )
    assert ["r#0", "a#0", "b#0"] in chains  # the revisit of a#0 is cut


def test_chains_empty():
    assert dependency_chains([]) == []


def test_fan_out_counts_distinct_successors():
    counts = fan_out(
        [edge("a#0", "b#0"), edge("a#0", "c#0"), edge("a#0", "b#0")]
    )
    assert counts == {"a#0": 2}
