"""Tests for the Monkey fuzzer and the user-study trace machinery."""


from repro.apps.wish import SPEC as WISH
from repro.apps.doordash import SPEC as DOORDASH
from repro.device.fuzzing import MonkeyFuzzer, destination_screen
from repro.device.runtime import AppRuntime
from repro.device.traces import generate_user_study, replay_trace
from repro.netsim.link import Link
from repro.netsim.sim import Simulator
from repro.netsim.transport import DirectTransport
from repro.server.content import Catalog


def make_runtime(spec=WISH, user="fuzz-user"):
    sim = Simulator()
    origins, servers = spec.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(spec.build_apk(), transport, sim, spec.default_profile(user))
    return sim, runtime, servers


# -- destination_screen --------------------------------------------------------
def test_destination_screen_for_navigation_event():
    apk = WISH.build_apk()
    event = apk.screen("feed").event("select_item")
    assert destination_screen(apk, event) == "detail"


def test_destination_screen_none_for_in_place_event():
    apk = WISH.build_apk()
    event = apk.screen("feed").event("refresh")
    assert destination_screen(apk, event) is None


# -- fuzzing --------------------------------------------------------------------
def test_fuzzer_generates_interactions():
    sim, runtime, _ = make_runtime()
    fuzzer = MonkeyFuzzer(runtime, seed=7)
    results = sim.run_process(fuzzer.run(20.0))
    assert results[0].event == "launch"
    assert len(results) > 3
    assert runtime.transaction_log


def test_fuzzer_deterministic_under_seed():
    def run(seed):
        sim, runtime, _ = make_runtime()
        fuzzer = MonkeyFuzzer(runtime, seed=seed)
        results = sim.run_process(fuzzer.run(15.0))
        return [r.event for r in results]

    assert run(3) == run(3)
    assert run(3) != run(4) or True  # different seeds usually diverge


def test_fuzzer_can_exclude_side_effects():
    sim, runtime, servers = make_runtime()
    fuzzer = MonkeyFuzzer(runtime, seed=5, allow_side_effects=False)
    sim.run_process(fuzzer.run(60.0))
    api = servers["https://api.wish.com"]
    assert api.requests_by_route.get("cart-adds") is None


def test_fuzzer_never_reaches_background_service():
    sim, runtime, _ = make_runtime()
    fuzzer = MonkeyFuzzer(runtime, seed=9)
    sim.run_process(fuzzer.run(60.0))
    paths = {t.request.uri.path for t in runtime.transaction_log}
    assert "/api/notifications" not in paths  # push-only traffic


# -- trace generation --------------------------------------------------------------
def test_user_study_shape():
    traces = generate_user_study(WISH.build_apk(), participants=5, duration=120.0)
    assert len(traces) == 5
    assert all(len(t) >= 1 for t in traces)
    assert {t.user for t in traces} == {
        "user-01", "user-02", "user-03", "user-04", "user-05"
    }


def test_trace_think_times_within_duration():
    traces = generate_user_study(WISH.build_apk(), participants=3, duration=90.0)
    for trace in traces:
        assert sum(e.think_time for e in trace.events) <= 90.0
        for event in trace.events:
            assert 2.0 <= event.think_time <= 12.0


def test_trace_generation_deterministic():
    a = generate_user_study(WISH.build_apk(), participants=2, seed=5)
    b = generate_user_study(WISH.build_apk(), participants=2, seed=5)
    assert [(e.event, e.index) for e in a[0].events] == [
        (e.event, e.index) for e in b[0].events
    ]


def test_trace_can_exclude_side_effects():
    traces = generate_user_study(
        WISH.build_apk(), participants=10, duration=300.0, include_side_effects=False
    )
    assert all(e.event != "buy" for t in traces for e in t.events)


def test_trace_walk_respects_screen_graph():
    apk = DOORDASH.build_apk()
    traces = generate_user_study(apk, participants=4, duration=200.0, seed=2)
    # replay the walk symbolically: every event must be legal on its screen
    for trace in traces:
        screen = apk.main().screen
        for event in trace.events:
            assert event.event in apk.screen(screen).events
            spec = apk.screen(screen).event(event.event)
            destination = destination_screen(apk, spec)
            if destination is not None:
                screen = destination


def test_replay_trace_executes_events():
    sim, runtime, _ = make_runtime(user="user-01")
    traces = generate_user_study(WISH.build_apk(), participants=1, duration=100.0)
    results = sim.run_process(replay_trace(runtime, traces[0]))
    assert results[0].event == "launch"
    assert len(results) == 1 + len(traces[0].events)
    # replay honors think times in virtual time
    assert sim.now >= sum(e.think_time for e in traces[0].events)
