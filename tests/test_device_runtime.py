"""Tests for the concrete device runtime (interpreter + measurement)."""

import pytest

from repro.apps.wish import SPEC as WISH
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport
from repro.server.content import Catalog


@pytest.fixture()
def env():
    sim = Simulator()
    origins, servers = WISH.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(WISH.build_apk(), transport, sim, WISH.default_profile())
    return sim, runtime, servers


def test_launch_renders_feed_and_thumbnails(env):
    sim, runtime, _ = env
    result = sim.run_process(runtime.launch())
    assert result.event == "launch"
    assert runtime.current_screen == "feed"
    # 1 feed + 30 thumbnails
    assert len(result.transactions) == 31
    feed = result.transactions[0]
    assert feed.request.uri.path == "/api/get-feed"
    assert feed.response.status == 200


def test_launch_latency_includes_processing_delay(env):
    sim, runtime, _ = env
    result = sim.run_process(runtime.launch())
    assert result.processing_delay == WISH.processing["launch"]
    assert result.latency >= result.processing_delay
    assert result.network_delay > 0


def test_dispatch_requires_launch(env):
    _, runtime, _ = env
    with pytest.raises(RuntimeError):
        runtime.dispatch("select_item", 0)


def test_select_item_navigates_to_detail(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        result = yield sim.spawn(runtime.dispatch("select_item", 3))
        return result

    result = sim.run_process(flow())
    assert runtime.current_screen == "detail"
    paths = [t.request.uri.path for t in result.transactions]
    assert "/product/get" in paths
    assert "/related/get" in paths
    assert "/product-img" in paths


def test_product_request_body_matches_flags(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        result = yield sim.spawn(runtime.dispatch("select_item", 0))
        return result

    result = sim.run_process(flow())
    product = next(
        t for t in result.transactions if t.request.uri.path == "/product/get"
    )
    body = product.request.body
    # has_credit is False in the default profile: no credit_id field
    assert body.get("credit_id") is None
    assert body.get("_client") == "android"
    assert body.get_all("_cap[]") == ["2", "4"]


def test_flag_controls_branch():
    sim = Simulator()
    origins, _ = WISH.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055), origins)
    profile = WISH.default_profile()
    profile.flags["has_credit"] = True
    profile.config["credit_id"] = "cc-42"
    runtime = AppRuntime(WISH.build_apk(), transport, sim, profile)

    def flow():
        yield sim.spawn(runtime.launch())
        result = yield sim.spawn(runtime.dispatch("select_item", 0))
        return result

    result = sim.run_process(flow())
    product = next(
        t for t in result.transactions if t.request.uri.path == "/product/get"
    )
    assert product.request.body.get("credit_id") == "cc-42"


def test_cookie_learned_after_first_response(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        result = yield sim.spawn(runtime.dispatch("select_item", 1))
        return result

    result = sim.run_process(flow())
    product = next(
        t for t in result.transactions if t.request.uri.path == "/product/get"
    )
    cookie = product.request.headers.get("Cookie")
    assert cookie and cookie.startswith("bsid=")
    # the launch feed request predates any Set-Cookie: empty jar
    feed = runtime.transaction_log[0]
    assert feed.request.headers.get("Cookie") == ""


def test_item_click_id_flows_into_detail_request(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        result = yield sim.spawn(runtime.dispatch("select_item", 4))
        return result

    result = sim.run_process(flow())
    feed = runtime.transaction_log[0]
    expected_id = feed.response.body.value["data"]["products"][4]["product_info"]["id"]
    product = next(
        t for t in result.transactions if t.request.uri.path == "/product/get"
    )
    assert product.request.body.get("cid") == expected_id


def test_merchant_chain(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        yield sim.spawn(runtime.dispatch("select_item", 2))
        result = yield sim.spawn(runtime.dispatch("view_merchant"))
        return result

    result = sim.run_process(flow())
    assert runtime.current_screen == "merchant"
    paths = [t.request.uri.path for t in result.transactions]
    assert paths[0] == "/api/merchant"
    assert "/api/ratings/get" in paths
    assert any(p.startswith("/merchant-img/") for p in paths)


def test_side_effect_event_reaches_server(env):
    sim, runtime, servers = env

    def flow():
        yield sim.spawn(runtime.launch())
        yield sim.spawn(runtime.dispatch("select_item", 2))
        result = yield sim.spawn(runtime.dispatch("buy"))
        return result

    sim.run_process(flow())
    api = servers["https://api.wish.com"]
    assert api.requests_by_route.get("cart-adds") == 1


def test_parallel_thumbnails_overlap(env):
    sim, runtime, _ = env
    result = sim.run_process(runtime.launch())
    thumbs = [t for t in result.transactions if t.request.uri.path == "/img"]
    assert len(thumbs) == 30
    # overlapping transfers: total wall time far less than serial sum
    serial_sum = sum(t.elapsed for t in thumbs)
    window = max(t.finished_at for t in thumbs) - min(t.started_at for t in thumbs)
    assert window < serial_sum / 2


def test_connection_pool_limits_concurrency(env):
    sim, runtime, _ = env
    result = sim.run_process(runtime.launch())
    thumbs = sorted(
        (t for t in result.transactions if t.request.uri.path == "/img"),
        key=lambda t: t.finished_at,
    )
    # with a 6-connection pool the 30 fetches drain in waves: the last
    # completion is well after the first (no single simultaneous burst)
    first_wave = thumbs[5].finished_at
    assert thumbs[-1].finished_at > first_wave + 0.01
    # and the 7th cannot complete inside the first wave window
    assert thumbs[6].finished_at >= first_wave


def test_available_events_match_screen(env):
    sim, runtime, _ = env
    sim.run_process(runtime.launch())
    assert set(runtime.available_events()) == {"select_item", "refresh"}


def test_index_clamped_to_list_bounds(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        result = yield sim.spawn(runtime.dispatch("select_item", 999))
        return result

    result = sim.run_process(flow())
    product = next(
        t for t in result.transactions if t.request.uri.path == "/product/get"
    )
    assert product.request.body.get("cid")  # clamped to the last item


def test_interaction_log_accumulates(env):
    sim, runtime, _ = env

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(1.0)
        yield sim.spawn(runtime.dispatch("refresh"))
        return None

    sim.run_process(flow())
    assert [r.event for r in runtime.interactions] == ["launch", "refresh"]
    assert len(runtime.transaction_log) == 62  # two feed loads
