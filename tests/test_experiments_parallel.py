"""Parallel experiment engine + analysis artifact cache tests.

The engine's contract is byte-identical output: for every figure the
plan/execute/merge decomposition — serial or fanned out over a real
process pool — must reproduce the serial runner's rows exactly.  The
serial runners therefore act as the differential oracle here, the same
way the naive signature scan does for the indexed dispatch path.
"""

import json

import pytest

from repro.analysis.pipeline import AnalysisOptions
from repro.analysis.serialize import dumps as dump_analysis
from repro.apps.registry import get_app
from repro.experiments import parallel, runner, scenario
from repro.experiments.cache import AnalysisArtifactCache


@pytest.fixture(autouse=True)
def preserve_prepared_memo():
    """Keep the in-process prepare_app memo as other tests expect it."""
    saved = dict(scenario._PREPARED)
    yield
    scenario._PREPARED.clear()
    scenario._PREPARED.update(saved)


def rows_json(rows):
    return json.dumps(rows, sort_keys=True)


# ======================================================================
# plan / merge decomposition
# ======================================================================
def test_plan_cells_canonical_order_matches_serial_loops():
    units = parallel.plan_cells(
        "fig15", {"apps": ["wish", "geek"], "rtts": (0.05, 0.1)}
    )
    assert [(kind, kwargs["name"], kwargs["rtt"]) for kind, kwargs, _ in units] == [
        ("fig15", "wish", 0.05),
        ("fig15", "wish", 0.1),
        ("fig15", "geek", 0.05),
        ("fig15", "geek", 0.1),
    ]


def test_plan_cells_fig17_has_baseline_first():
    units = parallel.plan_cells("fig17", {"probabilities": (0.0, 1.0)})
    assert [kind for kind, _, _ in units] == ["fig17_baseline", "fig17", "fig17"]


def test_plan_cells_rejects_unknown_figure():
    with pytest.raises(ValueError):
        parallel.plan_cells("fig99")


def test_merge_results_fig17_normalizes_against_baseline():
    cells = [
        {"probability": 0.0, "median_latency": 1.0, "server_bytes": 50},
        {"probability": 1.0, "median_latency": 0.5, "server_bytes": 200},
    ]
    merged = parallel.merge_results("fig17", [100] + cells)
    assert merged == runner.fig17_finalize(cells, 100)
    assert merged[1]["normalized_data_usage"] == 2.0


# ======================================================================
# serial vs parallel: byte-identical rows over a real process pool
# ======================================================================
def test_fig15_parallel_rows_byte_identical_to_serial():
    apps, rtts = ["wish", "geek"], (0.05, 0.1)
    serial = runner.fig15_percentile_sweep(rtts=rtts, participants=2, apps=apps)
    pooled = parallel.run_figure(
        "fig15", jobs=2, params={"apps": apps, "rtts": rtts, "participants": 2}
    )
    assert rows_json(pooled) == rows_json(serial)


def test_table3_parallel_rows_byte_identical_to_serial():
    apps = ["wish", "geek"]
    kwargs = {"fuzz_duration": 30.0, "trace_participants": 2, "trace_duration": 30.0}
    serial = runner.table3_rows(apps=apps, **kwargs)
    pooled = parallel.run_figure(
        "table3", jobs=2, params=dict(kwargs, apps=apps)
    )
    assert rows_json(pooled) == rows_json(serial)


def test_run_figure_inline_when_jobs_is_one():
    apps = ["wish"]
    serial = runner.fig13_main_interaction(runs=2, apps=apps)
    inline = parallel.run_figure("fig13", jobs=1, params={"apps": apps, "runs": 2})
    assert rows_json(inline) == rows_json(serial)


# ======================================================================
# on-disk artifact cache: round trip + invalidation
# ======================================================================
def _seed_dicts(store):
    snapshot = store.global_snapshot()
    return dict(snapshot._global_tags), dict(snapshot._global_fields)


def test_disk_cache_round_trip_rebuilds_equal_artifacts(tmp_path):
    cache = AnalysisArtifactCache(str(tmp_path))
    scenario._PREPARED.pop("wish", None)
    first = scenario.prepare_app("wish", fuzz_duration=20.0, disk_cache=cache)
    assert cache.writes == 1 and cache.hits == 0

    scenario._PREPARED.pop("wish", None)
    second = scenario.prepare_app("wish", fuzz_duration=20.0, disk_cache=cache)
    assert cache.hits == 1

    assert dump_analysis(second.analysis) == dump_analysis(first.analysis)
    assert second.config.to_json() == first.config.to_json()
    assert (first.seed_store is None) == (second.seed_store is None)
    if first.seed_store is not None:
        assert _seed_dicts(second.seed_store) == _seed_dicts(first.seed_store)


def test_disk_cache_round_trip_preserves_experiment_rows(tmp_path):
    cache = AnalysisArtifactCache(str(tmp_path))
    scenario._PREPARED.pop("wish", None)
    scenario.prepare_app("wish", disk_cache=cache)
    fresh = runner.user_study_run("wish", proxied=True, participants=2)

    scenario._PREPARED.pop("wish", None)
    scenario.prepare_app("wish", disk_cache=cache)  # rebuilt from disk
    cached = runner.user_study_run("wish", proxied=True, participants=2)
    assert rows_json(cached) == rows_json(fresh)


def test_cache_key_changes_with_options_params_and_code(tmp_path):
    cache = AnalysisArtifactCache(str(tmp_path))
    apk = get_app("wish").build_apk()
    options = AnalysisOptions(run_slicing=False)
    base = cache.key_for("wish", apk, options, 90.0, True)

    assert cache.key_for(
        "wish", apk, AnalysisOptions(run_slicing=True), 90.0, True
    ) != base
    assert cache.key_for("wish", apk, options, 60.0, True) != base
    assert cache.key_for("wish", apk, options, 90.0, False) != base
    assert cache.key_for("geek", get_app("geek").build_apk(), options, 90.0, True) != base

    edited = get_app("wish").build_apk()
    edited.config_defaults["__edited__"] = "1"
    assert cache.key_for("wish", edited, options, 90.0, True) != base

    # unchanged inputs produce the same key across rebuilds
    assert cache.key_for("wish", get_app("wish").build_apk(), options, 90.0, True) == base


def test_cache_invalidate_and_clear(tmp_path):
    cache = AnalysisArtifactCache(str(tmp_path))
    scenario._PREPARED.pop("wish", None)
    scenario.prepare_app("wish", fuzz_duration=20.0, disk_cache=cache)
    assert len(cache.entries()) == 1
    assert cache.invalidate("wish") == 1
    assert cache.entries() == {}

    key = "0" * 32
    assert cache.load("wish", key) is None  # miss after invalidation
    scenario._PREPARED.pop("wish", None)
    scenario.prepare_app("wish", fuzz_duration=20.0, disk_cache=cache)
    assert cache.clear() == 1
    assert cache.entries() == {}


def test_cache_rejects_stale_format_version(tmp_path):
    cache = AnalysisArtifactCache(str(tmp_path))
    scenario._PREPARED.pop("wish", None)
    prepared = scenario.prepare_app("wish", fuzz_duration=20.0, disk_cache=cache)
    apk = prepared.apk
    key = cache.key_for(
        "wish", apk, AnalysisOptions(run_slicing=False), 20.0, True
    )
    path = cache._path_for("wish", key)
    payload = json.loads(open(path).read())
    payload["format"] = -1
    open(path, "w").write(json.dumps(payload))
    assert cache.load("wish", key) is None


# ======================================================================
# break-even projection + warm shared pool
# ======================================================================
def test_should_parallelize_cheap_cells_stay_serial():
    # 10 cells at 1ms each: serial 10ms, pool spawn alone costs 300ms
    assert not parallel.should_parallelize(
        0.001, 10, workers=4, spawn_cost_s=parallel.DEFAULT_SPAWN_COST_S
    )


def test_should_parallelize_expensive_cells_fan_out():
    # 8 cells at 2s each over 4 workers: 16s serial vs ~4.3s projected
    assert parallel.should_parallelize(
        2.0, 8, workers=4, spawn_cost_s=parallel.DEFAULT_SPAWN_COST_S
    )


def test_should_parallelize_single_worker_never_pays():
    assert not parallel.should_parallelize(
        10.0, 100, workers=1, spawn_cost_s=0.0
    )


def test_should_parallelize_warm_pool_lowers_break_even():
    # borderline cells the cold pool loses on but the warm pool wins
    # (serial 0.30s vs cold ~0.41s vs warm ~0.11s)
    cost, cells, workers = 0.05, 6, 3
    assert not parallel.should_parallelize(
        cost, cells, workers, spawn_cost_s=parallel.DEFAULT_SPAWN_COST_S
    )
    assert parallel.should_parallelize(cost, cells, workers, spawn_cost_s=0.0)


def test_effective_workers_capped_by_cores_and_cells():
    import os

    cores = os.cpu_count() or 1
    assert parallel.effective_workers(jobs=64, cells=2) == min(2, cores)
    assert parallel.effective_workers(jobs=1, cells=100) == 1
    assert parallel.effective_workers(jobs=64, cells=100) == min(64, cores)


def test_break_even_fallback_is_byte_identical_and_counted():
    from repro.metrics.perf import PERF

    apps = ["wish", "geek"]
    serial = runner.fig13_main_interaction(runs=2, apps=apps)
    with PERF.capture() as perf:
        decided = parallel.run_figure(
            "fig13", jobs=8, params={"apps": apps, "runs": 2}
        )
        snapshot = perf.snapshot()
    assert rows_json(decided) == rows_json(serial)
    # cheap two-cell sweep on this box: the projection keeps it serial
    # (on a many-core box with slow cells it may legitimately fan out)
    counters = snapshot["counters"]
    assert (
        counters.get("experiments.fallback_serial", 0)
        + counters.get("experiments.parallel_cells", 0)
    ) > 0


def test_forced_pool_rows_byte_identical_and_pool_reused():
    from repro.metrics.perf import PERF

    apps = ["wish", "geek"]
    serial = runner.fig13_main_interaction(runs=2, apps=apps)
    try:
        pooled = parallel.run_figure(
            "fig13", jobs=2, params={"apps": apps, "runs": 2},
            force_parallel=True,
        )
        assert rows_json(pooled) == rows_json(serial)
        assert parallel._SHARED_POOL is not None
        with PERF.capture() as perf:
            again = parallel.run_figure(
                "fig13", jobs=2, params={"apps": apps, "runs": 2},
                force_parallel=True,
            )
            snapshot = perf.snapshot()
        assert rows_json(again) == rows_json(serial)
        assert snapshot["counters"].get("experiments.pool_reuse", 0) >= 1
    finally:
        parallel.shutdown_shared_pool()
    assert parallel._SHARED_POOL is None
