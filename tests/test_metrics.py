"""Tests for repro.metrics."""

import pytest

from repro.httpmsg.body import BlobBody
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.metrics.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    reduction,
    summarize_latencies,
)
from repro.metrics.usage import DataUsage


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 50) == 5.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 25) == 1.75


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_cdf_points_simple():
    assert cdf_points([2.0, 1.0]) == [(1.0, 0.5), (2.0, 1.0)]


def test_reduction():
    assert reduction(2.0, 1.0) == 0.5
    assert reduction(0.0, 1.0) == 0.0
    assert reduction(1.0, 1.5) == -0.5


def test_summarize_latencies_keys():
    summary = summarize_latencies([1.0, 2.0, 3.0])
    assert summary["count"] == 3
    assert summary["mean"] == 2.0
    assert summary["min"] == 1.0
    assert summary["max"] == 3.0


def make_transaction(size=1000):
    request = Request("GET", Uri.parse("https://a.com/x"))
    response = Response(200, body=BlobBody("b", size))
    return Transaction(request, response)


def test_data_usage_counts_both_directions():
    usage = DataUsage()
    transaction = make_transaction(1000)
    usage.add_transactions([transaction])
    expected = transaction.request.wire_size() + transaction.response.wire_size()
    assert usage.demand_bytes == expected
    assert usage.total == expected


def test_data_usage_normalization():
    baseline = DataUsage()
    baseline.add_transactions([make_transaction(10_000)])
    heavy = DataUsage()
    heavy.add_transactions([make_transaction(10_000)])
    heavy.prefetch_bytes = baseline.total  # same again via prefetch
    assert heavy.normalized_to(baseline) == pytest.approx(2.0, rel=0.01)


def test_data_usage_zero_baseline():
    assert DataUsage().normalized_to(DataUsage()) == 0.0
