"""Tests for repro.httpmsg.cookies."""

import pytest

from repro.httpmsg.cookies import (
    CookieJar,
    format_cookie_header,
    parse_cookie_header,
    parse_set_cookie,
)
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Response


def test_parse_cookie_header():
    assert parse_cookie_header("a=1; b=2") == [("a", "1"), ("b", "2")]


def test_parse_cookie_header_empty():
    assert parse_cookie_header("") == []
    assert parse_cookie_header("  ;  ") == []


def test_format_round_trip():
    pairs = [("bsid", "c38e"), ("lang", "en")]
    assert parse_cookie_header(format_cookie_header(pairs)) == pairs


def test_parse_set_cookie_with_attributes():
    name, value, attributes = parse_set_cookie("bsid=c38e; Path=/; Secure")
    assert (name, value) == ("bsid", "c38e")
    assert attributes["path"] == "/"
    assert "secure" in attributes


def test_parse_set_cookie_empty_raises():
    with pytest.raises(ValueError):
        parse_set_cookie("   ")


def test_jar_stores_from_response():
    jar = CookieJar()
    response = Response(200, Headers([("Set-Cookie", "bsid=x1")]))
    jar.store_from_response("https://api.wish.com", response)
    assert jar.get("https://api.wish.com", "bsid") == "x1"
    assert jar.cookie_header("https://api.wish.com") == "bsid=x1"


def test_jar_isolated_per_origin():
    jar = CookieJar()
    jar.set("https://a.com", "k", "1")
    assert jar.cookie_header("https://b.com") == ""


def test_jar_header_sorted_for_determinism():
    jar = CookieJar()
    jar.set("https://a.com", "z", "1")
    jar.set("https://a.com", "a", "2")
    assert jar.cookie_header("https://a.com") == "a=2; z=1"


def test_jar_overwrites_same_name():
    jar = CookieJar()
    jar.set("https://a.com", "k", "1")
    jar.set("https://a.com", "k", "2")
    assert jar.get("https://a.com", "k") == "2"


def test_jar_clear():
    jar = CookieJar()
    jar.set("https://a.com", "k", "1")
    jar.clear()
    assert jar.cookie_header("https://a.com") == ""
