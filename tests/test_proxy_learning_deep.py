"""Deeper dynamic-learning scenarios: URI hosts, alternations, header
dependencies, and unstable (nonce) fields."""


from repro.analysis import analyze_apk
from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.apk.builder import AppBuilder, MethodBuilder
from repro.httpmsg.body import JsonBody
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.proxy.learning import DynamicLearner


def host():
    return UnknownAtom("env:config:host")


def make_analysis(succ_uri_atoms=None, succ_fields=None, edges=None):
    feed = TransactionSignature(
        "P#0",
        RequestTemplate("GET", ValueTemplate([host(), ConstAtom("/list")])),
        ResponseTemplate(paths={FieldPath.parse("body.ids[]")}),
    )
    succ = TransactionSignature(
        "S#0",
        RequestTemplate(
            "GET",
            ValueTemplate(succ_uri_atoms or [host(), ConstAtom("/item")]),
            succ_fields or {},
        ),
        ResponseTemplate(),
    )
    return AnalysisResult("t", [feed, succ], edges or [])


def list_transaction(ids=("x1", "y2"), host_text="https://api.test.com"):
    request = Request("GET", Uri.parse(host_text + "/list"))
    response = Response(200, body=JsonBody({"ids": list(ids)}))
    return Transaction(request, response)


def test_uri_path_segment_dependency_learned():
    """DoorDash-style: the dep value sits inside the URI path."""
    atoms = [host(), ConstAtom("/item/"), DepAtom("P#0", FieldPath.parse("body.ids[]")), ConstAtom("/view")]
    edges = [
        DependencyEdge("P#0", FieldPath.parse("body.ids[]"), "S#0", FieldPath("uri"))
    ]
    learner = DynamicLearner(make_analysis(succ_uri_atoms=atoms, edges=edges))
    ready = learner.observe(list_transaction(ids=("ab", "cd")), "u1")
    uris = sorted(r.request.uri.to_string() for r in ready)
    assert uris == [
        "https://api.test.com/item/ab/view",
        "https://api.test.com/item/cd/view",
    ]


def test_uri_host_learned_from_any_matching_signature():
    """The host tag is shared: observing the predecessor teaches it."""
    edges = [
        DependencyEdge(
            "P#0", FieldPath.parse("body.ids[]"), "S#0", FieldPath.parse("query.id")
        )
    ]
    fields = {
        FieldPath.parse("query.id"): ValueTemplate(
            [DepAtom("P#0", FieldPath.parse("body.ids[]"))]
        )
    }
    learner = DynamicLearner(make_analysis(succ_fields=fields, edges=edges))
    ready = learner.observe(
        list_transaction(host_text="https://eu-west.api.test.com"), "u1"
    )
    assert ready
    assert all(
        r.request.uri.host == "eu-west.api.test.com" for r in ready
    )


def test_alternation_field_adapts_to_recent_observation():
    """Fig. 8: the proxy mirrors the most recent run-time condition."""
    fields = {
        FieldPath.parse("query.id"): ValueTemplate(
            [DepAtom("P#0", FieldPath.parse("body.ids[]"))]
        ),
        FieldPath.parse("query.count"): ValueTemplate(
            [AltAtom([ValueTemplate.const("30"), ValueTemplate.const("1")])]
        ),
    }
    edges = [
        DependencyEdge(
            "P#0", FieldPath.parse("body.ids[]"), "S#0", FieldPath.parse("query.id")
        )
    ]
    learner = DynamicLearner(make_analysis(succ_fields=fields, edges=edges))
    # before any successor observation the alternation is unresolved
    assert learner.observe(list_transaction(), "u1") == []
    # observe an actual successor with count=1
    observed = Transaction(
        Request("GET", Uri.parse("https://api.test.com/item?id=zz&count=1")),
        Response(200, body=JsonBody({})),
    )
    learner.observe(observed, "u1")
    ready = learner.observe(list_transaction(ids=("q9",)), "u1")
    assert ready
    assert ready[0].request.uri.query_get("count") == "1"
    # the condition flips: proxy adapts to count=30
    observed = Transaction(
        Request("GET", Uri.parse("https://api.test.com/item?id=zz&count=30")),
        Response(200, body=JsonBody({})),
    )
    learner.observe(observed, "u1")
    ready = learner.observe(list_transaction(ids=("q8",)), "u1")
    assert ready[0].request.uri.query_get("count") == "30"


def test_response_header_dependency():
    """A successor keyed by a *response header* of its predecessor."""
    feed = TransactionSignature(
        "P#0",
        RequestTemplate("GET", ValueTemplate([host(), ConstAtom("/list")])),
        ResponseTemplate(headers={"X-Next-Token"}),
    )
    succ_fields = {
        FieldPath.parse("query.token"): ValueTemplate(
            [DepAtom("P#0", FieldPath("header", ("X-Next-Token",)))]
        )
    }
    succ = TransactionSignature(
        "S#0",
        RequestTemplate("GET", ValueTemplate([host(), ConstAtom("/page")]), succ_fields),
        ResponseTemplate(),
    )
    edges = [
        DependencyEdge(
            "P#0", FieldPath("header", ("X-Next-Token",)), "S#0",
            FieldPath.parse("query.token"),
        )
    ]
    learner = DynamicLearner(AnalysisResult("t", [feed, succ], edges))
    transaction = Transaction(
        Request("GET", Uri.parse("https://api.test.com/list")),
        Response(200, Headers([("X-Next-Token", "tok-77")]), JsonBody({})),
    )
    ready = learner.observe(transaction, "u1")
    assert ready
    assert ready[0].request.uri.query_get("token") == "tok-77"


def test_nonce_fields_block_prefetch_matching():
    """A request containing Env.nonce can be reconstructed but never
    matches the client's next request — C3's unstable-value boundary."""
    app = AppBuilder("com.test.nonce")
    app.config_default("api_host", "https://api.test.com")
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/list"))
    resp = m.execute(m.new_request("GET", url))
    ids = m.json_get(m.body_json(resp), "ids")
    with m.foreach(ids) as item_id:
        iurl = m.concat(m.config("api_host"), m.const("/item?id="), item_id)
        req = m.new_request("GET", iurl)
        m.add_query(req, "nonce", m.nonce())
        m.invoke("Http.bodyJson", m.execute(req))
    m.render(ids)
    app.method("Main", m)
    app.component("main", "Main", screen="home", main=True)
    app.screen("home")
    analysis = analyze_apk(app.build())
    succ = next(s for s in analysis.signatures if s.site == "Main.onStart#1")
    nonce_template = succ.request.fields[FieldPath.parse("query.nonce")]
    tags = [a.tag for a in nonce_template.unknown_atoms()]
    assert tags == ["env:nonce"]
    # the learner CAN build an instance (it learned a stale nonce), but
    # the client's fresh nonce guarantees a cache miss, never corruption
    learner = DynamicLearner(analysis)
    observed = Transaction(
        Request("GET", Uri.parse("https://api.test.com/item?id=a&nonce=n1")),
        Response(200, body=JsonBody({})),
    )
    learner.observe(observed, "u1")
    ready = learner.observe(list_transaction(ids=("zz",)), "u1")
    assert ready
    built = ready[0].request
    client = Request("GET", Uri.parse("https://api.test.com/item?id=zz&nonce=n2"))
    assert built.exact_key() != client.exact_key()
