"""Wake-index tests: learning a value retries only blocked instances.

The seed rescanned the entire pending list on every observation; the
wake index maps each missing tag/field key to the instances blocked on
it.  These tests pin the targeting (only affected instances retried)
and the unchanged observable behavior (pending_count, dedupe,
oldest-first eviction at MAX_PENDING).
"""


from repro.analysis.model import (
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.body import JsonBody
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.proxy import learning as learning_module
from repro.proxy.instances import RequestInstance
from repro.proxy.learning import DynamicLearner


def host():
    return UnknownAtom("env:config:api_host")


def successor(site, path_suffix, tag):
    """Successor blocked on a dep value and one env tag."""
    dep = DepAtom("Feed#0", FieldPath.parse("body.items[].id"))
    return TransactionSignature(
        site,
        RequestTemplate(
            method="POST",
            uri=ValueTemplate([host(), ConstAtom(path_suffix)]),
            fields={
                FieldPath.parse("body.cid"): ValueTemplate([dep]),
                FieldPath.parse("body.token"): ValueTemplate([UnknownAtom(tag)]),
            },
            body_kind="form",
        ),
        ResponseTemplate(),
    )


def two_successor_analysis():
    feed = TransactionSignature(
        "Feed#0",
        RequestTemplate(
            method="GET", uri=ValueTemplate([host(), ConstAtom("/feed")])
        ),
        ResponseTemplate(paths={FieldPath.parse("body.items[].id")}),
    )
    alpha = successor("Alpha#0", "/alpha", "env:config:alpha")
    beta = successor("Beta#0", "/beta", "env:config:beta")
    teacher_alpha = TransactionSignature(
        "TeachAlpha#0",
        RequestTemplate(
            method="GET",
            uri=ValueTemplate([host(), ConstAtom("/teach-alpha")]),
            fields={
                FieldPath.parse("query.t"): ValueTemplate(
                    [UnknownAtom("env:config:alpha")]
                )
            },
        ),
        ResponseTemplate(),
    )
    edges = [
        DependencyEdge(
            "Feed#0", FieldPath.parse("body.items[].id"),
            "Alpha#0", FieldPath.parse("body.cid"),
        ),
        DependencyEdge(
            "Feed#0", FieldPath.parse("body.items[].id"),
            "Beta#0", FieldPath.parse("body.cid"),
        ),
    ]
    return AnalysisResult("t", [feed, alpha, beta, teacher_alpha], edges)


def feed_transaction(item_ids=("a1", "b2")):
    return Transaction(
        Request("GET", Uri.parse("https://api.test.com/feed")),
        Response(200, body=JsonBody({"items": [{"id": i} for i in item_ids]})),
    )


def teach_alpha_transaction(value="tok-A"):
    return Transaction(
        Request(
            "GET",
            Uri.parse("https://api.test.com/teach-alpha?t={}".format(value)),
        ),
        Response(200, body=JsonBody({"ok": True})),
    )


def count_try_builds(monkeypatch):
    """Instrument RequestInstance.try_build with a per-site counter."""
    counts = {}
    original = RequestInstance.try_build

    def counting(self, store, preferred_variant=None):
        counts[self.signature.site] = counts.get(self.signature.site, 0) + 1
        return original(self, store, preferred_variant)

    monkeypatch.setattr(RequestInstance, "try_build", counting)
    return counts


# -- targeting ---------------------------------------------------------------
def test_learning_tag_retries_only_waiting_instances(monkeypatch):
    learner = DynamicLearner(two_successor_analysis())
    learner.observe(feed_transaction(), "u1")  # spawns Alpha×2 + Beta×2
    assert learner.pending_count == 4
    counts = count_try_builds(monkeypatch)
    ready = learner.observe(teach_alpha_transaction(), "u1")
    # only the Alpha instances (blocked on env:config:alpha) retried...
    assert counts.get("Alpha#0", 0) == 2
    assert counts.get("Beta#0", 0) == 0
    # ...and they complete, leaving only Beta pending
    assert sorted(r.instance.signature.site for r in ready) == ["Alpha#0", "Alpha#0"]
    assert learner.pending_count == 2
    assert {i.signature.site for i in learner._pending} == {"Beta#0"}


def test_unrelated_observation_retries_nothing(monkeypatch):
    learner = DynamicLearner(two_successor_analysis())
    learner.observe(feed_transaction(), "u1")
    counts = count_try_builds(monkeypatch)
    # same feed again: spawned duplicates are deduped, nothing learned
    # beyond already-known values → no pending retries at all
    learner.observe(feed_transaction(), "u1")
    assert counts.get("Alpha#0", 0) == 0
    assert counts.get("Beta#0", 0) == 0


def test_completed_instances_not_retried_on_later_wakes(monkeypatch):
    learner = DynamicLearner(two_successor_analysis())
    learner.observe(feed_transaction(), "u1")
    learner.observe(teach_alpha_transaction("tok-1"), "u1")
    assert learner.pending_count == 2  # Beta instances remain
    counts = count_try_builds(monkeypatch)
    # alpha changes value again: the completed Alpha instances are gone
    learner.observe(teach_alpha_transaction("tok-2"), "u1")
    assert counts.get("Alpha#0", 0) == 0


def test_per_user_tag_wakes_only_that_users_instances(monkeypatch):
    analysis = two_successor_analysis()
    # make Alpha's missing tag per-user (env:cookie)
    learner = DynamicLearner(analysis)
    learner.observe(feed_transaction(), "u1")
    learner.observe(feed_transaction(), "u2")
    assert learner.pending_count == 8
    counts = count_try_builds(monkeypatch)
    learner.observe(teach_alpha_transaction(), "u1")
    # env:config:alpha is app-level → instances of BOTH users wake
    assert counts.get("Alpha#0", 0) == 4
    assert counts.get("Beta#0", 0) == 0


# -- unchanged observable behavior -------------------------------------------
def test_pending_count_and_dedupe_unchanged():
    learner = DynamicLearner(two_successor_analysis())
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")
    assert learner.pending_count == 2  # Alpha + Beta for a1, deduped


def test_eviction_at_max_pending_drops_oldest_first(monkeypatch):
    monkeypatch.setattr(learning_module, "MAX_PENDING", 6)
    learner = DynamicLearner(two_successor_analysis())
    learner.observe(feed_transaction(item_ids=("o1", "o2", "o3")), "u1")
    assert learner.pending_count == 6
    before = list(learner._pending)  # FIFO order
    learner.observe(feed_transaction(item_ids=("n1",)), "u1")
    assert learner.pending_count == 6
    after = list(learner._pending)
    # exactly the two oldest instances were evicted, newest present
    assert before[0] not in after
    assert before[1] not in after
    assert all(i in after for i in before[2:])
    assert [i.dep_values["body.cid"] for i in after].count("n1") == 2
    # bookkeeping stays consistent
    assert len(learner._pending_keys) == learner.pending_count


def test_evicted_instances_do_not_wake(monkeypatch):
    monkeypatch.setattr(learning_module, "MAX_PENDING", 2)
    learner = DynamicLearner(two_successor_analysis())
    learner.observe(feed_transaction(item_ids=("x1", "x2", "x3")), "u1")
    assert learner.pending_count == 2
    counts = count_try_builds(monkeypatch)
    ready = learner.observe(teach_alpha_transaction(), "u1")
    # at most the live Alpha instances retried; evicted ones never
    assert counts.get("Alpha#0", 0) <= 2
    assert all(r.instance.signature.site == "Alpha#0" for r in ready)
    assert len(learner._pending_keys) == learner.pending_count


def test_preferred_variant_change_wakes_instances():
    """A newly observed field-set variant can complete an instance even
    when no store value changed: the (user, site) variant wake key."""
    from repro.httpmsg.body import FormBody

    feed = TransactionSignature(
        "Feed#0",
        RequestTemplate(
            method="GET", uri=ValueTemplate([host(), ConstAtom("/feed")])
        ),
        ResponseTemplate(paths={FieldPath.parse("body.items[].id")}),
    )
    dep = DepAtom("Feed#0", FieldPath.parse("body.items[].id"))
    # body.ref depends on a predecessor that never runs, so the larger
    # variant can never be built; the smaller one always can
    ghost = DepAtom("Ghost#0", FieldPath.parse("body.token"))
    succ = TransactionSignature(
        "Succ#0",
        RequestTemplate(
            method="POST",
            uri=ValueTemplate([host(), ConstAtom("/succ")]),
            fields={
                FieldPath.parse("body.cid"): ValueTemplate([dep]),
                FieldPath.parse("body.ref"): ValueTemplate([ghost]),
            },
            body_kind="form",
        ),
        ResponseTemplate(),
        variants=[
            frozenset({"body.cid", "body.ref"}),
            frozenset({"body.cid"}),
        ],
    )
    edges = [
        DependencyEdge(
            "Feed#0", FieldPath.parse("body.items[].id"),
            "Succ#0", FieldPath.parse("body.cid"),
        )
    ]
    learner = DynamicLearner(AnalysisResult("t", [feed, succ], edges))

    def observed_succ(fields):
        return Transaction(
            Request(
                "POST",
                Uri.parse("https://api.test.com/succ"),
                body=FormBody(list(fields)),
            ),
            Response(200, body=JsonBody({"ok": True})),
        )

    # the app is first seen sending the larger variant → preferred
    learner.observe(observed_succ([("cid", "zz"), ("ref", "r0")]), "u1")
    # the spawned instance honors the preferred (unbuildable) variant
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")
    assert learner.pending_count == 1
    version_before = learner.store.version
    # same field values, smaller variant: no store change, only the
    # preferred variant flips — the variant wake must retry the instance
    ready = learner.observe(observed_succ([("cid", "zz")]), "u1")
    assert learner.store.version == version_before
    assert [r.instance.signature.site for r in ready] == ["Succ#0"]
    assert ready[0].request.body.get("cid") == "a1"
    assert ready[0].request.body.get("ref") is None
    assert learner.pending_count == 0
