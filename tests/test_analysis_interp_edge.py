"""Edge-case tests for the abstract interpreter."""


from repro.analysis.interp import AbstractInterpreter, InterpOptions
from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apk.builder import AppBuilder, Lit, MethodBuilder
from repro.httpmsg.fieldpath import FieldPath


def shell(body_builder, extra=None):
    """Wrap one onStart body into a runnable APK."""
    app = AppBuilder("com.test.edge")
    app.config_default("api_host", "https://a.com")
    m = MethodBuilder("onStart", params=["this", "intent"])
    body_builder(app, m)
    app.method("Main", m)
    if extra:
        extra(app)
    app.component("main", "Main", screen="home", main=True)
    app.screen("home")
    return app.build()


def test_constant_branch_takes_one_arm_only():
    def build(app, m):
        cond = m.const(True)
        with m.if_(cond):
            req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/yes")))
            m.execute(req)
        with m.else_():
            req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/no")))
            m.execute(req)

    result = analyze_apk(shell(build))
    uris = [s.request.uri.regex() for s in result.signatures]
    assert any("/yes" in u for u in uris)
    assert not any("/no" in u for u in uris)


def test_unknown_branch_explores_both_arms():
    def build(app, m):
        cond = m.flag("maybe")
        with m.if_(cond):
            req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/yes")))
            m.execute(req)
        with m.else_():
            req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/no")))
            m.execute(req)

    result = analyze_apk(shell(build))
    assert len(result.signatures) == 2


def test_return_in_one_abstract_arm_does_not_kill_the_other():
    def build(app, m):
        cond = m.flag("maybe")
        with m.if_(cond):
            m.ret()
        req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/after")))
        m.execute(req)

    result = analyze_apk(shell(build))
    assert any("/after" in s.request.uri.regex() for s in result.signatures)


def test_call_depth_guard_terminates():
    def build(app, m):
        m.call("Main.helper", "this")

    def extra(app):
        helper = MethodBuilder("helper", params=["this"])
        helper.call("Main.helper2", "this")
        app.method("Main", helper)
        helper2 = MethodBuilder("helper2", params=["this"])
        helper2.call("Main.helper", "this")  # mutual recursion
        app.method("Main", helper2)

    # the depth bound cuts the recursion; analysis must terminate
    result = analyze_apk(shell(build, extra), AnalysisOptions(run_slicing=False))
    assert result.signatures == []


def test_json_has_on_app_built_object_is_concrete():
    def build(app, m):
        obj = m.json_new()
        m.json_put(obj, "present", Lit("v"))
        has = m.json_has(obj, "present")
        with m.if_(has):
            req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/taken")))
            m.execute(req)
        with m.else_():
            req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/nottaken")))
            m.execute(req)

    result = analyze_apk(shell(build))
    uris = [s.request.uri.regex() for s in result.signatures]
    assert any("/taken" in u for u in uris)
    assert not any("/nottaken" in u for u in uris)


def test_foreach_over_app_list_iterates_each_element():
    def build(app, m):
        items = m.invoke("List.new")
        m.invoke("List.add", items, m.const("/a"))
        m.invoke("List.add", items, m.const("/b"))
        with m.foreach(items) as item:
            req = m.new_request("GET", m.concat(m.config("api_host"), item))
            m.execute(req)

    result = analyze_apk(shell(build))
    # one site, but its URI merged across both concrete elements
    assert len(result.signatures) == 1
    template = result.signatures[0].request.uri
    assert template.matches("https://a.com/a")
    assert template.matches("https://a.com/b")
    assert not template.matches("https://a.com/c")


def test_component_start_cycle_guard():
    app = AppBuilder("com.test.cycle")
    app.config_default("api_host", "https://a.com")
    m = MethodBuilder("onStart", params=["this", "intent"])
    intent = m.intent_new()
    m.start_component(intent, "other")
    app.method("A", m)
    m = MethodBuilder("onStart", params=["this", "intent"])
    req = m.new_request("GET", m.concat(m.config("api_host"), m.const("/x")))
    m.execute(req)
    intent = m.intent_new()
    m.start_component(intent, "main")  # cycle back
    app.method("B", m)
    app.component("main", "A", screen="home", main=True)
    app.component("other", "B", screen="other")
    app.screen("home")
    app.screen("other")
    result = analyze_apk(app.build())
    assert len(result.signatures) == 1  # terminated, one execute site


def test_site_merging_across_two_callers():
    """One helper with one execute, called from two handlers: one site,
    merged templates."""
    app = AppBuilder("com.test.merge")
    app.config_default("api_host", "https://a.com")

    helper = MethodBuilder("fetch", params=["this", "kind"])
    url = m_url = helper.concat(
        helper.config("api_host"), helper.const("/fetch?kind="), "kind"
    )
    helper.execute(helper.new_request("GET", m_url))
    app.method("Main", helper)

    m = MethodBuilder("onStart", params=["this", "intent"])
    m.call("Main.fetch", "this", m.const("feed"))
    m.call("Main.fetch", "this", m.const("promo"))
    app.method("Main", m)
    app.component("main", "Main", screen="home", main=True)
    app.screen("home")

    result = analyze_apk(app.build())
    assert len(result.signatures) == 1
    signature = result.signatures[0]
    template = signature.request.fields[FieldPath.parse("query.kind")]
    assert template.matches("feed")
    assert template.matches("promo")
    assert not template.matches("other")


def test_max_list_iterations_bounds_work():
    options = InterpOptions(max_list_iterations=2)

    def build(app, m):
        items = m.invoke("List.new")
        for index in range(10):
            m.invoke("List.add", items, m.const("/p{}".format(index)))
        with m.foreach(items) as item:
            req = m.new_request("GET", m.concat(m.config("api_host"), item))
            m.execute(req)

    apk = shell(build)
    interpreter = AbstractInterpreter(apk, options)
    recorder = interpreter.run()
    site = next(iter(recorder.snapshots))
    assert len(recorder.snapshots[site]) == 2  # bounded, not 10
