"""Tests for dynamic learning (Fig. 6/7 workflows)."""


from repro.analysis.model import (
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.body import FormBody, JsonBody
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.proxy.learning import DynamicLearner


def host():
    return UnknownAtom("env:config:api_host")


def make_analysis():
    """Feed (predecessor) + detail (successor, incl. env fields)."""
    feed = TransactionSignature(
        "Feed.onStart#0",
        RequestTemplate(
            method="GET",
            uri=ValueTemplate([host(), ConstAtom("/feed")]),
            fields={
                FieldPath.parse("header.Cookie"): ValueTemplate(
                    [UnknownAtom("env:cookie")]
                )
            },
        ),
        ResponseTemplate(paths={FieldPath.parse("body.items[].id")}),
    )
    dep = DepAtom("Feed.onStart#0", FieldPath.parse("body.items[].id"))
    detail = TransactionSignature(
        "Detail.fetch#0",
        RequestTemplate(
            method="POST",
            uri=ValueTemplate([host(), ConstAtom("/detail")]),
            fields={
                FieldPath.parse("header.Cookie"): ValueTemplate(
                    [UnknownAtom("env:cookie")]
                ),
                FieldPath.parse("body.cid"): ValueTemplate([dep]),
                FieldPath.parse("body._ver"): ValueTemplate(
                    [UnknownAtom("env:config:version")]
                ),
            },
            body_kind="form",
        ),
        ResponseTemplate(),
    )
    edges = [
        DependencyEdge(
            "Feed.onStart#0",
            FieldPath.parse("body.items[].id"),
            "Detail.fetch#0",
            FieldPath.parse("body.cid"),
        )
    ]
    return AnalysisResult("com.test", [feed, detail], edges)


def feed_transaction(cookie="", item_ids=("a1", "b2"), with_set_cookie=True):
    request = Request(
        "GET",
        Uri.parse("https://api.test.com/feed"),
        Headers([("Cookie", cookie)]),
    )
    headers = Headers()
    if with_set_cookie:
        headers.add("Set-Cookie", "bsid=fresh")
    response = Response(
        200, headers, JsonBody({"items": [{"id": i, "price": 10} for i in item_ids]})
    )
    return Transaction(request, response)


def detail_transaction(cid="a1", version="9.9"):
    request = Request(
        "POST",
        Uri.parse("https://api.test.com/detail"),
        Headers([("Cookie", "bsid=fresh")]),
        FormBody([("cid", cid), ("_ver", version)]),
    )
    return Transaction(request, Response(200, body=JsonBody({"ok": True})))


def test_unmatched_transaction_is_ignored():
    learner = DynamicLearner(make_analysis())
    other = Transaction(
        Request("GET", Uri.parse("https://elsewhere.com/x")), Response(200)
    )
    assert learner.observe(other, "u1") == []


def test_predecessor_spawns_pending_instances():
    learner = DynamicLearner(make_analysis())
    ready = learner.observe(feed_transaction(), "u1")
    # _ver (env:config:version) has never been observed → still pending
    assert ready == []
    assert learner.pending_count == 2  # one per item id


def test_successor_observation_completes_pending():
    learner = DynamicLearner(make_analysis())
    learner.observe(feed_transaction(item_ids=("a1", "b2", "c3")), "u1")
    ready = learner.observe(detail_transaction(cid="a1"), "u1")
    # remaining items become prefetchable using the learned _ver
    cids = sorted(r.request.body.get("cid") for r in ready)
    assert cids == ["a1", "b2", "c3"]
    for r in ready:
        assert r.request.body.get("_ver") == "9.9"
        assert r.request.headers.get("Cookie") == "bsid=fresh"
        assert r.request.uri.to_string() == "https://api.test.com/detail"


def test_learned_values_enable_future_first_sight_prefetch():
    learner = DynamicLearner(make_analysis())
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")
    learner.observe(detail_transaction(), "u1")
    # a NEW feed for the same user completes instantly
    ready = learner.observe(feed_transaction(item_ids=("zz",)), "u1")
    assert [r.request.body.get("cid") for r in ready] == ["zz"]


def test_cookie_tracked_from_set_cookie_not_stale_request():
    learner = DynamicLearner(make_analysis())
    learner.observe(detail_transaction(), "u1")  # learn _ver globally
    # the feed request carried an EMPTY cookie, but its response sets one
    ready = learner.observe(feed_transaction(cookie=""), "u1")
    assert ready, "instances must complete"
    assert ready[0].request.headers.get("Cookie") == "bsid=fresh"


def test_per_user_isolation_of_cookies():
    learner = DynamicLearner(make_analysis())
    learner.observe(detail_transaction(), "u1")  # global _ver learned
    # u2's feed: u2 gets their own cookie, not u1's
    ready = learner.observe(feed_transaction(cookie=""), "u2")
    assert ready
    assert ready[0].instance.user == "u2"


def test_global_config_shared_across_users():
    learner = DynamicLearner(make_analysis())
    learner.observe(detail_transaction(version="1.2.3"), "u1")
    ready = learner.observe(feed_transaction(), "u2")
    assert ready
    assert ready[0].request.body.get("_ver") == "1.2.3"


def test_duplicate_pending_instances_deduped():
    learner = DynamicLearner(make_analysis())
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")
    assert learner.pending_count == 1


def test_error_responses_do_not_spawn_instances():
    learner = DynamicLearner(make_analysis())
    request = Request("GET", Uri.parse("https://api.test.com/feed"))
    transaction = Transaction(request, Response(500, body=JsonBody({"error": 500})))
    learner.observe(transaction, "u1")
    assert learner.pending_count == 0


def test_depth_bound_blocks_spawning():
    learner = DynamicLearner(make_analysis(), max_depth=1)
    learner.observe(feed_transaction(), "u1", depth=1)  # would create depth 2
    assert learner.pending_count == 0


def test_pred_context_captured_for_conditions():
    learner = DynamicLearner(make_analysis())
    learner.observe(feed_transaction(item_ids=("a1", "b2")), "u1")
    contexts = [i.pred_context for i in learner._pending]
    assert all(c.get("price") == 10 for c in contexts)
    assert sorted(c["id"] for c in contexts) == ["a1", "b2"]


def test_variant_learned_from_observation():
    analysis = make_analysis()
    learner = DynamicLearner(analysis)
    learner.observe(detail_transaction(), "u1")
    variant = learner.preferred_variant.get(("u1", "Detail.fetch#0"))
    assert variant == frozenset({"header.Cookie", "body.cid", "body._ver"})
