"""Edge cases in the dataflow machinery (def-use loops, alias chains)."""

from repro.analysis.alias import PointsTo
from repro.analysis.defuse import DefUse
from repro.apk.builder import AppBuilder, MethodBuilder
from repro.apk.ir import GetField, Invoke, Move


def test_loop_carried_definition_reaches_header():
    """A value defined inside a ForEach body reaches the next iteration."""
    m = MethodBuilder("loop", params=["this"])
    items = m.invoke("List.new")
    acc = m.const("start")
    with m.foreach(items):
        acc2 = m.concat(acc, m.const("+"))
        m.emit(Move(acc, acc2))  # loop-carried update
    sink = m.concat(acc, m.const("end"))
    method = m.method
    defuse = DefUse(method)
    # the final concat's use of `acc` sees BOTH the initial const and the
    # in-loop Move (two reaching definitions through the back edge)
    last_concat = [
        i for i in method.body.walk()
        if isinstance(i, Invoke) and i.api == "Str.concat"
    ][-1]
    node = defuse.cfg.node_of(last_concat)
    definitions = defuse.definitions_reaching(node, acc)
    assert len(definitions) == 2


def test_three_level_field_chain_resolved():
    """a.b stored in x.f, x.f.g read elsewhere: points-to chains work."""
    app = AppBuilder("com.test.chain")
    app.config_default("api_host", "https://a.com")
    m = MethodBuilder("onStart", params=["this", "intent"])
    inner = m.new("Inner")
    m.put_field(inner, "token", m.const("secret"))
    outer = m.new("Outer")
    m.put_field(outer, "child", inner)
    m.put_field("this", "ctx", outer)
    m.call("Main.use", "this")
    app.method("Main", m)

    m = MethodBuilder("use", params=["this"])
    outer = m.get_field("this", "ctx")
    inner = m.get_field(outer, "child")
    token = m.get_field(inner, "token")
    url = m.concat(m.config("api_host"), m.const("/x?t="), token)
    m.execute(m.new_request("GET", url))
    app.method("Main", m)
    app.component("main", "Main", screen="home", main=True)
    app.screen("home")
    apk = app.build()

    points_to = PointsTo(apk)
    # the load of `child` in Main.use must resolve to the Inner object
    use = apk.classes["Main"].methods["use"]
    loads = [i for i in use.body.walk() if isinstance(i, GetField)]
    child_load = next(i for i in loads if i.field == "child")
    stores = points_to.stores_feeding("Main.use", child_load.obj, "child")
    assert stores
    assert stores[0][0] == "Main.onStart"


def test_alias_sets_disjoint_for_unrelated_objects():
    app = AppBuilder("com.test.disjoint")
    m = MethodBuilder("onStart", params=["this", "intent"])
    a = m.new("A")
    b = m.new("B")
    m.put_field(a, "k", m.const(1))
    m.put_field(b, "k", m.const(2))
    m.render(a)
    app.method("Main", m)
    app.component("main", "Main", screen="home", main=True)
    app.screen("home")
    apk = app.build()
    points_to = PointsTo(apk)
    assert not points_to.may_alias(("Main.onStart", a), ("Main.onStart", b))
    # each field slot holds only its own store
    objects_a = points_to.objects_of("Main.onStart", a)
    assert len(objects_a) == 1
