"""Tests for the abstract value domain and template conversion."""

from repro.analysis.absval import (
    AConcat,
    AConst,
    AIntent,
    AJson,
    AList,
    AObj,
    AObs,
    ARequest,
    ARespHeader,
    ARespJson,
    AUnknown,
    concat,
    to_template,
)
from repro.analysis.model import DepAtom, UnknownAtom


def test_const_folding_in_concat():
    value = concat(AConst("https://a.com"), AConst("/feed"))
    assert isinstance(value, AConst)
    assert value.value == "https://a.com/feed"


def test_concat_flattens_nested():
    inner = concat(AUnknown("env:config:host"), AConst("/x"))
    outer = concat(inner, AConst("/y"))
    assert isinstance(outer, AConcat)
    assert len(outer.parts) == 3


def test_to_template_const():
    template = to_template(AConst("android"))
    assert template.is_const()
    assert template.const_value() == "android"


def test_to_template_unknown_keeps_tag():
    template = to_template(AUnknown("env:cookie"))
    assert isinstance(template.atoms[0], UnknownAtom)
    assert template.atoms[0].tag == "env:cookie"


def test_to_template_response_field_becomes_dep():
    value = ARespJson("pred#0", ("items", "[]", "id"))
    template = to_template(value)
    atom = template.atoms[0]
    assert isinstance(atom, DepAtom)
    assert atom.pred_site == "pred#0"


def test_to_template_response_header_becomes_dep():
    template = to_template(ARespHeader("pred#0", "ETag"))
    atom = template.atoms[0]
    assert isinstance(atom, DepAtom)
    assert atom.pred_path.root == "header"


def test_to_template_merges_adjacent_constants():
    value = AConcat([AConst("a"), AConst("b"), AUnknown("t"), AConst("c")])
    template = to_template(value)
    kinds = [type(a).__name__ for a in template.atoms]
    assert kinds == ["ConstAtom", "UnknownAtom", "ConstAtom"]
    assert template.atoms[0].value == "ab"


def test_to_template_complex_value_is_opaque():
    template = to_template(AList([AConst(1)]))
    assert isinstance(template.atoms[0], UnknownAtom)
    assert template.atoms[0].tag.startswith("complex:")


def test_obs_transparent_in_templates():
    template = to_template(AObs(AConst("inner")))
    assert template.const_value() == "inner"


def test_clone_preserves_aliasing():
    shared = AObj("Holder", "site")
    shared.fields["x"] = AConst(1)
    container = AJson({"a": shared, "b": shared})
    memo = {}
    cloned = container.clone(memo)
    assert cloned.entries["a"] is cloned.entries["b"]  # aliasing kept
    assert cloned.entries["a"] is not shared  # but deep-copied


def test_clone_intent_and_request():
    intent = AIntent({"k": AConst("v")})
    cloned = intent.clone({})
    assert cloned is not intent
    assert cloned.extras["k"].value == "v"

    request = ARequest(AConst("GET"), AConst("https://a.com/x"))
    request.json_body = AJson({"k": AConst(1)})
    copy = request.clone({})
    assert copy is not request
    assert copy.json_body is not request.json_body


def test_immutables_clone_to_self():
    value = AConst(5)
    assert value.clone({}) is value
    unknown = AUnknown("t")
    assert unknown.clone({}) is unknown
