"""Unit tests for scenario assembly knobs."""

import pytest

from repro.experiments.scenario import Scenario, prepare_app, scoped_config


@pytest.fixture(scope="module")
def wish():
    return prepare_app("wish")


def test_origin_rtt_override(wish):
    default = Scenario(wish, proxied=False)
    overridden = Scenario(wish, proxied=False, origin_rtt_override=0.5)
    from repro.httpmsg.message import Request
    from repro.httpmsg.uri import Uri

    request = Request("GET", Uri.parse("https://api.wish.com/x"))
    assert default.origins.link_for(request).rtt == pytest.approx(0.165)
    assert overridden.origins.link_for(request).rtt == pytest.approx(0.5)


def test_global_probability_flows_to_config(wish):
    scenario = Scenario(wish, proxied=True, global_probability=0.4)
    assert scenario.proxy.config.global_probability == 0.4


def test_max_chain_depth_flows_to_learner(wish):
    scenario = Scenario(wish, proxied=True, max_chain_depth=1)
    assert scenario.proxy.config.max_chain_depth == 1
    assert scenario.proxy.learner.max_depth == 1


def test_scenario_config_copy_isolated(wish):
    # mutating one scenario's config must not leak into the prepared app
    scenario = Scenario(wish, proxied=True)
    some_site = wish.analysis.signatures[0].site
    scenario.proxy.config.disable(some_site, "scenario-local")
    assert wish.config.policy(some_site).prefetch


def test_unproxied_scenario_has_no_proxy(wish):
    scenario = Scenario(wish, proxied=False)
    assert scenario.proxy is None
    assert scenario.server_bytes() == scenario.demand_bytes() == 0


def test_demand_bytes_counts_traffic(wish):
    scenario = Scenario(wish, proxied=False)
    runtime = scenario.runtime("u1")
    scenario.sim.run_process(runtime.launch())
    assert scenario.demand_bytes() > 1_000_000  # feed + 30 thumbnails


def test_scoped_config_none_enables_everything(wish):
    config = scoped_config(wish.analysis, None)
    enabled = [
        s.site for s in wish.analysis.signatures
        if config.policy(s.site).prefetch
    ]
    side_effects = [s.site for s in wish.analysis.signatures if s.side_effect]
    assert len(enabled) == len(wish.analysis.signatures) - len(side_effects)


def test_prepare_app_no_cache_builds_fresh():
    a = prepare_app("purple_ocean", fuzz_duration=10.0, estimate_expiry=False,
                    use_cache=False)
    b = prepare_app("purple_ocean", fuzz_duration=10.0, estimate_expiry=False,
                    use_cache=False)
    assert a is not b
    assert a.analysis.summary() == b.analysis.summary()
