"""Unit tests for signature building internals (URI split, variants)."""

from repro.analysis.model import ConstAtom, DepAtom, UnknownAtom, ValueTemplate
from repro.analysis.signatures import _parse_query_atoms, _split_uri, _variants_of
from repro.httpmsg.fieldpath import FieldPath


def dep():
    return DepAtom("pred#0", FieldPath.parse("body.items[].id"))


# -- URI splitting --------------------------------------------------------------
def test_split_plain_uri_unchanged():
    atoms = [UnknownAtom("env:config:host"), ConstAtom("/product/get")]
    uri_atoms, query = _split_uri(atoms)
    assert uri_atoms == atoms
    assert query == []


def test_split_embedded_query_with_dep():
    atoms = [UnknownAtom("env:config:host"), ConstAtom("/img?cid="), dep()]
    uri_atoms, query = _split_uri(atoms)
    assert [type(a).__name__ for a in uri_atoms] == ["UnknownAtom", "ConstAtom"]
    assert uri_atoms[1].value == "/img"
    assert len(query) == 1
    key, template = query[0]
    assert key == "cid"
    assert isinstance(template.atoms[0], DepAtom)


def test_split_multiple_query_pairs():
    atoms = [ConstAtom("https://a.com/x?a=1&b="), dep(), ConstAtom("&c=3")]
    uri_atoms, query = _split_uri(atoms)
    assert uri_atoms[0].value == "https://a.com/x"
    pairs = {key: template for key, template in query}
    assert set(pairs) == {"a", "b", "c"}
    assert pairs["a"].const_value() == "1"
    assert isinstance(pairs["b"].atoms[0], DepAtom)
    assert pairs["c"].const_value() == "3"


def test_split_query_with_trailing_value_flushes():
    atoms = [ConstAtom("/x?k=")]
    _, query = _parse_query_and_check(atoms)
    assert query[0][0] == "k"
    assert query[0][1].const_value() == ""


def _parse_query_and_check(atoms):
    return _split_uri(atoms)


def test_parse_query_atoms_value_spanning_atoms():
    query = _parse_query_atoms([ConstAtom("k=pre-"), dep(), ConstAtom("-post")])
    assert len(query) == 1
    key, template = query[0]
    assert key == "k"
    kinds = [type(a).__name__ for a in template.atoms]
    assert kinds == ["ConstAtom", "DepAtom", "ConstAtom"]


# -- variants ----------------------------------------------------------------------
def entry(path_text, branch=()):
    return (FieldPath.parse(path_text), ValueTemplate.const("x"), tuple(branch))


def test_variants_without_branches_single_set():
    variants = _variants_of([entry("body.a"), entry("body.b")])
    assert variants == {frozenset({"body.a", "body.b"})}


def test_variants_single_branch_two_sets():
    variants = _variants_of(
        [entry("body.a"), entry("body.credit", [("m@b0", "then")])]
    )
    assert variants == {
        frozenset({"body.a", "body.credit"}),
        frozenset({"body.a"}),
    }


def test_variants_both_arms_fields():
    variants = _variants_of(
        [
            entry("body.count", [("m@b0", "then")]),
            entry("body.count~1", [("m@b0", "else")]),
        ]
    )
    # one arm each: two variants with exactly one count field present
    assert variants == {frozenset({"body.count"}), frozenset({"body.count~1"})}


def test_variants_two_independent_branches_four_sets():
    variants = _variants_of(
        [
            entry("body.base"),
            entry("body.x", [("b0", "then")]),
            entry("body.y", [("b1", "then")]),
        ]
    )
    assert len(variants) == 4
    assert frozenset({"body.base"}) in variants
    assert frozenset({"body.base", "body.x", "body.y"}) in variants


def test_variants_nested_branch_context():
    variants = _variants_of(
        [
            entry("body.outer", [("b0", "then")]),
            entry("body.inner", [("b0", "then"), ("b1", "then")]),
        ]
    )
    # inner requires outer's arm: no variant has inner without outer
    for variant in variants:
        if "body.inner" in variant:
            assert "body.outer" in variant
