"""Property + unit tests for the rolling-window live telemetry plane.

The property the whole plane rests on: a rolling window is just a
*view* over the raw event stream — at any read instant, the windowed
count/sum/percentile must equal a brute-force recomputation from the
raw events whose absolute bucket index is still inside the horizon.
Hypothesis drives arbitrary event streams (dyadic times and values, so
float sums are exact) and checks that equivalence at every window
advance, plus the merge laws the fleet heartbeat fold-back needs:
shard-split streams merge back to the full-stream windows, in any
order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import catalog
from repro.metrics.live import (
    LiveWindows,
    RollingCounter,
    RollingHistogram,
    standard_readings,
)
from repro.metrics.registry import Histogram

# dyadic time deltas / values: every partial sum and bucket index is
# exactly representable, so "equal" means ==, not approx
_DELTAS = st.sampled_from([0.0, 0.125, 0.25, 0.5, 1.0, 2.0])
_VALUES = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0])
_STREAM = st.lists(st.tuples(_DELTAS, _VALUES), min_size=1, max_size=40)

_WINDOW_S = 4.0
_NUM_BUCKETS = 8
_WIDTH = _WINDOW_S / _NUM_BUCKETS
_BOUNDS = (0.5, 1.0, 2.0, 4.0)
_HORIZONS = (None, 1.0, 2.0)


def _times(stream):
    now = 0.0
    for dt, value in stream:
        now += dt
        yield now, value


def _expected_events(events, now, horizon_s):
    """Brute force: the raw events whose bucket is inside the window."""
    head = int(now // _WIDTH)
    span = _NUM_BUCKETS
    if horizon_s is not None:
        span = min(span, max(1, int(round(horizon_s / _WIDTH))))
    return [
        (t, v) for t, v in events if head - span < int(t // _WIDTH) <= head
    ]


@settings(max_examples=60, deadline=None)
@given(_STREAM)
def test_counter_total_equals_brute_force_at_every_advance(stream):
    counter = RollingCounter(_WINDOW_S, _NUM_BUCKETS)
    events = []
    for now, value in _times(stream):
        counter.inc(now, value)
        events.append((now, value))
        # reads happen at the stream frontier: earlier instants may
        # legitimately have been pruned already
        for horizon in _HORIZONS:
            expected = sum(v for _, v in _expected_events(events, now, horizon))
            assert counter.total(now, horizon) == expected


@settings(max_examples=60, deadline=None)
@given(_STREAM)
def test_histogram_equals_brute_force_at_every_advance(stream):
    rolling = RollingHistogram(_WINDOW_S, _NUM_BUCKETS, _BOUNDS)
    events = []
    for now, value in _times(stream):
        rolling.observe(now, value)
        events.append((now, value))
        for horizon in _HORIZONS:
            live = _expected_events(events, now, horizon)
            reference = Histogram(_BOUNDS)
            for _, v in live:
                reference.observe(v)
            folded = rolling.fold(now, horizon)
            assert folded.count == reference.count
            assert folded.sum == reference.sum
            assert folded.bucket_counts == reference.bucket_counts
            for q in (50, 95, 99):
                assert rolling.percentile(now, q, horizon) == \
                    reference.percentile(q)


def _windows_from(stream):
    windows = LiveWindows(_WINDOW_S, _NUM_BUCKETS, _BOUNDS)
    for now, value in _times(stream):
        windows.inc(catalog.W_HITS, now, value)
        windows.observe(catalog.W_REQUEST, now, value)
    return windows


@settings(max_examples=40, deadline=None)
@given(_STREAM, _STREAM)
def test_snapshot_merge_is_commutative(stream_a, stream_b):
    a = _windows_from(stream_a).snapshot()
    b = _windows_from(stream_b).snapshot()
    ab = LiveWindows.from_snapshot(a)
    ab.merge(b)
    ba = LiveWindows.from_snapshot(b)
    ba.merge(a)
    assert ab.snapshot() == ba.snapshot()


@settings(max_examples=40, deadline=None)
@given(_STREAM)
def test_shard_split_streams_merge_to_the_full_stream(stream):
    # partition the stream across two "shards" (the heartbeat payload
    # path) and fold back: every windowed read must match the
    # single-process windows over the full stream
    full = _windows_from(stream)
    shards = [
        LiveWindows(_WINDOW_S, _NUM_BUCKETS, _BOUNDS),
        LiveWindows(_WINDOW_S, _NUM_BUCKETS, _BOUNDS),
    ]
    last_now = 0.0
    for index, (now, value) in enumerate(_times(stream)):
        shard = shards[index % 2]
        shard.inc(catalog.W_HITS, now, value)
        shard.observe(catalog.W_REQUEST, now, value)
        last_now = now
    merged = LiveWindows.from_snapshot(shards[0].snapshot())
    merged.merge(shards[1].snapshot())
    for horizon in _HORIZONS:
        assert merged.total(catalog.W_HITS, last_now, horizon) == \
            full.total(catalog.W_HITS, last_now, horizon)
        assert merged.total(catalog.W_REQUEST, last_now, horizon) == \
            full.total(catalog.W_REQUEST, last_now, horizon)
        for q in (50, 99):
            assert merged.percentile(catalog.W_REQUEST, last_now, q, horizon) \
                == full.percentile(catalog.W_REQUEST, last_now, q, horizon)


# ----------------------------------------------------------------------
# unit behavior
# ----------------------------------------------------------------------
def test_counter_rate_divides_by_live_span():
    counter = RollingCounter(window_s=10.0, num_buckets=20)
    counter.inc(5.0, 30.0)
    assert counter.total(5.0) == 30.0
    assert counter.rate(5.0) == pytest.approx(30.0 / 10.0)
    assert counter.rate(5.0, horizon_s=1.0) == pytest.approx(30.0 / 1.0)


def test_old_buckets_fall_out_of_the_window():
    counter = RollingCounter(window_s=2.0, num_buckets=4)
    counter.inc(0.1, 5.0)
    counter.inc(3.0, 7.0)  # > window_s past the first bucket
    assert counter.total(3.0) == 7.0


def test_undeclared_window_names_are_refused():
    windows = LiveWindows()
    with pytest.raises(KeyError, match="catalog.WINDOWS"):
        windows.inc("no.such.window", 1.0)
    with pytest.raises(KeyError, match="catalog.WINDOWS"):
        windows.observe("no.such.window", 1.0, 0.5)


def test_every_catalog_window_is_constructed():
    windows = LiveWindows()
    for name, kind in catalog.WINDOWS.items():
        if kind == "histogram":
            assert name in windows.histograms
        else:
            assert name in windows.counters


def test_merge_rejects_geometry_mismatch():
    a = LiveWindows(window_s=10.0, num_buckets=20)
    b = LiveWindows(window_s=5.0, num_buckets=20)
    with pytest.raises(ValueError, match="geometry"):
        a.merge(b.snapshot())


def test_merge_rejects_bound_mismatch_naming_the_series():
    a = LiveWindows(bounds=(0.5, 1.0))
    b = LiveWindows(bounds=(0.25, 1.0))
    b.observe(catalog.W_REQUEST, 1.0, 0.3)
    with pytest.raises(ValueError) as excinfo:
        a.merge(b.snapshot())
    message = str(excinfo.value)
    assert catalog.W_REQUEST in message
    assert "(0.5, 1.0)" in message and "(0.25, 1.0)" in message


def test_standard_readings_shape_and_hit_rate():
    windows = LiveWindows()
    now = 3.0
    windows.observe(catalog.W_REQUEST, now, 0.120)
    windows.observe(catalog.W_REQUEST, now, 0.480)
    windows.inc(catalog.W_ANSWERED, now, 4)
    windows.inc(catalog.W_HITS, now, 3)
    readings = standard_readings(windows, now)
    assert readings["requests"] == 2
    assert readings["hit_rate"] == pytest.approx(0.75)
    assert readings["request_rate"] == pytest.approx(2 / windows.window_s)
    assert readings["overflow"] == 0
    assert readings["request_p50_ms"] > 0
