"""Tests for CFG/def-use, points-to, and bidirectional slicing."""

import pytest

from repro.analysis.alias import PointsTo
from repro.analysis.defuse import Cfg, DefUse
from repro.analysis.slicing import (
    SliceContext,
    backward_slice,
    execute_sites,
    forward_slice,
    slice_report,
)
from repro.apk.builder import AppBuilder, MethodBuilder
from repro.apk.ir import GetField, PutField


def build_app():
    app = AppBuilder("com.test.slice")
    app.config_default("api_host", "https://a.com")

    # helper that builds and fires a request from a holder object
    m = MethodBuilder("send", params=["this", "holder"])
    value = m.get_field("holder", "payload")
    url = m.concat(m.config("api_host"), m.const("/send?d="), value)
    req = m.new_request("GET", url)
    resp = m.execute(req)
    m.ret(resp)
    app.method("Main", m)

    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/src"))
    req = m.new_request("GET", url)
    resp = m.execute(req)
    body = m.body_json(resp)
    token = m.json_get(body, "token")
    holder = m.new("Holder")
    alias = m.move(holder)
    m.put_field(alias, "payload", token)  # store through the alias
    m.call("Main.send", "this", holder)  # read through the original
    m.render(body)
    app.method("Main", m)

    app.component("main", "Main", screen="home", main=True)
    app.screen("home")
    return app.build()


@pytest.fixture(scope="module")
def apk():
    return build_app()


@pytest.fixture(scope="module")
def context(apk):
    return SliceContext(apk)


# -- CFG / def-use ---------------------------------------------------------
def test_cfg_covers_every_instruction(apk):
    method = apk.classes["Main"].methods["onStart"]
    cfg = Cfg(method)
    assert len(cfg.nodes) == sum(1 for _ in method.body.walk())
    assert cfg.entry is not None


def test_branch_cfg_edges():
    m = MethodBuilder("b", params=["this"])
    flag = m.flag("f")
    with m.if_(flag):
        m.const("x")
    m.const("after")
    method = m.method
    cfg = Cfg(method)
    branch = next(n for n in cfg.nodes if n.instruction.kind == "if")
    after = next(
        n for n in cfg.nodes if getattr(n.instruction, "value", None) == "after"
    )
    # both the then-arm and the empty else fall through to `after`
    assert len(after.predecessors) == 2
    assert branch in after.predecessors or any(
        p in branch.successors for p in after.predecessors
    )


def test_foreach_back_edge():
    m = MethodBuilder("l", params=["this"])
    items = m.invoke("List.new")
    with m.foreach(items):
        m.const("inner")
    method = m.method
    cfg = Cfg(method)
    loop = next(n for n in cfg.nodes if n.instruction.kind == "foreach")
    inner = next(
        n for n in cfg.nodes if getattr(n.instruction, "value", None) == "inner"
    )
    assert loop in inner.predecessors
    assert loop in inner.successors  # back edge


def test_defuse_links_use_to_definition(apk):
    method = apk.classes["Main"].methods["onStart"]
    defuse = DefUse(method)
    put = next(i for i in method.body.walk() if isinstance(i, PutField))
    node = defuse.cfg.node_of(put)
    uses = defuse.uses_of(node)
    assert put.src in uses
    assert uses[put.src], "definition of stored value must reach the store"


def test_defuse_params_reach(apk):
    method = apk.classes["Main"].methods["send"]
    defuse = DefUse(method)
    get = next(i for i in method.body.walk() if isinstance(i, GetField))
    node = defuse.cfg.node_of(get)
    assert None in defuse.definitions_reaching(node, "holder")


# -- points-to ----------------------------------------------------------------
def test_alias_detected(apk):
    points_to = PointsTo(apk)
    method = apk.classes["Main"].methods["onStart"]
    new = next(i for i in method.body.walk() if i.kind == "new")
    move = next(i for i in method.body.walk() if i.kind == "move")
    assert points_to.may_alias(("Main.onStart", new.dst), ("Main.onStart", move.dst))


def test_store_feeds_load_through_alias_and_call(apk, context):
    method = apk.classes["Main"].methods["send"]
    get = next(i for i in method.body.walk() if isinstance(i, GetField))
    stores = context.points_to.stores_feeding("Main.send", get.obj, "payload")
    assert stores, "alias analysis must find the PutField through the alias"
    assert stores[0][0] == "Main.onStart"


# -- slicing -------------------------------------------------------------------
def test_execute_sites_found(apk):
    sites = execute_sites(apk)
    assert {owner for owner, _ in sites} == {"Main.send", "Main.onStart"}


def test_backward_slice_crosses_alias_and_call(apk, context):
    send_site = next(s for o, s in execute_sites(apk) if o == "Main.send")
    items = backward_slice(context, "Main.send", send_site)
    owners = {owner for owner, _ in items}
    assert "Main.onStart" in owners  # via alias store + call-site args
    instructions = {type(i).__name__ for _, i in items}
    assert "PutField" in instructions


def test_backward_slice_without_alias_misses_store(apk, context):
    send_site = next(s for o, s in execute_sites(apk) if o == "Main.send")
    with_alias = backward_slice(context, "Main.send", send_site, use_alias=True)
    without_alias = backward_slice(context, "Main.send", send_site, use_alias=False)
    assert len(without_alias) < len(with_alias)


def test_forward_slice_from_response(apk, context):
    source_site = next(s for o, s in execute_sites(apk) if o == "Main.onStart")
    items = forward_slice(context, "Main.onStart", source_site)
    owners = {owner for owner, _ in items}
    # the response token flows into Main.send's request
    assert "Main.send" in owners


def test_slice_report_shape(apk):
    report = slice_report(apk)
    assert set(report) == {"Main.send#0", "Main.onStart#0"}
    for sizes in report.values():
        assert sizes["backward"] >= 1
        assert sizes["forward"] >= 1
