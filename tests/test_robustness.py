"""Robustness: bounded state, concurrent users, fault tolerance."""


from repro.analysis.model import (
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.experiments.scenario import Scenario, prepare_app
from repro.httpmsg.body import JsonBody
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.message import Request, Response, Transaction
from repro.httpmsg.uri import Uri
from repro.proxy import learning as learning_module
from repro.proxy.learning import DynamicLearner
from repro.netsim.sim import Delay


def unresolvable_analysis():
    """Successor that can never resolve (unknown env tag never appears)."""
    pred = TransactionSignature(
        "P#0",
        RequestTemplate("GET", ValueTemplate([ConstAtom("https://a.com/list")])),
        ResponseTemplate(),
    )
    succ = TransactionSignature(
        "S#0",
        RequestTemplate(
            "GET",
            ValueTemplate([ConstAtom("https://a.com/item")]),
            {
                FieldPath.parse("query.id"): ValueTemplate(
                    [DepAtom("P#0", FieldPath.parse("body.ids[]"))]
                ),
                FieldPath.parse("query.secret"): ValueTemplate(
                    [UnknownAtom("env:config:never_observed")]
                ),
            },
        ),
        ResponseTemplate(),
    )
    edges = [
        DependencyEdge(
            "P#0", FieldPath.parse("body.ids[]"), "S#0", FieldPath.parse("query.id")
        )
    ]
    return AnalysisResult("t", [pred, succ], edges)


def list_transaction(ids):
    return Transaction(
        Request("GET", Uri.parse("https://a.com/list")),
        Response(200, body=JsonBody({"ids": list(ids)})),
    )


def test_pending_queue_bounded(monkeypatch):
    monkeypatch.setattr(learning_module, "MAX_PENDING", 50)
    learner = DynamicLearner(unresolvable_analysis())
    for batch in range(20):
        ids = ["id-{}-{}".format(batch, i) for i in range(10)]
        learner.observe(list_transaction(ids), "u1")
    assert learner.pending_count <= 50


def test_pending_eviction_drops_oldest(monkeypatch):
    monkeypatch.setattr(learning_module, "MAX_PENDING", 5)
    learner = DynamicLearner(unresolvable_analysis())
    learner.observe(list_transaction(["old-{}".format(i) for i in range(5)]), "u1")
    learner.observe(list_transaction(["new-{}".format(i) for i in range(5)]), "u1")
    remaining = {i.dep_values["query.id"] for i in learner._pending}
    assert all(value.startswith("new-") for value in remaining)


def test_verification_reports_unresolved_sites():
    from repro.netsim.transport import OriginMap
    from repro.netsim.link import Link
    from repro.netsim.sim import Simulator
    from repro.proxy.proxy import AccelerationProxy

    analysis = unresolvable_analysis()
    sim = Simulator()

    class ListEndpoint:
        def handle(self, request, user):
            yield Delay(0.01)
            return Response(200, body=JsonBody({"ids": ["a", "b"]}))

    origins = OriginMap()
    origins.register("https://a.com", ListEndpoint(), Link(rtt=0.02))
    proxy = AccelerationProxy(sim, origins, analysis)

    def flow():
        response = yield sim.spawn(
            proxy.handle_request(Request("GET", Uri.parse("https://a.com/list")), "u1")
        )
        return response

    sim.run_process(flow())
    # the successor's env value never resolved: the instances stay pending
    assert proxy.learner.pending_count == 2
    sites = {i.signature.site for i in proxy.learner._pending}
    assert sites == {"S#0"}


def test_many_concurrent_users_stay_isolated():
    prepared = prepare_app("wish")
    scenario = Scenario(
        prepared, proxied=True, enabled_classes=prepared.spec.main_site_classes
    )
    runtimes = [scenario.runtime("user-{:02d}".format(i)) for i in range(8)]

    def one(runtime, index):
        def flow():
            yield scenario.sim.spawn(runtime.launch())
            yield Delay(5.0 + index * 0.3)
            result = yield scenario.sim.spawn(runtime.dispatch("select_item", index))
            return result
        return flow()

    def all_users():
        processes = [
            scenario.sim.spawn(one(runtime, index))
            for index, runtime in enumerate(runtimes)
        ]
        collected = []
        for process in processes:
            collected.append((yield process))
        return collected

    results = scenario.sim.run_process(all_users())
    # every user accelerated with their own (personalized) item
    cids = set()
    for index, result in enumerate(results):
        product = next(
            t for t in result.transactions if t.request.uri.path == "/product/get"
        )
        cids.add((product.request.body.get("cid"), product.request.headers.get("Cookie")))
    assert len(cids) == len(results)  # distinct items/cookies per user
    assert scenario.proxy.served_prefetched >= len(results)


def test_partial_origin_outage_degrades_gracefully():
    prepared = prepare_app("wish")
    scenario = Scenario(
        prepared, proxied=True, enabled_classes=prepared.spec.main_site_classes
    )
    # the image origin goes down; the API origin keeps working
    image_server = scenario.servers["https://img.wish.com"]
    for route in image_server.routes:
        image_server.force_error(route.name, 503)
    runtime = scenario.runtime("u1")

    def flow():
        yield scenario.sim.spawn(runtime.launch())
        yield Delay(6.0)
        result = yield scenario.sim.spawn(runtime.dispatch("select_item", 1))
        return result

    result = scenario.sim.run_process(flow())
    statuses = {
        t.request.uri.origin(): t.response.status for t in result.transactions
    }
    assert statuses["https://api.wish.com"] == 200  # still accelerated
    assert statuses["https://img.wish.com"] == 503  # failure surfaced
    # failed prefetches were never cached
    for (user, _key), entry in scenario.proxy.cache._entries.items():
        assert entry.response.ok
