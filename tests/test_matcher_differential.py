"""Differential tests: indexed SignatureMatcher ≡ naive linear scan.

The indexed dispatch path (memo + literal-prefix trie +
required-segment index + anchor pre-checks) must pick exactly the
signature the seed's linear regex scan picked, including
most-specific-wins tie-breaks on ambiguous URIs, for any request.
"""

import random

import pytest

from repro.analysis import analyze_apk
from repro.analysis.model import (
    ConstAtom,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.apps import all_apps
from repro.experiments.matching_bench import synthesize_workload
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri
from repro.proxy.instances import (
    RuntimeSignature,
    SignatureMatcher,
    build_runtime_signatures,
)


def runtime(site, method, atoms):
    return RuntimeSignature(
        TransactionSignature(
            site,
            RequestTemplate(method=method, uri=ValueTemplate(atoms)),
            ResponseTemplate(),
        )
    )


def assert_agreement(matcher, requests):
    for request in requests:
        indexed = matcher.match(request)
        naive = matcher.naive_match(request)
        assert indexed is naive, "{} {}: indexed={} naive={}".format(
            request.method,
            request.uri.to_string(),
            indexed.site if indexed else None,
            naive.site if naive else None,
        )


# -- randomized differential over all five bundled apps ----------------------
@pytest.fixture(scope="module")
def app_signature_sets():
    return {
        name: build_runtime_signatures(analyze_apk(spec.build_apk()))
        for name, spec in all_apps().items()
    }


def test_five_app_randomized_differential(app_signature_sets):
    combined = [s for sigs in app_signature_sets.values() for s in sigs]
    matcher = SignatureMatcher(combined)
    requests = synthesize_workload(app_signature_sets, 1500, seed=1234)
    assert_agreement(matcher, requests)


def test_per_app_randomized_differential(app_signature_sets):
    for name, signatures in app_signature_sets.items():
        matcher = SignatureMatcher(signatures)
        requests = synthesize_workload({name: signatures}, 300, seed=99)
        assert_agreement(matcher, requests)


def test_mutated_uris_differential(app_signature_sets):
    """Truncations, extensions, and segment swaps of real URIs."""
    combined = [s for sigs in app_signature_sets.values() for s in sigs]
    matcher = SignatureMatcher(combined)
    rng = random.Random(7)
    base = synthesize_workload(app_signature_sets, 300, seed=7)
    mutated = []
    for request in base:
        uri = request.uri.copy()
        segments = uri.path_segments()
        op = rng.randrange(4)
        if op == 0 and segments:
            segments = segments[:-1]  # truncate
        elif op == 1:
            segments = segments + ["zz{}".format(rng.randrange(100))]
        elif op == 2 and segments:
            index = rng.randrange(len(segments))
            segments[index] = segments[index][::-1] or "x"
        else:
            rng.shuffle(segments)
        uri.path = "/" + "/".join(segments)
        mutated.append(Request(request.method, uri))
    assert_agreement(matcher, mutated)


# -- ambiguous-URI tie-breaks -------------------------------------------------
def test_equal_specificity_earliest_signature_wins():
    first = runtime("first#0", "GET", [UnknownAtom("h"), ConstAtom("/same/path")])
    second = runtime("second#0", "GET", [UnknownAtom("h"), ConstAtom("/same/path")])
    matcher = SignatureMatcher([first, second])
    request = Request("GET", Uri.parse("https://a.com/same/path"))
    assert matcher.match(request) is first
    assert matcher.naive_match(request) is first


def test_most_specific_wins_over_generic():
    generic = runtime("generic#0", "GET", [UnknownAtom("h"), UnknownAtom("x")])
    specific = runtime(
        "specific#0", "GET", [UnknownAtom("h"), ConstAtom("/product/get")]
    )
    matcher = SignatureMatcher([generic, specific])
    request = Request("GET", Uri.parse("https://api.a.com/product/get"))
    assert matcher.match(request) is specific
    # ...but URIs only the generic pattern matches still resolve to it
    other = Request("GET", Uri.parse("https://api.a.com/anything/else"))
    assert matcher.match(other) is generic
    assert_agreement(matcher, [request, other])


def test_literal_host_beats_wildcard_host_on_specificity():
    wildcard = runtime("wild#0", "GET", [UnknownAtom("h"), ConstAtom("/feed")])
    literal = runtime("lit#0", "GET", [ConstAtom("https://api.a.com/feed")])
    matcher = SignatureMatcher([wildcard, literal])
    request = Request("GET", Uri.parse("https://api.a.com/feed"))
    assert matcher.match(request) is literal
    assert_agreement(
        matcher,
        [request, Request("GET", Uri.parse("https://other.com/feed"))],
    )


# -- index soundness edges ----------------------------------------------------
def test_wildcard_can_swallow_host_equal_to_segment_literal():
    """`.*` may cover scheme+host, leaving a literal that straddles the
    authority: the request host equals the signature's path literal."""
    signature = runtime("s#0", "GET", [UnknownAtom("h"), ConstAtom("/b/c")])
    matcher = SignatureMatcher([signature])
    request = Request("GET", Uri.parse("https://b/c"))
    assert matcher.naive_match(request) is signature
    assert matcher.match(request) is signature


def test_wrong_method_never_matches():
    signature = runtime("s#0", "POST", [UnknownAtom("h"), ConstAtom("/x")])
    matcher = SignatureMatcher([signature])
    request = Request("GET", Uri.parse("https://a.com/x"))
    assert matcher.match(request) is None
    assert matcher.naive_match(request) is None


def test_trailing_partial_segment_not_overpruned():
    """A literal whose last segment is wildcard-extended must still
    match URIs where the wildcard lengthens that segment."""
    signature = runtime(
        "s#0",
        "GET",
        [ConstAtom("https://a.com/pro"), UnknownAtom("rest")],
    )
    matcher = SignatureMatcher([signature])
    hits = [
        Request("GET", Uri.parse("https://a.com/product/get")),
        Request("GET", Uri.parse("https://a.com/pro")),
        Request("GET", Uri.parse("https://a.com/pro/x")),
    ]
    misses = [
        Request("GET", Uri.parse("https://a.com/other")),
        Request("GET", Uri.parse("https://b.com/product")),
    ]
    for request in hits:
        assert matcher.match(request) is signature
    for request in misses:
        assert matcher.match(request) is None
    assert_agreement(matcher, hits + misses)


def test_memo_repeats_and_capacity():
    signature = runtime("s#0", "GET", [UnknownAtom("h"), ConstAtom("/x")])
    matcher = SignatureMatcher([signature], memo_capacity=4)
    request = Request("GET", Uri.parse("https://a.com/x"))
    for _ in range(3):
        assert matcher.match(request) is signature
    # overflow the memo with distinct URIs; results stay correct
    for index in range(20):
        uri = Uri.parse("https://a.com/x{}".format(index))
        got = matcher.match(Request("GET", uri))
        assert got is None
    assert len(matcher._memo) <= 4
    assert matcher.match(request) is signature


def test_empty_matcher():
    matcher = SignatureMatcher([])
    request = Request("GET", Uri.parse("https://a.com/x"))
    assert matcher.match(request) is None
    assert matcher.naive_match(request) is None
