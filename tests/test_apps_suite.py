"""Cross-app structural tests: all five evaluated apps."""

import pytest

from repro.analysis import analyze_apk
from repro.apps import all_apps, app_names, get_app
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport
from repro.server.content import Catalog

APPS = list(all_apps().values())


def test_registry_has_the_papers_five_apps():
    assert app_names() == ["wish", "geek", "doordash", "purple_ocean", "postmates"]


def test_get_app_unknown_raises():
    with pytest.raises(KeyError):
        get_app("tiktok")


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_apk_builds_and_validates(spec):
    apk = spec.build_apk()
    assert apk.instruction_count() > 50
    assert apk.main() is not None


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_analysis_finds_dependencies(spec):
    result = analyze_apk(spec.build_apk())
    summary = result.summary()
    assert summary["signatures"] >= 5
    assert summary["prefetchable"] >= 3
    assert summary["dependencies"] >= 4
    assert summary["max_chain"] >= 3


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_main_flow_runs_end_to_end(spec):
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(spec.build_apk(), transport, sim, spec.default_profile())

    def flow():
        launch = yield sim.spawn(runtime.launch())
        result = None
        for event, index in spec.main_flow:
            yield Delay(2.0)
            result = yield sim.spawn(runtime.dispatch(event, index))
        return launch, result

    launch, main = sim.run_process(flow())
    assert launch.transactions, "launch must produce traffic"
    assert main.transactions, "main interaction must produce traffic"
    assert all(t.response.ok for t in main.transactions)


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_every_event_handler_is_exercisable(spec):
    apk = spec.build_apk()
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(apk, transport, sim, spec.default_profile())
    sim.run_process(runtime.launch())
    start_screen = runtime.current_screen
    for event_name in list(runtime.available_events()):
        # every event on the start screen dispatches without error;
        # navigation events may move screens, so walk back by relaunch
        if runtime.current_screen != start_screen:
            sim.run_process(runtime.launch())
        sim.run_process(runtime.dispatch(event_name, 0))


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_origin_rtts_match_table2(spec):
    # every transaction label in Table 2 maps to a declared origin RTT
    origin_rtts = {round(o.rtt * 1000) for o in spec.origins}
    for _, rtt in spec.transactions_of_main:
        assert round(rtt * 1000) in origin_rtts


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_all_transactions_route_to_known_origins(spec):
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(spec.build_apk(), transport, sim, spec.default_profile())

    def flow():
        yield sim.spawn(runtime.launch())
        for event, index in spec.main_flow:
            yield Delay(1.0)
            yield sim.spawn(runtime.dispatch(event, index))
        return None

    sim.run_process(flow())  # raises UnknownOriginError on a routing gap
    assert all(t.response.status != 404 for t in runtime.transaction_log)


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_each_app_has_a_side_effect_event(spec):
    apk = spec.build_apk()
    side_effects = [
        event
        for screen in apk.screens.values()
        for event in screen.events.values()
        if event.side_effect
    ]
    if spec.name == "doordash":
        assert side_effects  # add_to_cart
    else:
        assert side_effects, "{} needs a side-effecting event".format(spec.name)


@pytest.mark.parametrize("spec", APPS, ids=lambda s: s.name)
def test_each_app_has_a_background_service(spec):
    apk = spec.build_apk()
    services = [c for c in apk.components.values() if c.kind == "service"]
    assert services, "background service missing (Table 3 coverage gap)"


def test_wish_matches_fig5_signature_shape():
    """The paper's Fig. 5: /product/get body fields."""
    result = analyze_apk(get_app("wish").build_apk())
    detail = next(s for s in result.signatures if "postDetail" in s.site)
    fields = {p.to_string() for p in detail.request.fields}
    for expected in ("body.cid", "body._client", "body._ver", "body._xsrf"):
        assert expected in fields
    # credit_id is branch-dependent: present in some variants only
    assert "body.credit_id" in fields
    variants = {frozenset(v) for v in detail.variants}
    assert any("body.credit_id" in v for v in variants)
    assert any("body.credit_id" not in v for v in variants)


def test_doordash_matches_fig11_chain():
    """Fig. 11: store list → menu → menu detail → suggestions."""
    from repro.analysis.dependency import dependency_chains

    result = analyze_apk(get_app("doordash").build_apk())
    chains = dependency_chains(result.dependencies)
    rendered = ["->".join(c) for c in chains]
    assert any(
        "loadStores" in r and "StoreActivity" in r and "MenuItemActivity" in r
        for r in rendered
    )


def test_wish_matches_fig12_fanout():
    """Fig. 12: one detail response feeds several successors."""
    from repro.analysis.dependency import fan_out

    result = analyze_apk(get_app("wish").build_apk())
    fanout = fan_out(result.dependencies)
    detail_fanout = max(
        v for k, v in fanout.items() if k.startswith("DetailActivity")
    )
    assert detail_fanout >= 3
