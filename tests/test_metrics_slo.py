"""SLO engine + backpressure controller: burn math, alerts, actuation.

Unit tests pin the objective algebra (bad/total reduction per kind,
the ``min_events`` gate, the multiwindow fire condition and its
fire-on-transition-only semantics) against hand-computed burn rates,
and drive the :class:`BackpressureController` with stub learners to
prove each actuation arm moves exactly when its window condition
holds.  The integration test at the bottom is the closed loop from
ISSUE 10's acceptance list: a synthetic overflow burst (drain-starved
learn queue) must raise a burn-rate alert AND measurably grow the
drain budget.
"""

import json

import pytest

from repro.metrics import catalog
from repro.metrics.live import LiveWindows
from repro.metrics.slo import (
    BackpressureController,
    SloEngine,
    SloObjective,
    load_slo_config,
)


def _config(**overrides):
    objective = {
        "name": "overflow_rate",
        "kind": "overflow",
        "budget_ratio": 0.01,
        "fast_burn": 2.0,
        "slow_burn": 1.0,
        "min_events": 10,
    }
    objective.update(overrides)
    return {"window_s": 4.0, "fast_window_s": 1.0, "objectives": [objective]}


# ----------------------------------------------------------------------
# objective parsing
# ----------------------------------------------------------------------
def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown SLO kind"):
        SloObjective({"kind": "throughput", "target": 0.99})


def test_missing_kind_parameter_rejected():
    with pytest.raises(ValueError, match="missing 'target'"):
        SloObjective({"name": "lat", "kind": "latency", "good_under_ms": 800})


def test_latency_target_range_enforced():
    with pytest.raises(ValueError, match="target"):
        SloObjective(
            {"kind": "latency", "target": 1.0, "good_under_ms": 800}
        )


def test_latency_budget_and_threshold():
    objective = SloObjective(
        {"kind": "latency", "target": 0.99, "good_under_ms": 800}
    )
    assert objective.budget == pytest.approx(0.01)
    assert objective.good_under_s == pytest.approx(0.8)


def test_duplicate_objective_names_rejected():
    config = _config()
    config["objectives"] = config["objectives"] * 2
    with pytest.raises(ValueError, match="duplicate"):
        SloEngine(config)


def test_load_slo_config_validates_shape(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps({"nope": True}))
    with pytest.raises(ValueError, match="objectives"):
        load_slo_config(str(path))


def test_default_slo_file_parses_and_names_a_latency_threshold():
    config = load_slo_config("benchmarks/slo.json")
    engine = SloEngine(config)
    assert engine.slow_threshold_s == pytest.approx(0.8)
    assert {o.kind for o in engine.objectives} == {
        "latency", "hit_rate", "overflow"
    }


# ----------------------------------------------------------------------
# burn math
# ----------------------------------------------------------------------
def test_burn_is_bad_over_total_over_budget():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    now = 2.0
    windows.inc(catalog.W_ANSWERED, now, 100)
    windows.inc(catalog.W_OVERFLOW, now, 2)
    objective = SloObjective(_config()["objectives"][0])
    burn, bad, total = objective.burn(windows, now, None)
    # 2/100 bad over a 0.01 budget -> burning at 2x
    assert burn == pytest.approx(2.0)
    assert (bad, total) == (2, 100)


def test_min_events_gate_suppresses_noise():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    now = 2.0
    windows.inc(catalog.W_ANSWERED, now, 5)
    windows.inc(catalog.W_OVERFLOW, now, 5)  # 100% bad, but 5 < 10 events
    objective = SloObjective(_config()["objectives"][0])
    assert objective.burn(windows, now, None)[0] == 0.0


def test_hit_rate_bad_is_the_miss_count():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    now = 2.0
    windows.inc(catalog.W_ANSWERED, now, 50)
    windows.inc(catalog.W_HITS, now, 20)
    objective = SloObjective(
        {"kind": "hit_rate", "floor": 0.5, "min_events": 10}
    )
    burn, bad, total = objective.burn(windows, now, None)
    assert (bad, total) == (30, 50)
    assert burn == pytest.approx((30 / 50) / 0.5)


def test_latency_counts_the_slow_window():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    now = 2.0
    for _ in range(20):
        windows.observe(catalog.W_REQUEST, now, 0.1)
    windows.inc(catalog.W_REQUEST_SLOW, now, 1)
    objective = SloObjective(
        {"kind": "latency", "target": 0.99, "good_under_ms": 800,
         "min_events": 10}
    )
    burn, bad, total = objective.burn(windows, now, None)
    assert (bad, total) == (1, 20)
    assert burn == pytest.approx((1 / 20) / 0.01)


# ----------------------------------------------------------------------
# alerting: multiwindow fire condition, transition-only
# ----------------------------------------------------------------------
def test_alert_fires_once_per_incident_and_rearms():
    engine = SloEngine(_config())
    windows = LiveWindows(window_s=4.0, num_buckets=8)

    def feed(now, answered, overflow):
        windows.inc(catalog.W_ANSWERED, now, answered)
        if overflow:
            windows.inc(catalog.W_OVERFLOW, now, overflow)

    # burning in both fast and slow windows -> one alert
    feed(0.5, 100, 10)
    new, burning = engine.evaluate(windows, 0.5)
    assert len(new) == 1 and burning["overflow"] is True
    assert new[0]["objective"] == "overflow_rate"
    # still burning -> no re-page
    feed(1.0, 100, 10)
    new, _ = engine.evaluate(windows, 1.0)
    assert new == []
    # incident clears (overflow slides out of the fast window)
    feed(6.0, 100, 0)
    new, burning = engine.evaluate(windows, 6.0)
    assert new == [] and burning["overflow"] is False
    # second incident -> a second alert with a fresh sequence number
    feed(6.5, 100, 50)
    new, _ = engine.evaluate(windows, 6.5)
    assert len(new) == 1
    assert new[0]["seq"] == 2
    assert engine.report(windows, 6.5)["alerts"] == 2


def test_fast_window_alone_does_not_fire():
    # a transient spike that has not yet moved the slow-window burn
    # above slow_burn must not page (the multiwindow rule's point)
    engine = SloEngine(_config(min_events=1))
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    windows.inc(catalog.W_ANSWERED, 0.25, 1000)
    windows.inc(catalog.W_ANSWERED, 3.75, 100)
    windows.inc(catalog.W_OVERFLOW, 3.75, 3)
    new, _ = engine.evaluate(windows, 3.75)
    # fast window: 3/100 over budget 0.01 -> 3.0 >= fast_burn
    # slow window: 3/1100 -> 0.27 < slow_burn -> no alert
    assert new == []


def test_violation_verdict_reads_the_slow_window():
    engine = SloEngine(_config())
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    windows.inc(catalog.W_ANSWERED, 1.0, 100)
    windows.inc(catalog.W_OVERFLOW, 1.0, 2)
    report = engine.report(windows, 1.0)
    assert report["passed"] is False
    assert report["objectives"][0]["violated"] is True


# ----------------------------------------------------------------------
# backpressure actuation
# ----------------------------------------------------------------------
class _Learner:
    def __init__(self, budget):
        self.learn_drain_budget = budget


class _Config:
    def __init__(self, threshold):
        self.admission_threshold = threshold


def test_overflow_grows_then_calm_shrinks_budgets():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    learner = _Learner(4)
    controller = BackpressureController(
        [learner], [_Config(None)], windows,
        overflow_horizon_s=1.0, calm_ticks=2,
    )
    windows.inc(catalog.W_OVERFLOW, 0.5, 3)
    controller.tick(0.5, {})
    assert learner.learn_drain_budget == 8
    assert controller.budget_grow == 1
    # overflow slides out of the 1s horizon; two calm ticks halve back
    controller.tick(3.0, {})
    controller.tick(3.5, {})
    assert learner.learn_drain_budget == 4
    assert controller.budget_shrink == 1
    assert controller.stats()["base_budgets"] == [4]


def test_unlimited_budget_is_left_alone():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    learner = _Learner(None)
    controller = BackpressureController(
        [learner], [], windows, overflow_horizon_s=1.0
    )
    windows.inc(catalog.W_OVERFLOW, 0.5, 3)
    controller.tick(0.5, {})
    assert learner.learn_drain_budget is None
    assert controller.budget_grow == 0


def test_sustained_hit_burn_tightens_then_relaxes_admission():
    windows = LiveWindows(window_s=4.0, num_buckets=8)
    config = _Config(0.2)
    controller = BackpressureController(
        [], [config], windows, sustain_ticks=2, admission_step=0.1,
    )
    controller.tick(0.5, {"hit_rate": True})
    assert config.admission_threshold == pytest.approx(0.2)  # not yet sustained
    controller.tick(1.0, {"hit_rate": True})
    assert config.admission_threshold == pytest.approx(0.3)
    assert controller.admission_tighten == 1
    # burn clears: step back toward the configured base, never below it
    controller.tick(1.5, {"hit_rate": False})
    assert config.admission_threshold == pytest.approx(0.2)
    controller.tick(2.0, {"hit_rate": False})
    controller.tick(2.5, {"hit_rate": False})
    assert config.admission_threshold >= 0.2
    assert config.admission_threshold == pytest.approx(0.2)
    assert controller.admission_relax >= 1


# ----------------------------------------------------------------------
# the closed loop, end to end
# ----------------------------------------------------------------------
def test_overflow_burst_alerts_and_grows_drain_budget():
    from repro.experiments.scale import run_scale

    row = run_scale(
        users=60, duration=4.0, rate_per_user=2.0, seed=0,
        max_entries_per_user=16, slo_config=_config(),
        telemetry_interval=0.25,
        learn_queue_capacity=4, learn_drain_budget=0,
    )
    # the starved drain fills the queue and every further observation
    # overflows ...
    assert row["learn_queue_overflows"] > 0
    # ... the burn-rate alert fires ...
    assert row["live"]["alerts"] > 0
    assert row["slo"]["passed"] is False
    # ... and the controller actually actuated: budgets grew from the
    # starved base and the run ends with a usable drain budget
    backpressure = row["backpressure"]
    assert backpressure["budget_grow"] > 0
    assert backpressure["base_budgets"] == [0, 0]
    assert all(budget > 0 for budget in backpressure["drain_budgets"])


def test_backpressure_off_leaves_the_budget_starved():
    from repro.experiments.scale import run_scale

    row = run_scale(
        users=60, duration=4.0, rate_per_user=2.0, seed=0,
        max_entries_per_user=16, slo_config=_config(),
        telemetry_interval=0.25,
        learn_queue_capacity=4, learn_drain_budget=0,
        backpressure=False,
    )
    assert row["learn_queue_overflows"] > 0
    assert row["live"]["alerts"] > 0
    assert row["backpressure"] is None
