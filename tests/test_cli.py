"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_apps_command(capsys):
    code, out = run_cli(capsys, "apps")
    assert code == 0
    for name in ("wish", "geek", "doordash", "purple_ocean", "postmates"):
        assert name in out


def test_analyze_command(capsys):
    code, out = run_cli(capsys, "analyze", "purple_ocean")
    assert code == 0
    assert "signatures: 8" in out
    assert "dependencies:" in out
    assert "[side-effect]" in out


def test_analyze_sig_file(tmp_path, capsys):
    target = tmp_path / "wish.sig.json"
    code, out = run_cli(capsys, "analyze", "wish", "--sig-file", str(target))
    assert code == 0
    payload = json.loads(target.read_text())
    assert payload["package"] == "com.wish.android"
    assert payload["signatures"]


def test_demo_command(capsys):
    code, out = run_cli(capsys, "demo", "postmates")
    assert code == 0
    assert "without proxy" in out
    assert "with APPx" in out


def test_experiment_table1(capsys):
    code, out = run_cli(capsys, "experiment", "table1")
    assert code == 0
    assert "Wish" in out


def test_experiment_ablation(capsys):
    code, out = run_cli(capsys, "experiment", "ablation")
    assert code == 0
    assert "no_intents" in out


def test_experiment_unknown(capsys):
    code = main(["experiment", "nope"])
    assert code == 2


def test_unknown_app_errors():
    with pytest.raises(KeyError):
        main(["analyze", "not-an-app"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_verify_command(tmp_path, capsys):
    config_file = tmp_path / "config.json"
    code, out = run_cli(
        capsys, "verify", "purple_ocean", "--duration", "20",
        "--config-file", str(config_file),
    )
    assert code == 0
    assert "expiration estimates" in out
    payload = json.loads(config_file.read_text())
    assert payload["policies"]


# ----------------------------------------------------------------------
# live telemetry plane / SLO flags
# ----------------------------------------------------------------------
def _slo_config_file(tmp_path):
    # slow window wider than the run: terminal events push the sim
    # clock past the nominal duration, and the end-of-run verdict must
    # still see the early overflow burst inside the slow window
    config = {
        "window_s": 12.0,
        "fast_window_s": 1.0,
        "objectives": [
            {"name": "overflow_rate", "kind": "overflow",
             "budget_ratio": 0.01, "fast_burn": 2.0, "slow_burn": 1.0,
             "min_events": 10},
        ],
    }
    path = tmp_path / "slo.json"
    path.write_text(json.dumps(config))
    return str(path)


def test_scale_slo_violation_exits_nonzero(tmp_path, capsys):
    report_path = tmp_path / "slo_report.json"
    code, out = run_cli(
        capsys, "scale", "--users", "60", "--duration", "4",
        "--rate", "2.0", "--max-entries-per-user", "16",
        "--slo", _slo_config_file(tmp_path),
        "--slo-report", str(report_path),
        "--learn-queue-capacity", "4", "--learn-drain-budget", "0",
    )
    assert code == 1
    assert "slo verdict: FAIL" in out
    assert "VIOLATED" in out
    assert "backpressure[60 users]" in out
    report = json.loads(report_path.read_text())
    assert report["passed"] is False
    assert report["cells"][0]["slo"]["objectives"][0]["bad"] > 0


def test_scale_slo_clean_run_passes(tmp_path, capsys):
    code, out = run_cli(
        capsys, "scale", "--users", "60", "--duration", "4",
        "--rate", "2.0", "--max-entries-per-user", "16",
        "--slo", _slo_config_file(tmp_path),
    )
    assert code == 0
    assert "slo verdict: PASS" in out
    assert "live[60 users]" in out


def test_scale_slo_flag_validation(tmp_path, capsys):
    # --slo-report without --slo
    assert main(["scale", "--users", "10", "--slo-report", "x.json"]) == 2
    # unreadable SLO config
    assert main([
        "scale", "--users", "10", "--slo", str(tmp_path / "missing.json"),
    ]) == 2
    # non-positive heartbeat interval
    assert main([
        "scale", "--users", "10", "--heartbeat-interval", "0",
    ]) == 2
    capsys.readouterr()


def test_scale_prom_out_atomic_dump(tmp_path, capsys):
    prom_path = tmp_path / "metrics.prom"
    code, out = run_cli(
        capsys, "scale", "--users", "20", "--duration", "2",
        "--max-entries-per-user", "16", "--prom-out", str(prom_path),
    )
    assert code == 0
    assert "wrote Prometheus metrics to {}".format(prom_path) in out
    assert "# TYPE" in prom_path.read_text()
