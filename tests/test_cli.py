"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_apps_command(capsys):
    code, out = run_cli(capsys, "apps")
    assert code == 0
    for name in ("wish", "geek", "doordash", "purple_ocean", "postmates"):
        assert name in out


def test_analyze_command(capsys):
    code, out = run_cli(capsys, "analyze", "purple_ocean")
    assert code == 0
    assert "signatures: 8" in out
    assert "dependencies:" in out
    assert "[side-effect]" in out


def test_analyze_sig_file(tmp_path, capsys):
    target = tmp_path / "wish.sig.json"
    code, out = run_cli(capsys, "analyze", "wish", "--sig-file", str(target))
    assert code == 0
    payload = json.loads(target.read_text())
    assert payload["package"] == "com.wish.android"
    assert payload["signatures"]


def test_demo_command(capsys):
    code, out = run_cli(capsys, "demo", "postmates")
    assert code == 0
    assert "without proxy" in out
    assert "with APPx" in out


def test_experiment_table1(capsys):
    code, out = run_cli(capsys, "experiment", "table1")
    assert code == 0
    assert "Wish" in out


def test_experiment_ablation(capsys):
    code, out = run_cli(capsys, "experiment", "ablation")
    assert code == 0
    assert "no_intents" in out


def test_experiment_unknown(capsys):
    code = main(["experiment", "nope"])
    assert code == 2


def test_unknown_app_errors():
    with pytest.raises(KeyError):
        main(["analyze", "not-an-app"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_verify_command(tmp_path, capsys):
    config_file = tmp_path / "config.json"
    code, out = run_cli(
        capsys, "verify", "purple_ocean", "--duration", "20",
        "--config-file", str(config_file),
    )
    assert code == 0
    assert "expiration estimates" in out
    payload = json.loads(config_file.read_text())
    assert payload["policies"]
