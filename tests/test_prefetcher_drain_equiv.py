"""Lazy epoch-stamped drain vs the seed's rebuild drain: same order.

The §5 scheduler's contract is "drain in priority order as of *now*,
FIFO within a site".  The seed re-sorted the whole waiting queue per
drain (O(W)); the lazy drain keeps per-site FIFOs plus a head-entry
heap invalidated by epoch stamps (amortized O(log W)).  These tests
drive both implementations with identical recorded workloads — queue
buildups, mid-flight priority moves, hit-rate updates, the priority
ablation toggle — and assert the origin observed the *identical*
issue order.
"""

import random

import pytest

from repro.analysis.model import AnalysisResult
from repro.netsim.link import Link
from repro.netsim.sim import Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import ProxyConfig
from repro.proxy.learning import DynamicLearner
from repro.proxy.prefetcher import Prefetcher

from tests.test_proxy_prefetcher import ORIGIN, SlowEndpoint, ready_for


def make_prefetcher(lazy_drain, max_concurrent=1):
    sim = Simulator()
    endpoint = SlowEndpoint()
    origins = OriginMap()
    origins.register(ORIGIN, endpoint, Link(rtt=0.02))
    cache = PrefetchCache()
    learner = DynamicLearner(AnalysisResult("t", [], []))
    prefetcher = Prefetcher(
        sim,
        origins,
        cache,
        ProxyConfig(),
        learner,
        max_concurrent=max_concurrent,
        lazy_drain=lazy_drain,
    )
    return sim, endpoint, cache, prefetcher


def replay(workload, lazy_drain, max_concurrent=1):
    """Apply one recorded op sequence; return the origin's issue order."""
    sim, endpoint, cache, prefetcher = make_prefetcher(lazy_drain, max_concurrent)
    for op in workload:
        kind = op[0]
        if kind == "submit":
            _, site, path, user = op
            prefetcher.submit(ready_for(site, path, user=user))
        elif kind == "priority":
            _, site, value = op
            prefetcher.avg_response_time[site] = value
        elif kind == "hit":
            cache.record_hit(op[1])
        elif kind == "miss":
            cache.record_miss(op[1])
        elif kind == "toggle":
            prefetcher.priority_enabled = op[1]
        elif kind == "run":
            sim.run(until=sim.now + op[1])
    sim.run()
    return endpoint.order, prefetcher


def random_workload(seed, length=120):
    rng = random.Random(seed)
    sites = ["s{}#0".format(i) for i in range(6)]
    ops = []
    serial = 0
    for _ in range(length):
        roll = rng.random()
        if roll < 0.5:
            # unique paths so the duplicate gate never hides ordering
            ops.append(
                (
                    "submit",
                    rng.choice(sites),
                    "/p{}".format(serial),
                    "u{}".format(rng.randrange(3)),
                )
            )
            serial += 1
        elif roll < 0.7:
            ops.append(("priority", rng.choice(sites), rng.random() * 2.0))
        elif roll < 0.8:
            ops.append((rng.choice(["hit", "miss"]), rng.choice(sites)))
        elif roll < 0.88:
            ops.append(("toggle", rng.random() < 0.5))
        else:
            ops.append(("run", rng.random() * 0.4))
    return ops


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_lazy_drain_order_matches_rebuild_oracle(seed):
    workload = random_workload(seed)
    lazy_order, lazy = replay(workload, lazy_drain=True)
    rebuild_order, rebuild = replay(workload, lazy_drain=False)
    assert lazy_order == rebuild_order
    assert lazy.issued == rebuild.issued


def test_lazy_drain_order_matches_with_concurrency():
    workload = random_workload(97, length=200)
    lazy_order, _ = replay(workload, lazy_drain=True, max_concurrent=4)
    rebuild_order, _ = replay(workload, lazy_drain=False, max_concurrent=4)
    assert lazy_order == rebuild_order


def test_priority_rise_while_queued_reorders_lazily():
    # a site whose priority RISES after enqueue must jump the queue —
    # the case plain re-push-on-pop lazy invalidation gets wrong
    sim, endpoint, cache, prefetcher = make_prefetcher(lazy_drain=True)
    prefetcher.submit(ready_for("hold#0", "/hold"))
    prefetcher.submit(ready_for("a#0", "/a"))
    prefetcher.submit(ready_for("b#0", "/b"))
    prefetcher.avg_response_time["b#0"] = 5.0
    sim.run()
    assert endpoint.order == ["/hold", "/b", "/a"]
    # b's outdated (pre-rise) head entry was never popped: it is the
    # leftover the epoch stamp guards against
    assert len(prefetcher._site_heap) > 0
    assert all(
        epoch != prefetcher._site_epoch.get(site, 0)
        for _, _, site, epoch in prefetcher._site_heap
    )


def test_priority_drop_while_queued_discards_stale_head():
    # a site whose priority DROPS keeps its old (higher) stamp at the
    # heap top; the pop must recognize it as stale and fall through to
    # the demoted fresh entry
    sim, endpoint, cache, prefetcher = make_prefetcher(lazy_drain=True)
    prefetcher.avg_response_time["a#0"] = 5.0
    prefetcher.avg_response_time["c#0"] = 1.0
    prefetcher.submit(ready_for("hold#0", "/hold"))
    prefetcher.submit(ready_for("a#0", "/a"))
    prefetcher.submit(ready_for("c#0", "/c"))
    prefetcher.avg_response_time["a#0"] = 0.0  # demote a below c
    sim.run()
    assert endpoint.order == ["/hold", "/c", "/a"]
    assert prefetcher.stale_heap_entries > 0


def test_hit_rate_update_bumps_epoch():
    sim, endpoint, cache, prefetcher = make_prefetcher(lazy_drain=True)
    prefetcher.submit(ready_for("hold#0", "/hold"))
    prefetcher.submit(ready_for("a#0", "/a"))
    epoch_before = prefetcher._site_epoch.get("a#0", 0)
    cache.record_miss("a#0")
    assert prefetcher._site_epoch["a#0"] == epoch_before + 1
    sim.run()
    assert endpoint.order == ["/hold", "/a"]


def test_waiting_count_tracks_queue_in_both_modes():
    for lazy in (True, False):
        sim, endpoint, cache, prefetcher = make_prefetcher(lazy_drain=lazy)
        prefetcher.submit(ready_for("hold#0", "/hold"))
        for i in range(3):
            prefetcher.submit(ready_for("q#0", "/q{}".format(i)))
        assert prefetcher.waiting == 3
        sim.run()
        assert prefetcher.waiting == 0


def test_sample_request_copied_once_per_site():
    # the satellite fix: sample_requests.setdefault(site, req.copy())
    # used to pay a full request copy on *every* fetch
    from repro.httpmsg.message import Request

    copies = {"n": 0}
    original_copy = Request.copy

    def counting_copy(self):
        copies["n"] += 1
        return original_copy(self)

    sim, endpoint, cache, prefetcher = make_prefetcher(lazy_drain=True)
    Request.copy = counting_copy
    try:
        prefetcher.submit(ready_for("a#0", "/a1"))
        sim.run()
        first_fetch = copies["n"]
        prefetcher.submit(ready_for("a#0", "/a2"))
        sim.run()
        second_fetch = copies["n"] - first_fetch
    finally:
        Request.copy = original_copy
    # the second fetch for a known site skips the sample copy
    assert second_fetch == first_fetch - 1
    assert "a#0" in prefetcher.sample_requests
