"""Tests for the mini-IR data structures."""

import pytest

from repro.apk.ir import (
    Block,
    CallMethod,
    Const,
    ForEach,
    GetField,
    If,
    Invoke,
    MethodRef,
    Move,
    New,
    PutField,
    Return,
)


def test_method_ref_parse_and_format():
    ref = MethodRef.parse("FeedActivity.onStart")
    assert ref.class_name == "FeedActivity"
    assert ref.method_name == "onStart"
    assert ref.to_string() == "FeedActivity.onStart"


def test_method_ref_requires_class():
    with pytest.raises(ValueError):
        MethodRef.parse("loneMethod")


def test_method_ref_equality_and_hash():
    a = MethodRef("C", "m")
    b = MethodRef.parse("C.m")
    assert a == b
    assert len({a, b}) == 1


def test_defined_and_used_registers():
    assert Const("d", 1).defined_registers() == ["d"]
    assert Move("d", "s").used_registers() == ["s"]
    assert New("d", "C").defined_registers() == ["d"]
    get = GetField("d", "o", "f")
    assert get.defined_registers() == ["d"]
    assert get.used_registers() == ["o"]
    put = PutField("o", "f", "s")
    assert sorted(put.used_registers()) == ["o", "s"]
    invoke = Invoke("d", "Str.concat", ["a", "b"])
    assert invoke.defined_registers() == ["d"]
    assert invoke.used_registers() == ["a", "b"]
    void_invoke = Invoke(None, "Ui.render", ["x"])
    assert void_invoke.defined_registers() == []
    call = CallMethod("d", MethodRef("C", "m"), ["a"])
    assert call.defined_registers() == ["d"]
    assert Return("r").used_registers() == ["r"]
    assert Return().used_registers() == []


def test_if_child_blocks():
    branch = If("c", Block([Const("x", 1)]), Block([Const("y", 2)]))
    assert branch.used_registers() == ["c"]
    assert len(branch.child_blocks()) == 2


def test_foreach_defines_loop_variable():
    loop = ForEach("item", "items", Block())
    assert loop.defined_registers() == ["item"]
    assert loop.used_registers() == ["items"]
    assert loop.parallel is False
    assert ForEach("i", "s", Block(), parallel=True).parallel


def test_block_walk_recurses():
    inner = Block([Const("a", 1)])
    outer = Block([If("c", inner, Block([Const("b", 2)])), Const("d", 3)])
    kinds = [type(i).__name__ for i in outer.walk()]
    assert kinds == ["If", "Const", "Const", "Const"]


def test_block_len_counts_top_level_only():
    block = Block([Const("a", 1), If("a", Block([Const("b", 2)]), Block())])
    assert len(block) == 2
