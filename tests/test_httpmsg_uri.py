"""Tests for repro.httpmsg.uri."""

import pytest

from repro.httpmsg.uri import Uri, quote, unquote


def test_parse_basic():
    uri = Uri.parse("https://api.wish.com/product/get")
    assert uri.scheme == "https"
    assert uri.host == "api.wish.com"
    assert uri.path == "/product/get"
    assert uri.query == []


def test_parse_with_query():
    uri = Uri.parse("https://a.com/x?cid=09cf&v=2")
    assert uri.query == [("cid", "09cf"), ("v", "2")]
    assert uri.query_get("cid") == "09cf"


def test_parse_with_port():
    uri = Uri.parse("https://a.com:8443/x")
    assert uri.port == 8443
    assert uri.effective_port() == 8443


def test_default_ports():
    assert Uri.parse("https://a.com/").effective_port() == 443
    assert Uri.parse("http://a.com/").effective_port() == 80


def test_parse_no_path():
    uri = Uri.parse("https://a.com")
    assert uri.path == "/"


def test_parse_requires_scheme():
    with pytest.raises(ValueError):
        Uri.parse("a.com/x")


def test_round_trip():
    text = "https://api.wish.com/api/merchant?q=Silk%20lantern"
    assert Uri.parse(text).to_string() == text


def test_origin_hides_default_port():
    assert Uri.parse("https://a.com:443/x").origin() == "https://a.com"
    assert Uri.parse("https://a.com:8443/x").origin() == "https://a.com:8443"


def test_path_segments():
    uri = Uri.parse("https://a.com/v2/store/ab12/menu")
    assert uri.path_segments() == ["v2", "store", "ab12", "menu"]


def test_query_set_updates_in_place():
    uri = Uri.parse("https://a.com/x?k=1")
    uri.query_set("k", "2")
    assert uri.query == [("k", "2")]
    uri.query_set("new", "3")
    assert uri.query_get("new") == "3"


def test_query_dict():
    uri = Uri.parse("https://a.com/x?a=1&b=2")
    assert uri.query_dict() == {"a": "1", "b": "2"}


def test_equality_and_hash():
    a = Uri.parse("https://a.com/x?k=1")
    b = Uri.parse("https://a.com/x?k=1")
    assert a == b
    assert hash(a) == hash(b)


def test_copy_independent():
    a = Uri.parse("https://a.com/x")
    b = a.copy()
    b.query_set("k", "1")
    assert a.query == []


def test_quote_unquote_round_trip():
    text = "hello world/50% off&more=yes"
    assert unquote(quote(text)) == text


def test_quote_safe_characters_untouched():
    assert quote("abc-XYZ_0.9~") == "abc-XYZ_0.9~"


def test_unquote_tolerates_stray_percent():
    assert unquote("100%") == "100%"
