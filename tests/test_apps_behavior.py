"""Behavioral tests for the four non-Wish apps (transaction content)."""

import pytest

from repro.apps import get_app
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport
from repro.server.content import Catalog


def run_flow(spec, steps, user="user-1"):
    sim = Simulator()
    origins, servers = spec.build_origin_map(sim, Catalog())
    transport = DirectTransport(sim, Link(rtt=0.055, shared=True), origins)
    runtime = AppRuntime(spec.build_apk(), transport, sim, spec.default_profile(user))

    def flow():
        results = [(yield sim.spawn(runtime.launch()))]
        for event, index in steps:
            yield Delay(2.0)
            results.append((yield sim.spawn(runtime.dispatch(event, index))))
        return results

    results = sim.run_process(flow())
    return runtime, servers, results


# -- Geek ---------------------------------------------------------------------
def test_geek_detail_combines_product_and_reviews_via_rx():
    spec = get_app("geek")
    runtime, _, results = run_flow(spec, [("select_item", 2)])
    detail = results[-1]
    paths = [t.request.uri.path for t in detail.transactions]
    assert "/api/product" in paths
    assert "/api/reviews" in paths
    assert "/api/related" in paths
    assert "/p" in paths  # the 315 KB product image
    product = next(t for t in detail.transactions if t.request.uri.path == "/api/product")
    assert product.request.body.get("_app") == "geek"
    # vip flag is off: the branch-dependent field is absent
    assert product.request.body.get("vip_tier") is None


def test_geek_related_navigation_reuses_detail_sites():
    spec = get_app("geek")
    runtime, _, results = run_flow(
        spec, [("select_item", 0), ("select_related", 1)]
    )
    related_view = results[-1]
    product = next(
        t for t in related_view.transactions if t.request.uri.path == "/api/product"
    )
    first_detail = next(
        t for t in results[1].transactions if t.request.uri.path == "/api/product"
    )
    assert product.request.body.get("pid") != first_detail.request.body.get("pid")


# -- DoorDash --------------------------------------------------------------------
def test_doordash_menu_uses_store_id_path_segment():
    spec = get_app("doordash")
    runtime, _, results = run_flow(spec, [("select_store", 1)])
    store_view = results[-1]
    menu = next(t for t in store_view.transactions if t.request.uri.path.endswith("/menu"))
    schedule = next(
        t for t in store_view.transactions if t.request.uri.path.endswith("/schedule")
    )
    stores = results[0].transactions[0].response.body.value["stores"]
    expected = stores[1]["id"]
    assert menu.request.uri.path == "/v2/store/{}/menu".format(expected)
    assert schedule.request.uri.path == "/v2/store/{}/schedule".format(expected)


def test_doordash_drilldown_chain_to_suggestions():
    spec = get_app("doordash")
    runtime, _, results = run_flow(
        spec, [("select_store", 0), ("select_menu_item", 2)]
    )
    item_view = results[-1]
    paths = [t.request.uri.path for t in item_view.transactions]
    assert "/v2/menu-item" in paths
    assert "/v2/options" in paths
    assert "/v2/suggestions" in paths
    options = next(t for t in item_view.transactions if t.request.uri.path == "/v2/options")
    detail = next(t for t in item_view.transactions if t.request.uri.path == "/v2/menu-item")
    group = detail.response.body.value["item"]["option_group"]
    assert options.request.uri.query_get("gid") == group


def test_doordash_add_to_cart_side_effect():
    spec = get_app("doordash")
    runtime, servers, _ = run_flow(
        spec, [("select_store", 0), ("select_menu_item", 1), ("add_to_cart", None)]
    )
    api = servers["https://api.doordash.com"]
    cart_requests = [
        req for req, _ in api.log
        if req.uri.path == "/v2/menu-item" and req.body.kind == "form"
        and req.body.get("cart") == "1"
    ]
    assert len(cart_requests) == 1


# -- Purple Ocean -----------------------------------------------------------------
def test_purple_ocean_advisor_page_three_transactions():
    spec = get_app("purple_ocean")
    runtime, _, results = run_flow(spec, [("select_advisor", 3)])
    advisor_view = results[-1]
    paths = [t.request.uri.path for t in advisor_view.transactions]
    assert paths[0] == "/api/advisor"
    assert any(p.startswith("/media/profile/") for p in paths)
    assert any(p.startswith("/media/still/") for p in paths)
    assert len(advisor_view.transactions) == 3  # exactly Table 2's rows


def test_purple_ocean_media_paths_keyed_by_advisor_id():
    spec = get_app("purple_ocean")
    runtime, _, results = run_flow(spec, [("select_advisor", 0)])
    advisor_view = results[-1]
    info = advisor_view.transactions[0]
    advisor_id = info.response.body.value["advisor"]["id"]
    profile = next(
        t for t in advisor_view.transactions
        if t.request.uri.path.startswith("/media/profile/")
    )
    assert profile.request.uri.path == "/media/profile/{}.png".format(advisor_id)


def test_purple_ocean_processing_delay_largest():
    spec = get_app("purple_ocean")
    runtime, _, results = run_flow(spec, [("select_advisor", 1)])
    assert results[-1].processing_delay == pytest.approx(0.8)


# -- Postmates ---------------------------------------------------------------------
def test_postmates_restaurant_page_contents():
    spec = get_app("postmates")
    runtime, _, results = run_flow(spec, [("select_restaurant", 2)])
    view = results[-1]
    paths = [t.request.uri.path for t in view.transactions]
    assert "/v1/restaurant" in paths
    assert "/v1/eta" in paths
    assert any(p.startswith("/store-img/") for p in paths)
    restaurant = next(t for t in view.transactions if t.request.uri.path == "/v1/restaurant")
    # the menu & info response is small (~7 KB class)
    assert restaurant.response.body.wire_size() < 20_000


def test_postmates_deep_drilldown_pairings_cycle():
    spec = get_app("postmates")
    runtime, _, results = run_flow(
        spec,
        [("select_restaurant", 0), ("select_item", 1), ("select_pairing", 0)],
    )
    pairing_view = results[-1]
    paths = [t.request.uri.path for t in pairing_view.transactions]
    assert "/v1/item" in paths
    assert "/v1/pairings" in paths
    assert runtime.current_screen == "item"


def test_postmates_feed_images_are_large():
    spec = get_app("postmates")
    runtime, _, results = run_flow(spec, [])
    images = [
        t for t in results[0].transactions
        if t.request.uri.path.startswith("/store-img/")
    ]
    assert images
    for image in images:
        assert image.response.body.wire_size() > 100_000  # ~168 KB class
