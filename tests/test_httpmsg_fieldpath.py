"""Tests for repro.httpmsg.fieldpath."""

import pytest

from repro.httpmsg.body import FormBody, JsonBody
from repro.httpmsg.fieldpath import ALL, FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri


def make_request():
    return Request(
        method="POST",
        uri=Uri.parse("https://api.wish.com/product/get?v=2"),
        headers=Headers([("Cookie", "bsid=1"), ("User-Agent", "UA")]),
        body=FormBody([("cid", "09cf"), ("_cap[]", "2"), ("_cap[]", "4")]),
    )


# -- parsing / formatting -------------------------------------------------
def test_parse_round_trip_simple():
    for text in ("header.Cookie", "query.cid", "body.cid", "uri.host", "method"):
        assert FieldPath.parse(text).to_string() == text


def test_parse_array_paths():
    path = FieldPath.parse("body.data.products[].product_info.id")
    assert path.parts == ("data", "products", ALL, "product_info", "id")
    assert path.to_string() == "body.data.products[].product_info.id"


def test_parse_indexed_path():
    path = FieldPath.parse("uri.path[2]")
    assert path.parts == ("path", 2)
    assert path.to_string() == "uri.path[2]"


def test_parse_occurrence_suffix():
    path = FieldPath.parse("body.k~1")
    assert path.occurrence == 1
    assert path.to_string() == "body.k~1"


def test_literal_brackets_in_form_key_escape_round_trip():
    path = FieldPath("body", ("_cap[]",), occurrence=2)
    text = path.to_string()
    assert text == "body._cap%5B%5D~2"
    assert FieldPath.parse(text) == path


def test_unknown_root_rejected():
    with pytest.raises(ValueError):
        FieldPath("bogus")


# -- extraction ------------------------------------------------------------
def test_extract_header():
    assert FieldPath.parse("header.Cookie").extract(make_request()) == ["bsid=1"]


def test_extract_query():
    assert FieldPath.parse("query.v").extract(make_request()) == ["2"]


def test_extract_form_field():
    assert FieldPath.parse("body.cid").extract(make_request()) == ["09cf"]


def test_extract_form_occurrence():
    request = make_request()
    assert FieldPath("body", ("_cap[]",), 0).extract(request) == ["2"]
    assert FieldPath("body", ("_cap[]",), 1).extract(request) == ["4"]
    assert FieldPath("body", ("_cap[]",), 5).extract(request) == []


def test_extract_method_and_uri():
    request = make_request()
    assert FieldPath.parse("method").extract(request) == ["POST"]
    assert FieldPath.parse("uri.host").extract(request) == ["api.wish.com"]
    assert FieldPath.parse("uri.path[0]").extract(request) == ["product"]


def test_extract_json_all_elements():
    response = Response(
        body=JsonBody({"data": {"products": [{"id": "a"}, {"id": "b"}]}})
    )
    path = FieldPath.parse("body.data.products[].id")
    assert path.extract(response) == ["a", "b"]


def test_extract_json_missing_path():
    response = Response(body=JsonBody({"data": {}}))
    assert FieldPath.parse("body.data.nope[].id").extract(response) == []


def test_extract_status():
    assert FieldPath.parse("status").extract(Response(404)) == [404]


def test_extract_json_index():
    response = Response(body=JsonBody({"items": ["x", "y", "z"]}))
    assert FieldPath.parse("body.items[1]").extract(response) == ["y"]
    assert FieldPath.parse("body.items[9]").extract(response) == []


# -- assignment -------------------------------------------------------------
def test_assign_header():
    request = make_request()
    FieldPath.parse("header.Cookie").assign(request, "bsid=9")
    assert request.headers.get("Cookie") == "bsid=9"


def test_assign_form_occurrence():
    request = make_request()
    FieldPath("body", ("_cap[]",), 1).assign(request, "8")
    assert request.body.get_all("_cap[]") == ["2", "8"]


def test_assign_query_appends_when_missing():
    request = make_request()
    FieldPath.parse("query.new").assign(request, "1")
    assert request.uri.query_get("new") == "1"


def test_assign_uri_host():
    request = make_request()
    FieldPath.parse("uri.host").assign(request, "other.com")
    assert request.uri.host == "other.com"


def test_assign_uri_path_segment():
    request = make_request()
    FieldPath.parse("uri.path[1]").assign(request, "put")
    assert request.uri.path == "/product/put"


def test_assign_json_nested():
    request = Request(body=JsonBody({}))
    FieldPath.parse("body.a.b").assign(request, 7)
    assert request.body.value == {"a": {"b": 7}}


def test_assign_through_all_rejected():
    request = make_request()
    with pytest.raises(ValueError):
        FieldPath.parse("body.items[].id").assign(request, "x")


def test_assign_method():
    request = make_request()
    FieldPath.parse("method").assign(request, "GET")
    assert request.method == "GET"


# -- identity ---------------------------------------------------------------
def test_equality_includes_occurrence():
    assert FieldPath.parse("body.k") != FieldPath.parse("body.k~1")
    assert FieldPath.parse("body.k") == FieldPath("body", ("k",))


def test_hashable():
    paths = {FieldPath.parse("body.k"), FieldPath.parse("body.k~1")}
    assert len(paths) == 2


def test_child_keeps_occurrence():
    path = FieldPath("body", ("a",), occurrence=1)
    assert path.child("b").occurrence == 1
