"""Tests for the signature-file (de)serialization."""

import json

import pytest

from repro.analysis import analyze_apk
from repro.analysis.serialize import dumps, loads
from repro.apps import all_apps


@pytest.mark.parametrize("name", list(all_apps()), ids=str)
def test_round_trip_preserves_everything(name):
    original = analyze_apk(all_apps()[name].build_apk())
    restored = loads(dumps(original))
    assert restored.package == original.package
    assert restored.sites() == original.sites()
    assert restored.dependencies == original.dependencies
    for before, after in zip(original.signatures, restored.signatures):
        assert after.site == before.site
        assert after.hash == before.hash
        assert after.side_effect == before.side_effect
        assert after.request.method == before.request.method
        assert after.request.uri.canonical() == before.request.uri.canonical()
        assert after.request.body_kind == before.request.body_kind
        assert {
            p.to_string(): t.canonical() for p, t in after.request.fields.items()
        } == {p.to_string(): t.canonical() for p, t in before.request.fields.items()}
        assert set(after.variants) == set(before.variants)
        assert after.response.body_kind == before.response.body_kind
        assert {p.to_string() for p in after.response.paths} == {
            p.to_string() for p in before.response.paths
        }


def test_round_trip_summary_identical():
    original = analyze_apk(all_apps()["wish"].build_apk())
    restored = loads(dumps(original))
    assert restored.summary() == original.summary()


def test_double_round_trip_stable():
    original = analyze_apk(all_apps()["doordash"].build_apk())
    once = dumps(loads(dumps(original)))
    assert once == dumps(original)


def test_output_is_valid_sorted_json():
    text = dumps(analyze_apk(all_apps()["geek"].build_apk()))
    payload = json.loads(text)
    assert payload["format"] == 1
    assert payload["package"] == "com.contextlogic.geek"


def test_unknown_format_rejected():
    text = dumps(analyze_apk(all_apps()["geek"].build_apk()))
    payload = json.loads(text)
    payload["format"] = 99
    with pytest.raises(ValueError):
        loads(json.dumps(payload))


def test_restored_result_drives_a_proxy():
    """A proxy built from a signature file behaves like the original."""
    from repro.device.runtime import AppRuntime
    from repro.netsim.link import Link
    from repro.netsim.sim import Delay, Simulator
    from repro.proxy import AccelerationProxy, ProxiedTransport
    from repro.server.content import Catalog

    spec = all_apps()["wish"]
    restored = loads(dumps(analyze_apk(spec.build_apk())))
    sim = Simulator()
    origins, _ = spec.build_origin_map(sim, Catalog())
    proxy = AccelerationProxy(sim, origins, restored)
    runtime = AppRuntime(
        spec.build_apk(),
        ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy),
        sim,
        spec.default_profile(),
    )

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        result = yield sim.spawn(runtime.dispatch("select_item", 3))
        return result

    sim.run_process(flow())
    assert proxy.served_prefetched >= 3
