"""Every app's main interaction must accelerate through its proxy."""

import pytest

from repro.apps import all_apps
from repro.experiments.scenario import Scenario, prepare_app
from repro.netsim.sim import Delay

APP_NAMES = list(all_apps())


def run_main(scenario, user):
    runtime = scenario.runtime(user)
    spec = scenario.spec

    def flow():
        yield scenario.sim.spawn(runtime.launch())
        result = None
        for event, index in spec.main_flow:
            yield Delay(6.0)
            result = yield scenario.sim.spawn(runtime.dispatch(event, index))
        return result

    return scenario.sim.run_process(flow())


@pytest.mark.parametrize("name", APP_NAMES, ids=str)
def test_main_interaction_accelerates(name):
    prepared = prepare_app(name)
    spec = prepared.spec
    orig = run_main(Scenario(prepared, proxied=False), "u1")
    scenario = Scenario(
        prepared, proxied=True, enabled_classes=spec.main_site_classes
    )
    appx = run_main(scenario, "u1")
    assert appx.latency < orig.latency * 0.85, name
    assert scenario.proxy.served_prefetched >= 1


@pytest.mark.parametrize("name", APP_NAMES, ids=str)
def test_acceleration_preserves_response_bodies(name):
    """R3: identical responses with and without the proxy."""
    prepared = prepare_app(name)
    orig = run_main(Scenario(prepared, proxied=False), "u1")
    appx = run_main(
        Scenario(
            prepared, proxied=True,
            enabled_classes=prepared.spec.main_site_classes,
        ),
        "u1",
    )
    orig_bodies = {
        t.request.uri.path: t.response.body.to_wire() for t in orig.transactions
    }
    appx_bodies = {
        t.request.uri.path: t.response.body.to_wire() for t in appx.transactions
    }
    assert appx_bodies == orig_bodies, name


@pytest.mark.parametrize("name", APP_NAMES, ids=str)
def test_server_errors_forwarded_unchanged(name):
    """A failing origin route reaches the client as-is (no masking)."""
    prepared = prepare_app(name)
    scenario = Scenario(prepared, proxied=True)
    # break every route on every origin of this app
    for server in scenario.servers.values():
        for route in server.routes:
            server.force_error(route.name, 503)
    runtime = scenario.runtime("u1")
    result = scenario.sim.run_process(runtime.launch())
    statuses = {t.response.status for t in result.transactions}
    assert statuses == {503}
    assert len(scenario.proxy.cache) == 0  # nothing bad cached
