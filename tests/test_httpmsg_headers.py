"""Tests for repro.httpmsg.headers."""

from repro.httpmsg.headers import Headers


def test_add_and_get_case_insensitive():
    headers = Headers()
    headers.add("Content-Type", "application/json")
    assert headers.get("content-type") == "application/json"
    assert headers.get("CONTENT-TYPE") == "application/json"


def test_get_default_for_missing():
    headers = Headers()
    assert headers.get("X-Missing") is None
    assert headers.get("X-Missing", "fallback") == "fallback"


def test_multiple_values_preserved_in_order():
    headers = Headers()
    headers.add("Set-Cookie", "a=1")
    headers.add("Set-Cookie", "b=2")
    assert headers.get_all("set-cookie") == ["a=1", "b=2"]
    assert headers.get("Set-Cookie") == "a=1"


def test_set_replaces_all_values():
    headers = Headers([("X", "1"), ("X", "2"), ("Y", "3")])
    headers.set("x", "9")
    assert headers.get_all("X") == ["9"]
    assert headers.get("Y") == "3"


def test_remove_keeps_other_headers():
    headers = Headers([("A", "1"), ("B", "2"), ("A", "3")])
    headers.remove("a")
    assert "A" not in headers
    assert headers.get("B") == "2"
    assert len(headers) == 1


def test_remove_missing_is_noop():
    headers = Headers([("A", "1")])
    headers.remove("Z")
    assert headers.get("A") == "1"


def test_names_first_appearance_order():
    headers = Headers([("B", "1"), ("A", "2"), ("b", "3")])
    assert headers.names() == ["B", "A"]


def test_contains():
    headers = Headers([("Cookie", "x")])
    assert "cookie" in headers
    assert "Cookie" in headers
    assert "Accept" not in headers
    assert 42 not in headers


def test_equality_ignores_order_and_case():
    a = Headers([("A", "1"), ("B", "2")])
    b = Headers([("b", "2"), ("a", "1")])
    assert a == b


def test_inequality_on_different_values():
    a = Headers([("A", "1")])
    b = Headers([("A", "2")])
    assert a != b


def test_copy_is_independent():
    original = Headers([("A", "1")])
    clone = original.copy()
    clone.add("B", "2")
    assert "B" not in original


def test_wire_size_counts_all_headers():
    headers = Headers([("AB", "cd")])
    # "AB: cd\r\n" = 2 + 2 + 4
    assert headers.wire_size() == 8


def test_iteration_yields_pairs():
    headers = Headers([("A", "1"), ("B", "2")])
    assert list(headers) == [("A", "1"), ("B", "2")]


def test_values_coerced_to_str():
    headers = Headers()
    headers.add("X-Count", 42)
    assert headers.get("X-Count") == "42"
