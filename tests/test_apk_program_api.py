"""Tests for program containers and the semantic API catalog."""

import pytest

from repro.apk.api import (
    CATALOG,
    is_known,
    network_sink,
    runtime_only,
    spec_for,
    unknown_tag,
)
from repro.apk.ir import MethodRef
from repro.apk.program import ApkFile, AppClass, Component, EventSpec, Method, Screen


# -- API catalog ---------------------------------------------------------------
def test_catalog_covers_core_apis():
    for api in (
        "Str.concat", "Http.newRequest", "Http.execute", "Json.get",
        "Intent.putExtra", "Rx.flatMap", "Env.cookie", "Ui.render",
    ):
        assert is_known(api)


def test_spec_for_unknown_raises():
    with pytest.raises(KeyError):
        spec_for("Nope.nothing")


def test_network_sink_only_execute():
    assert network_sink("Http.execute")
    assert not network_sink("Http.newRequest")
    assert not network_sink("definitely.not.an.api")


def test_runtime_only_tags():
    assert runtime_only("Env.cookie")
    assert runtime_only("Env.config")
    assert not runtime_only("Str.concat")


def test_unstable_tag_on_nonce():
    assert spec_for("Env.nonce").has_tag("unstable")
    assert not spec_for("Env.cookie").has_tag("unstable")


def test_unknown_tag_format():
    assert unknown_tag("Env.cookie") == "env:cookie"
    assert unknown_tag("Env.config", "api_host") == "env:config:api_host"


def test_catalog_arities_sane():
    for name, spec in CATALOG.items():
        assert spec.arity >= 0
        assert isinstance(spec.returns, bool), name


# -- program containers -----------------------------------------------------------
def make_apk():
    apk = ApkFile("com.test", label="Test")
    app_class = apk.add_class(AppClass("Main"))
    method = app_class.add_method(Method("onStart", ["this", "intent"]))
    apk.add_component(Component("main", "Main", screen="home"), main=True)
    screen = apk.add_screen(Screen("home"))
    screen.add_event(EventSpec("tap", MethodRef("Main", "onStart")))
    return apk, method


def test_method_ref_requires_attachment():
    method = Method("orphan", ["this"])
    with pytest.raises(ValueError):
        method.ref


def test_resolve_and_missing():
    apk, method = make_apk()
    assert apk.resolve(MethodRef("Main", "onStart")) is method
    with pytest.raises(KeyError):
        apk.resolve(MethodRef("Main", "missing"))
    with pytest.raises(KeyError):
        apk.resolve(MethodRef("Ghost", "onStart"))


def test_main_component_selection():
    apk = ApkFile("com.test")
    apk.add_class(AppClass("A"))
    first = apk.add_component(Component("first", "A"))
    assert apk.main() is first  # first registered becomes default
    explicit = apk.add_component(Component("second", "A"), main=True)
    assert apk.main() is explicit


def test_main_missing_raises():
    with pytest.raises(ValueError):
        ApkFile("com.empty").main()


def test_component_kind_validation():
    with pytest.raises(ValueError):
        Component("x", "C", kind="widget")


def test_screen_event_lookup():
    apk, _ = make_apk()
    screen = apk.screen("home")
    assert screen.event_names() == ["tap"]
    assert screen.event("tap").handler == MethodRef("Main", "onStart")
    with pytest.raises(KeyError):
        screen.event("swipe")


def test_instruction_count_and_all_methods():
    apk, method = make_apk()
    assert apk.instruction_count() == 0
    from repro.apk.ir import Const

    method.body.append(Const("x", 1))
    assert apk.instruction_count() == 1
    assert apk.all_methods() == [method]


def test_event_spec_defaults():
    event = EventSpec("tap", MethodRef("C", "m"))
    assert not event.takes_index
    assert not event.side_effect
    assert event.weight == 1.0
