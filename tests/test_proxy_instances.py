"""Tests for runtime signatures, template matching, and instances."""


from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri
from repro.proxy.instances import (
    RequestInstance,
    RuntimeSignature,
    SignatureMatcher,
    TemplateMatcher,
    ValueStore,
    build_runtime_signatures,
    is_per_user_tag,
)


def host_atom():
    return UnknownAtom("env:config:api_host")


def dep_atom(site="pred#0", path="body.items[].id"):
    return DepAtom(site, FieldPath.parse(path))


def make_signature(site="succ#0", uri_suffix="/detail", method="POST", fields=None):
    request = RequestTemplate(
        method=method,
        uri=ValueTemplate([host_atom(), ConstAtom(uri_suffix)]),
        fields=fields if fields is not None else {},
        body_kind="form" if fields else "empty",
    )
    return TransactionSignature(site, request, ResponseTemplate())


# -- TemplateMatcher ----------------------------------------------------------
def test_matcher_captures_wildcards():
    template = ValueTemplate([host_atom(), ConstAtom("/img?cid="), dep_atom()])
    matcher = TemplateMatcher(template)
    captures = matcher.match("https://img.wish.com/img?cid=09cf")
    assert captures is not None
    values = {type(atom).__name__: value for atom, value in captures}
    assert values["UnknownAtom"] == "https://img.wish.com"
    assert values["DepAtom"] == "09cf"


def test_matcher_rejects_non_matching_text():
    template = ValueTemplate([host_atom(), ConstAtom("/detail")])
    assert TemplateMatcher(template).match("https://a.com/other") is None


def test_matcher_with_alternation_groups():
    template = ValueTemplate(
        [
            AltAtom([ValueTemplate.const("30"), ValueTemplate.const("1")]),
        ]
    )
    matcher = TemplateMatcher(template)
    assert matcher.match("30") is not None
    assert matcher.match("2") is None


# -- SignatureMatcher ---------------------------------------------------------
def test_signature_matcher_prefers_specific():
    generic = RuntimeSignature(make_signature("generic#0", uri_suffix="/"))
    # generic URI: host wildcard + "/" — matches nearly everything
    generic.signature.request.uri = ValueTemplate([host_atom(), UnknownAtom("x")])
    generic = RuntimeSignature(generic.signature)
    specific = RuntimeSignature(make_signature("specific#0", uri_suffix="/product/get"))
    matcher = SignatureMatcher([generic, specific])
    request = Request("POST", Uri.parse("https://api.wish.com/product/get"))
    assert matcher.match(request).site == "specific#0"


def test_signature_matcher_respects_method():
    signature = RuntimeSignature(make_signature(method="POST"))
    matcher = SignatureMatcher([signature])
    get_request = Request("GET", Uri.parse("https://api.wish.com/detail"))
    assert matcher.match(get_request) is None


def test_build_runtime_signatures_wires_edges():
    pred = make_signature("pred#0", uri_suffix="/feed", method="GET")
    succ = make_signature(
        "succ#0",
        fields={FieldPath.parse("body.cid"): ValueTemplate([dep_atom()])},
    )
    edges = [
        DependencyEdge(
            "pred#0", FieldPath.parse("body.items[].id"), "succ#0",
            FieldPath.parse("body.cid"),
        )
    ]
    result = AnalysisResult("test", [pred, succ], edges)
    runtime = build_runtime_signatures(result)
    by_site = {s.site: s for s in runtime}
    assert by_site["pred#0"].is_predecessor
    assert by_site["succ#0"].is_successor
    assert not by_site["pred#0"].is_successor


# -- ValueStore ---------------------------------------------------------------
def test_per_user_tags():
    assert is_per_user_tag("env:cookie")
    assert is_per_user_tag("env:userAgent")
    assert not is_per_user_tag("env:config:api_host")


def test_store_user_isolation():
    store = ValueStore()
    store.learn_tag("u1", "env:cookie", "bsid=1")
    assert store.tag_value("u1", "env:cookie") == "bsid=1"
    assert store.tag_value("u2", "env:cookie") is None


def test_store_global_tags_shared():
    store = ValueStore()
    store.learn_tag("u1", "env:config:api_host", "https://a.com")
    assert store.tag_value("u2", "env:config:api_host") == "https://a.com"


def test_store_version_bumps_only_on_change():
    store = ValueStore()
    v0 = store.version
    store.learn_tag("u1", "env:config:x", "1")
    v1 = store.version
    store.learn_tag("u1", "env:config:x", "1")  # unchanged
    assert v1 > v0
    assert store.version == v1
    store.learn_tag("u1", "env:config:x", "2")
    assert store.version > v1


def test_store_field_precedence_user_over_global():
    store = ValueStore()
    store.learn_field("u1", "s#0", "body.k", "global", per_user=False)
    store.learn_field("u1", "s#0", "body.k", "mine", per_user=True)
    assert store.field_value("u1", "s#0", "body.k") == "mine"
    assert store.field_value("u2", "s#0", "body.k") == "global"


def test_global_snapshot_drops_user_values():
    store = ValueStore()
    store.learn_tag("u1", "env:cookie", "bsid=1")
    store.learn_tag("u1", "env:config:host", "https://a.com")
    snapshot = store.global_snapshot()
    assert snapshot.tag_value("u1", "env:cookie") is None
    assert snapshot.tag_value("anyone", "env:config:host") == "https://a.com"


# -- RequestInstance ----------------------------------------------------------
def successor_signature():
    fields = {
        FieldPath.parse("header.Cookie"): ValueTemplate([UnknownAtom("env:cookie")]),
        FieldPath.parse("body.cid"): ValueTemplate([dep_atom()]),
        FieldPath.parse("body.v"): ValueTemplate.const("7"),
    }
    return RuntimeSignature(make_signature(fields=fields))


def test_instance_incomplete_without_values():
    instance = RequestInstance(successor_signature(), "u1")
    assert instance.build(ValueStore()) is None


def test_instance_builds_once_values_known():
    signature = successor_signature()
    instance = RequestInstance(signature, "u1")
    instance.fill(FieldPath.parse("body.cid"), "09cf")
    store = ValueStore()
    store.learn_tag("u1", "env:config:api_host", "https://api.wish.com")
    store.learn_tag("u1", "env:cookie", "bsid=9")
    request = instance.build(store)
    assert request is not None
    assert request.uri.to_string() == "https://api.wish.com/detail"
    assert request.headers.get("Cookie") == "bsid=9"
    assert request.body.get("cid") == "09cf"
    assert request.body.get("v") == "7"


def test_instance_uses_other_users_globals_but_not_cookies():
    signature = successor_signature()
    instance = RequestInstance(signature, "u2")
    instance.fill(FieldPath.parse("body.cid"), "x")
    store = ValueStore()
    store.learn_tag("u1", "env:config:api_host", "https://api.wish.com")
    store.learn_tag("u1", "env:cookie", "bsid=other-user")
    assert instance.build(store) is None  # u2's cookie unknown


def test_try_build_skips_until_new_knowledge():
    signature = successor_signature()
    instance = RequestInstance(signature, "u1")
    instance.fill(FieldPath.parse("body.cid"), "x")
    store = ValueStore()
    assert instance.try_build(store) is None
    # no new knowledge: returns None fast (cached failure)
    assert instance.try_build(store) is None
    store.learn_tag("u1", "env:config:api_host", "https://a.com")
    store.learn_tag("u1", "env:cookie", "bsid=1")
    assert instance.try_build(store) is not None


def test_variant_adaptation_prefers_observed():
    fields = {
        FieldPath.parse("body.a"): ValueTemplate.const("1"),
        FieldPath.parse("body.b"): ValueTemplate.const("2"),
    }
    request = RequestTemplate(
        method="POST",
        uri=ValueTemplate([ConstAtom("https://a.com/x")]),
        fields=fields,
        body_kind="form",
    )
    signature = TransactionSignature(
        "s#0",
        request,
        ResponseTemplate(),
        variants=[frozenset({"body.a", "body.b"}), frozenset({"body.a"})],
    )
    runtime = RuntimeSignature(signature)
    instance = RequestInstance(runtime, "u1")
    store = ValueStore()
    # default: largest resolvable variant
    built = instance.build(store)
    assert built.body.get("b") == "2"
    # observed condition says the app sends only `a`
    built = instance.build(store, preferred_variant=frozenset({"body.a"}))
    assert built.body.get("b") is None


def test_dedupe_key_reflects_bindings():
    signature = successor_signature()
    a = RequestInstance(signature, "u1")
    a.fill(FieldPath.parse("body.cid"), "1")
    b = RequestInstance(signature, "u1")
    b.fill(FieldPath.parse("body.cid"), "1")
    c = RequestInstance(signature, "u1")
    c.fill(FieldPath.parse("body.cid"), "2")
    assert a.dedupe_key() == b.dedupe_key()
    assert a.dedupe_key() != c.dedupe_key()


# -- SignatureBuildPlan (copy-on-write instantiation) -------------------------
def test_build_plan_shared_across_replicas():
    signature = successor_signature()
    instances = [RequestInstance(signature, "u1") for _ in range(5)]
    plans = {id(i.signature.build_plan) for i in instances}
    assert len(plans) == 1  # one plan per signature, not per replica
    assert signature.build_plan is signature.build_plan


def test_plan_build_matches_naive_oracle_complete():
    from repro.httpmsg.wire import serialize_request

    signature = successor_signature()
    store = ValueStore()
    store.learn_tag("u1", "env:config:api_host", "https://api.wish.com")
    store.learn_tag("u1", "env:cookie", "bsid=9")
    for cid in ("09cf", "a1", "zz"):
        instance = RequestInstance(signature, "u1")
        instance.fill(FieldPath.parse("body.cid"), cid)
        planned = instance.build(store)
        naive = instance.build(store, use_plan=False)
        assert planned is not None and naive is not None
        assert serialize_request(planned) == serialize_request(naive)


def test_plan_build_matches_naive_oracle_incomplete():
    signature = successor_signature()
    instance = RequestInstance(signature, "u1")
    instance.fill(FieldPath.parse("body.cid"), "x")
    store = ValueStore()  # host + cookie unknown: both paths must fail
    assert instance.build(store) is None
    assert instance.build(store, use_plan=False) is None


def test_plan_memo_tracks_store_version():
    signature = successor_signature()
    instance = RequestInstance(signature, "u1")
    instance.fill(FieldPath.parse("body.cid"), "x")
    store = ValueStore()
    store.learn_tag("u1", "env:config:api_host", "https://a.com")
    store.learn_tag("u1", "env:cookie", "bsid=1")
    assert instance.build(store).headers.get("Cookie") == "bsid=1"
    # a re-learned value must not be served from a stale memo
    store.learn_tag("u1", "env:cookie", "bsid=2")
    assert instance.build(store).headers.get("Cookie") == "bsid=2"


def test_plan_variant_choice_matches_naive():
    from repro.httpmsg.wire import serialize_request

    fields = {
        FieldPath.parse("body.a"): ValueTemplate.const("1"),
        FieldPath.parse("body.b"): ValueTemplate.const("2"),
    }
    request = RequestTemplate(
        method="POST",
        uri=ValueTemplate([ConstAtom("https://a.com/x")]),
        fields=fields,
        body_kind="form",
    )
    signature = TransactionSignature(
        "s#0",
        request,
        ResponseTemplate(),
        variants=[frozenset({"body.a", "body.b"}), frozenset({"body.a"})],
    )
    runtime = RuntimeSignature(signature)
    store = ValueStore()
    for preferred in (None, frozenset({"body.a"})):
        instance = RequestInstance(runtime, "u1")
        planned = instance.build(store, preferred_variant=preferred)
        naive = instance.build(store, preferred_variant=preferred, use_plan=False)
        assert serialize_request(planned) == serialize_request(naive)
