"""Integration tests over the experiment harness.

These assert the *shapes* the paper reports — who wins, roughly by how
much, and where the knobs move results — on reduced workloads so the
suite stays fast.
"""

import pytest

from repro.experiments import runner
from repro.experiments.scenario import Scenario, prepare_app, scoped_config


@pytest.fixture(scope="module")
def wish():
    return prepare_app("wish")


# -- scenario plumbing --------------------------------------------------------
def test_prepare_app_cached(wish):
    assert prepare_app("wish") is wish


def test_scoped_config_limits_targets(wish):
    config = scoped_config(wish.analysis, ["DetailActivity"])
    for signature in wish.analysis.signatures:
        policy = config.policy(signature.site)
        if signature.site.startswith("DetailActivity"):
            assert policy.prefetch or signature.side_effect is False or True
        else:
            assert not policy.prefetch


def test_scenario_per_user_runtimes(wish):
    scenario = Scenario(wish, proxied=True)
    a = scenario.runtime("u1")
    b = scenario.runtime("u2")
    assert a is not b
    assert scenario.runtime("u1") is a


def test_verification_seeds_scenario_learner(wish):
    scenario = Scenario(wish, proxied=True)
    host = scenario.proxy.learner.store.tag_value("anyone", "env:config:api_host")
    assert host == "https://api.wish.com"


# -- table/figure runners ------------------------------------------------------
def test_table1_rows():
    rows = runner.table1_rows()
    assert len(rows) == 5
    assert rows[0] == {
        "app": "Wish",
        "category": "Shopping",
        "main_interaction": "Loads an item detail",
    }


def test_table2_rows_match_paper_rtts():
    rows = runner.table2_rows()
    by_app = {}
    for row in rows:
        by_app.setdefault(row["app"], []).append(row["rtt_ms"])
    assert by_app["Wish"] == [165, 16]
    assert by_app["DoorDash"] == [145, 145]
    assert by_app["Purple Ocean"] == [230, 15, 15]
    assert by_app["Postmates"] == [5]


def test_fig11_chain_is_successive():
    chain = runner.fig11_doordash_chain()
    assert len(chain) >= 4
    assert chain[0].startswith("StoreListActivity")


def test_fig12_fanout_from_single_predecessor():
    fanout = runner.fig12_wish_fanout()
    assert max(fanout.values()) >= 3


def test_fig13_shape():
    rows = runner.fig13_main_interaction(runs=3)
    assert len(rows) == 5
    for row in rows:
        # APPx must win on every app, within the paper's broad band
        assert row["appx"]["latency"] < row["orig"]["latency"]
        assert 0.10 <= row["reduction"] <= 0.75
        # the win comes from network delay, not processing
        assert row["appx"]["network"] < row["orig"]["network"]
        assert row["appx"]["processing"] == pytest.approx(
            row["orig"]["processing"]
        )


def test_fig14_launch_improves_less_than_main():
    launch_rows = {r["app"]: r for r in runner.fig14_app_launch(runs=3)}
    main_rows = {r["app"]: r for r in runner.fig13_main_interaction(runs=3)}
    for app, launch in launch_rows.items():
        assert launch["reduction"] >= -0.01  # never a slowdown
        assert launch["reduction"] < main_rows[app]["reduction"]


def test_fig15_reduction_grows_with_rtt():
    rows = runner.fig15_percentile_sweep(
        rtts=(0.05, 0.15), participants=4
    )
    by_app = {}
    for row in rows:
        by_app.setdefault(row["app"], {})[row["rtt_ms"]] = row
    for app, result in by_app.items():
        assert result[150]["reduction"] >= result[50]["reduction"] - 0.02
        assert result[50]["appx_p90"] <= result[50]["orig_p90"]


def test_fig16_usage_and_cdf():
    rows = runner.fig16_cdf_and_usage(rtts=(0.05,), participants=4)
    for row in rows:
        assert row["appx_median"] <= row["orig_median"]
        assert row["normalized_data_usage"] >= 1.0  # prefetch costs data
        assert row["normalized_data_usage"] < 20.0
        assert row["orig_cdf"][-1][1] == 1.0


def test_fig17_monotone_tradeoff():
    rows = runner.fig17_probability_tradeoff(
        probabilities=(0.0, 0.5, 1.0), participants=4
    )
    latencies = [row["median_latency"] for row in rows]
    usages = [row["normalized_data_usage"] for row in rows]
    # latency falls (weakly) while data usage rises with probability
    assert latencies[0] >= latencies[-1]
    assert usages == sorted(usages)
    assert usages[0] == pytest.approx(1.0, rel=0.05)


def test_table3_appx_dominates():
    rows = runner.table3_rows(fuzz_duration=120, trace_participants=3)
    for row in rows:
        for key in ("signatures", "prefetchable", "dependencies"):
            assert row["appx"][key] >= row["fuzzing"][key]
            assert row["appx"][key] >= row["user_study"][key]
        assert row["appx"]["max_chain"] >= row["fuzzing"]["max_chain"]
        # background-service signatures are invisible to fuzzing
        assert row["appx"]["signatures"] > row["fuzzing"]["signatures"]
