"""Tests for request-lifecycle tracing and the labeled metric registry."""

import json

import pytest

from repro.analysis import analyze_apk
from repro.apps import get_app
from repro.device.runtime import AppRuntime
from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.metrics.perf import PerfCounters
from repro.metrics.registry import (
    Histogram,
    MetricRegistry,
    parse_series_key,
    series_key,
)
from repro.metrics.trace import (
    LOOKUP_OUTCOMES,
    TRACER,
    TraceContext,
    Tracer,
    aggregate_records,
    read_jsonl,
    registry_from_records,
    validate_record,
)
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import Endpoint, OriginMap
from repro.proxy import AccelerationProxy
from repro.proxy.cache import PrefetchCache
from repro.proxy.multiapp import MultiAppProxy, MultiAppTransport
from repro.server.content import Catalog


# ======================================================================
# registry
# ======================================================================
def test_series_key_round_trip():
    key = series_key("span_wall_seconds", {"stage": "match", "app": "wish"})
    assert key == 'span_wall_seconds{app="wish",stage="match"}'
    name, labels = parse_series_key(key)
    assert name == "span_wall_seconds"
    assert labels == {"app": "wish", "stage": "match"}
    assert parse_series_key("plain") == ("plain", {})


def test_histogram_percentiles_bracket_samples():
    histogram = Histogram()
    for value in (0.001, 0.002, 0.004, 0.008, 0.100):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(0.115)
    p50 = histogram.percentile(50)
    # the median sample is 0.004; the estimate lands inside its bucket
    assert 0.002 <= p50 <= 0.008
    assert histogram.percentile(99) >= 0.05
    assert histogram.mean == pytest.approx(0.023)


def test_histogram_merge_requires_same_buckets():
    left = Histogram()
    right = Histogram()
    left.observe(0.5)
    right.observe(0.25)
    left.merge(right.snapshot())
    assert left.count == 2
    assert left.sum == pytest.approx(0.75)
    with pytest.raises(ValueError):
        left.merge(Histogram(bounds=(1.0, 2.0)).snapshot())


def test_registry_cardinality_guard_folds_overflow():
    registry = MetricRegistry(max_series_per_metric=3)
    for index in range(10):
        registry.inc("hits", labels={"user": "u{}".format(index)})
    labeled = [k for k in registry.counters if k.startswith("hits{")]
    assert len(labeled) == 4  # 3 real series + the overflow fold
    assert registry.counters['hits{overflow="true"}'] == 7
    assert registry.overflow_series == 7


def test_registry_prometheus_exposition():
    registry = MetricRegistry()
    registry.inc("requests", 3, labels={"app": "wish"})
    registry.set_gauge("active", 2)
    registry.observe("span_wall_seconds", 0.004, labels={"stage": "match"})
    text = registry.render_prometheus()
    assert '# TYPE repro_requests_total counter' in text
    assert 'repro_requests_total{app="wish"} 3' in text
    assert "repro_active 2" in text
    assert "# TYPE repro_span_wall_seconds histogram" in text
    assert 'le="+Inf"' in text
    assert 'repro_span_wall_seconds_count{stage="match"} 1' in text


def test_registry_merge_histograms_creates_missing_series():
    source = MetricRegistry()
    source.observe("lat", 0.002, labels={"stage": "learn"})
    sink = MetricRegistry()
    sink.merge_histograms(source.snapshot_histograms())
    sink.merge_histograms(source.snapshot_histograms())
    merged = sink.histogram("lat", {"stage": "learn"})
    assert merged is not None and merged.count == 2


# ======================================================================
# PERF facade
# ======================================================================
def test_perf_facade_aliases_registry_stores():
    perf = PerfCounters()
    perf.enabled = True
    perf.incr("x")
    assert perf.registry.counters["x"] == 1
    assert perf.counters is perf.registry.counters
    assert perf.timings is perf.registry.timings
    perf.reset()
    # reset clears in place, the aliases stay live
    assert perf.counters is perf.registry.counters
    assert perf.counters == {}


def test_perf_merge_folds_timings_and_histograms():
    worker = PerfCounters()
    worker.enabled = True
    worker.incr("cells", 2)
    worker.incr("rss_peak", 100)
    with worker.stage("pass"):
        pass
    snapshot = worker.snapshot()
    assert "timings_s" in snapshot and "pass" in snapshot["timings_s"]

    parent = PerfCounters()
    parent.enabled = True
    parent.incr("rss_peak", 250)
    parent.merge(snapshot)
    parent.merge(snapshot)
    assert parent.counters["cells"] == 4
    assert parent.counters["rss_peak"] == 250  # *_peak max-merges
    # worker stage timings fold into the parent instead of vanishing
    assert parent.timings["pass"] == pytest.approx(
        2 * snapshot["timings_s"]["pass"]
    )
    merged = parent.registry.histogram("stage_seconds", {"stage": "pass"})
    assert merged is not None and merged.count == 2


def test_perf_merge_accepts_legacy_plain_counter_dict():
    parent = PerfCounters()
    parent.enabled = True
    parent.merge({"cells": 3, "rss_peak": 9})
    parent.merge({"cells": 1, "rss_peak": 4})
    assert parent.counters["cells"] == 4
    assert parent.counters["rss_peak"] == 9


# ======================================================================
# tracer
# ======================================================================
def test_tracer_disabled_begin_returns_none():
    tracer = Tracer()
    assert tracer.begin("alice") is None
    assert tracer.stats()["started"] == 0


def test_tracer_sampling_is_deterministic_under_fixed_seed():
    def sampled_set(seed):
        tracer = Tracer().configure(sample_rate=0.5, seed=seed)
        tracer.enable()
        picked = []
        for index in range(200):
            context = tracer.begin("u{}".format(index))
            if context is not None:
                picked.append(index)
                tracer.finish(context)
        return picked

    first = sampled_set(seed=42)
    second = sampled_set(seed=42)
    assert first == second
    assert 0 < len(first) < 200
    assert sampled_set(seed=7) != first


def test_tracer_ring_buffer_drops_oldest():
    tracer = Tracer().configure(capacity=3)
    tracer.enable()
    for index in range(5):
        context = tracer.begin("u")
        context.tag("index", index)
        tracer.finish(context)
    records = tracer.records()
    assert len(records) == 3
    assert [r["tags"]["index"] for r in records] == [2, 3, 4]
    assert tracer.stats()["dropped"] == 2


def test_tracer_feeds_registry_span_histograms():
    registry = MetricRegistry()
    tracer = Tracer().configure(registry=registry)
    tracer.enable()
    context = tracer.begin("alice")
    span = context.start_span("cache_lookup")
    context.end_span(span, outcome="miss_absent", shard="alice")
    tracer.finish(context)
    histogram = registry.histogram("span_wall_seconds", {"stage": "cache_lookup"})
    assert histogram is not None and histogram.count == 1
    assert registry.counters[
        'span_outcomes{outcome="miss_absent",stage="cache_lookup"}'
    ] == 1


def test_trace_context_records_sim_time():
    clock = [10.0]
    context = TraceContext("t1", "alice", sim_clock=lambda: clock[0])
    span = context.start_span("origin_fetch")
    clock[0] = 10.25
    context.end_span(span, bytes=512)
    record = context.to_record()
    assert record["spans"][0]["sim_ms"] == pytest.approx(250.0)
    assert record["spans"][0]["tags"]["bytes"] == 512


def test_export_jsonl_round_trips_through_validation(tmp_path):
    tracer = Tracer().configure()
    tracer.enable()
    context = tracer.begin("alice", app="wish")
    with context.span("match"):
        pass
    span = context.start_span("cache_lookup")
    context.end_span(span, outcome="hit", signature="s#0", shard="alice")
    tracer.finish(context)
    path = str(tmp_path / "trace.jsonl")
    assert tracer.export_jsonl(path) == 1
    records = read_jsonl(path, validate=True)
    assert records[0]["app"] == "wish"
    assert [s["name"] for s in records[0]["spans"]] == ["match", "cache_lookup"]

    summary = aggregate_records(records)
    assert summary["records"] == 1
    assert summary["stages"]["cache_lookup"]["count"] == 1
    assert summary["by_signature"]["s#0"]["hits"] == 1

    rebuilt = registry_from_records(records)
    assert 'traces{kind="request"}' in rebuilt.counters


def test_validate_record_flags_schema_violations():
    assert validate_record("nope") == ["record is not an object"]
    bad = {
        "trace_id": "t1",
        "user": "alice",
        "kind": "request",
        "spans": [
            {"name": "warp", "wall_us": 1.0},
            {"name": "match", "wall_us": -2.0},
            {"name": "cache_lookup", "wall_us": 1.0, "tags": {"outcome": "??"}},
        ],
    }
    errors = validate_record(bad)
    assert any("spans[0].name" in e for e in errors)
    assert any("spans[1].wall_us" in e for e in errors)
    assert any("spans[2].tags.outcome" in e for e in errors)
    from repro.metrics.catalog import TRACE_KINDS

    assert validate_record({"trace_id": "t", "user": "u", "kind": "bogus",
                            "spans": []}) == [
        "kind: 'bogus' not in {}".format(TRACE_KINDS)
    ]


def test_read_jsonl_rejects_invalid_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"trace_id": "t", "user": "u",
                                "kind": "request", "spans": [{}]}) + "\n")
    with pytest.raises(ValueError):
        read_jsonl(str(path))
    path.write_text("{not json\n")
    with pytest.raises(ValueError):
        read_jsonl(str(path))


# ======================================================================
# cache lookup outcomes
# ======================================================================
def test_cache_lookup_reports_miss_cause():
    cache = PrefetchCache()
    request = Request("GET", Uri.parse("https://a.example/1"))
    entry, outcome = cache.lookup("u1", request, now=0.0)
    assert entry is None and outcome == "miss_absent"
    cache.put("u1", request, Response(200), "s#0", now=0.0, ttl=5.0)
    entry, outcome = cache.lookup("u1", request, now=1.0)
    assert entry is not None and outcome == "hit"
    entry, outcome = cache.lookup("u1", request, now=9.0)
    assert entry is None and outcome == "miss_expired"
    # get() keeps its historical entry-only shape
    assert cache.get("u1", request, now=9.0) is None


# ======================================================================
# propagation across the multi-app boundary
# ======================================================================
class PlainEndpoint(Endpoint):
    def handle(self, request, user):
        yield Delay(0.01)
        return Response(200, body=JsonBody({"plain": True}))


@pytest.fixture()
def env():
    sim = Simulator()
    shared_origins = OriginMap()
    proxies = {}
    apks = {}
    for name in ("wish", "doordash"):
        spec = get_app(name)
        app_origins, _ = spec.build_origin_map(sim, Catalog())
        for origin, endpoint in app_origins.origins().items():
            shared_origins.register(
                origin, endpoint, app_origins.link_for(
                    Request("GET", Uri.parse(origin + "/"))
                )
            )
        analysis = analyze_apk(spec.build_apk())
        proxies[name] = AccelerationProxy(sim, app_origins, analysis)
        apks[name] = spec
    shared_origins.register(
        "https://other.example", PlainEndpoint(), Link(rtt=0.08)
    )
    multi = MultiAppProxy(sim, shared_origins)
    for name, proxy in proxies.items():
        multi.register_app(name, proxy)
    return sim, multi, proxies, apks


def run_app(sim, multi, spec, user):
    runtime = AppRuntime(
        spec.build_apk(),
        MultiAppTransport(sim, Link(rtt=0.055, shared=True), multi),
        sim,
        spec.default_profile(user),
    )

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(6.0)
        result = yield sim.spawn(runtime.dispatch(*spec.main_flow[-1]))
        return result

    return sim.run_process(flow())


def test_trace_propagates_across_app_boundary(env):
    sim, multi, proxies, apks = env
    with TRACER.capture(sim_clock=lambda: sim.now):
        run_app(sim, multi, apks["wish"], "alice")
    records = TRACER.records()
    assert records, "tracing produced no records"
    for record in records:
        assert validate_record(record) == []
    requests = [r for r in records if r["kind"] == "request"]
    assert requests, "no request-kind records"
    # the boundary stamped the routed app; the inner proxy's stages
    # landed on the same trace the boundary began
    wish = [r for r in requests if r.get("app") == "wish"]
    assert wish, "no records attributed to the wish app"
    stages = {s["name"] for r in wish for s in r["spans"]}
    assert "match" in stages and "cache_lookup" in stages
    for record in wish:
        for span in record["spans"]:
            if span["name"] == "cache_lookup":
                assert span["tags"]["outcome"] in LOOKUP_OUTCOMES
                assert span["tags"]["shard"] == "alice"
    # the session warms the cache, so at least one lookup resolved hit
    outcomes = [
        s["tags"]["outcome"]
        for r in wish
        for s in r["spans"]
        if s["name"] == "cache_lookup"
    ]
    assert "hit" in outcomes
    # background prefetch traffic traces under its own kind
    assert any(r["kind"] == "prefetch" for r in records)


def test_trace_passthrough_records_the_reserved_app(env):
    sim, multi, _, _ = env
    request = Request("GET", Uri.parse("https://other.example/ping"))

    def flow():
        response = yield sim.spawn(multi.handle_request(request, "u1"))
        return response

    with TRACER.capture(sim_clock=lambda: sim.now):
        sim.run_process(flow())
    records = TRACER.records()
    assert len(records) == 1
    record = records[0]
    assert validate_record(record) == []
    assert record["app"] == "_passthrough"
    lookups = [s for s in record["spans"] if s["name"] == "cache_lookup"]
    assert lookups and lookups[0]["tags"]["outcome"] == "passthrough"
    assert any(s["name"] == "origin_fetch" for s in record["spans"])


def test_trace_spans_carry_virtual_time(env):
    sim, multi, proxies, apks = env
    with TRACER.capture(sim_clock=lambda: sim.now):
        run_app(sim, multi, apks["wish"], "alice")
    fetches = [
        span
        for record in TRACER.records()
        for span in record["spans"]
        if span["name"] == "origin_fetch"
    ]
    assert fetches
    # origin round trips take simulated RTTs, not wall time
    assert any(span.get("sim_ms", 0) > 1.0 for span in fetches)
