"""Tests for repro.httpmsg.wire (HTTP/1.1 round trips)."""

from repro.httpmsg.body import BlobBody, EmptyBody, FormBody, JsonBody, TextBody
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.httpmsg.wire import (
    parse_request,
    parse_response,
    serialize_request,
    serialize_response,
)


def round_trip_request(request):
    return parse_request(serialize_request(request), scheme=request.uri.scheme)


def test_get_request_round_trip():
    request = Request(
        "GET",
        Uri.parse("https://img.wish.com/img?cid=09cf"),
        Headers([("User-Agent", "UA")]),
    )
    assert round_trip_request(request) == request


def test_form_request_round_trip():
    request = Request(
        "POST",
        Uri.parse("https://api.wish.com/product/get"),
        Headers([("Cookie", "bsid=1")]),
        FormBody([("cid", "09cf"), ("_cap[]", "2"), ("_cap[]", "4")]),
    )
    assert round_trip_request(request) == request


def test_json_request_round_trip():
    request = Request(
        "POST",
        Uri.parse("https://a.com/x"),
        body=JsonBody({"k": [1, 2], "n": None}),
    )
    assert round_trip_request(request) == request


def test_request_with_port_round_trip():
    uri = Uri.parse("https://a.com:8443/x")
    request = Request("GET", uri)
    parsed = round_trip_request(request)
    assert parsed.uri.port == 8443


def test_response_round_trips():
    for body in (
        JsonBody({"data": {"id": "x"}}),
        FormBody([("a", "1")]),
        TextBody("hello"),
        BlobBody("img wish-1", 315_000),
        EmptyBody(),
    ):
        response = Response(200, Headers([("Set-Cookie", "bsid=2")]), body)
        assert parse_response(serialize_response(response)) == response


def test_blob_round_trip_preserves_size_not_content():
    response = Response(200, body=BlobBody("thumb-a", 42_000, "image/png"))
    parsed = parse_response(serialize_response(response))
    assert parsed.body.size == 42_000
    assert parsed.body.label == "thumb-a"
    assert parsed.body.media_type == "image/png"


def test_error_response_reason_phrases():
    for status in (200, 404, 500, 504, 599):
        response = Response(status)
        text = serialize_response(response)
        assert text.startswith("HTTP/1.1 {} ".format(status))
        assert parse_response(text).status == status


def test_serialized_request_contains_host_header():
    request = Request("GET", Uri.parse("https://api.wish.com/x"))
    assert "Host: api.wish.com" in serialize_request(request)


def test_content_length_matches_body():
    request = Request(
        "POST", Uri.parse("https://a.com/x"), body=FormBody([("k", "v")])
    )
    text = serialize_request(request)
    assert "Content-Length: {}".format(len("k=v")) in text
