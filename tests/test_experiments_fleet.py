"""Tests for the multi-process sharded proxy fleet.

Three layers: the sharding primitives (hash ring, schedule partition),
the differential oracle (``run_fleet(workers=1)`` must be
byte-equivalent to ``run_scale`` under the same seed — same arrivals,
same counters, same fold-back), and the supervisor's failure surface
(crashed / raising / hung workers raise :class:`FleetWorkerError`
naming the lost shard instead of deadlocking).
"""

import pytest

from repro.experiments.fleet import (
    ConsistentHashRing,
    FleetWorkerError,
    HeartbeatTracker,
    format_fleet_table,
    partition_schedule,
    run_fleet,
    shard_seed,
    shard_users,
)
from repro.experiments.scale import build_arrival_schedule, run_scale

#: row keys that must be identical between the serial harness and the
#: one-worker fleet (everything deterministic; wall-clock keys excluded)
DETERMINISTIC_KEYS = (
    "requests",
    "requests_sent",
    "sim_events",
    "hit_rate",
    "served_prefetched",
    "forwarded",
    "prefetch_issued",
    "peak_cache_entries",
    "final_cache_entries",
    "cache_stored",
    "cache_expired_evictions",
    "cache_lru_evictions",
    "cache_wheel_purged",
    "prefetch_wasted",
    "skipped_admission",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "prefetch_by_signature",
    "miss_causes",
    "expiration",
    "history",
)


# ----------------------------------------------------------------------
# consistent-hash sharding
# ----------------------------------------------------------------------
def test_ring_deterministic_across_instances():
    first = ConsistentHashRing(4)
    second = ConsistentHashRing(4)
    keys = ["u{}".format(index) for index in range(200)]
    assert [first.shard_for(k) for k in keys] == [second.shard_for(k) for k in keys]


def test_ring_covers_all_shards_roughly_evenly():
    assignment = shard_users(2000, 4)
    counts = [assignment.count(shard) for shard in range(4)]
    assert all(count > 0 for count in counts)
    # virtual nodes keep the largest shard within ~2x of the mean
    assert max(counts) < 2 * (2000 / 4)


def test_ring_minimal_remap_on_grow():
    before = shard_users(1000, 4)
    after = shard_users(1000, 5)
    moved = sum(1 for a, b in zip(before, after) if a != b)
    # consistent hashing moves ~1/5 of the keys; a modulo hash would
    # move ~4/5.  Allow generous slack over the ideal 200.
    assert moved < 450


def test_ring_rejects_bad_sizes():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, replicas=0)


def test_shard_seed_distinct_and_stable():
    seeds = {shard_seed(7, shard) for shard in range(8)}
    assert len(seeds) == 8
    assert shard_seed(7, 3) == shard_seed(7, 3)


# ----------------------------------------------------------------------
# schedule partitioning
# ----------------------------------------------------------------------
def _tiny_schedule(users=12, duration=5.0):
    user_app = ["wish" if i % 2 == 0 else "doordash" for i in range(users)]
    return build_arrival_schedule(
        users, duration, 0.5, seed=3, step_counts={"wish": 9, "doordash": 9},
        user_app=user_app,
    )


def test_partition_identity_for_one_shard():
    schedule = _tiny_schedule()
    [part] = partition_schedule(schedule, [0] * schedule.users, 1)
    assert part.events == schedule.events
    assert part.terminal_dt == schedule.terminal_dt


def test_partition_preserves_global_arrival_instants():
    schedule = _tiny_schedule()
    assignment = shard_users(schedule.users, 3)
    parts = partition_schedule(schedule, assignment, 3)
    assert sum(len(p.events) for p in parts) == len(schedule.events)

    # replaying each shard's deltas must reproduce the exact global
    # arrival instant of every event it owns (same left-fold order)
    global_instants = {}
    now = 0.0
    for index, (dt, user, _) in enumerate(schedule.events):
        now = now + dt
        global_instants[index] = (now, user)
    remaining = sorted(global_instants.values())
    reproduced = []
    for part in parts:
        now = 0.0
        for dt, user, _ in part.events:
            now = now + dt
            reproduced.append((now, user))
    reproduced.sort()
    # cross-shard delta accumulation reassociates float additions, so
    # instants match to rounding (the workers=1 identity case is exact)
    for (got_t, got_u), (want_t, want_u) in zip(reproduced, remaining):
        assert got_u == want_u
        assert got_t == pytest.approx(want_t, rel=1e-12)
    # every shard's horizon ends at the same instant as the global one
    for part in parts:
        horizon = sum(dt for dt, _, _ in part.events) + part.terminal_dt
        assert horizon == pytest.approx(
            sum(dt for dt, _, _ in schedule.events) + schedule.terminal_dt
        )


# ----------------------------------------------------------------------
# differential oracle: one-worker fleet == serial harness
# ----------------------------------------------------------------------
def test_fleet_one_worker_matches_serial():
    kwargs = dict(users=24, duration=6.0, seed=11, max_entries_per_user=16)
    serial = run_scale(**kwargs)
    fleet = run_fleet(workers=1, **kwargs)
    for key in DETERMINISTIC_KEYS:
        assert fleet[key] == serial[key], key
    assert fleet["workers"] == 1
    assert fleet["fleet"]["shard_users"] == [24]
    assert len(fleet["shards"]) == 1


def test_fleet_two_workers_reproducible_and_preserves_arrivals():
    kwargs = dict(users=24, duration=6.0, seed=11, max_entries_per_user=16)
    serial = run_scale(**kwargs)
    first = run_fleet(workers=2, worker_timeout=120.0, **kwargs)
    second = run_fleet(workers=2, worker_timeout=120.0, **kwargs)
    # the partitioned schedule preserves the global arrival process
    assert first["requests_sent"] == serial["requests_sent"]
    assert first["requests"] == serial["requests"]
    # and the fleet is deterministic run to run
    for key in DETERMINISTIC_KEYS:
        assert first[key] == second[key], key
    assert first["fleet"]["shard_users"] == [len(m) for m in (
        [u for u in range(24) if shard_users(24, 2)[u] == 0],
        [u for u in range(24) if shard_users(24, 2)[u] == 1],
    )]
    assert sum(first["fleet"]["shard_requests"]) == first["requests"]
    # folded metrics arrive as one aggregate: per-stage latency table
    # and miss causes exist just like the serial row's
    assert set(first["miss_causes"]) == set(serial["miss_causes"])
    assert first["stage_latency_us"]


def test_fleet_validates_arguments():
    with pytest.raises(ValueError):
        run_fleet(10, 1.0, workers=0)
    with pytest.raises(ValueError):
        run_fleet(2, 1.0, workers=4)


# ----------------------------------------------------------------------
# robustness: crashed / raising / hung workers
# ----------------------------------------------------------------------
def test_fleet_surfaces_worker_exception():
    with pytest.raises(FleetWorkerError) as excinfo:
        run_fleet(
            12, 1.0, workers=2, seed=3, worker_timeout=30.0,
            inject_failure={"shard": 1, "mode": "raise"},
        )
    assert excinfo.value.shards == (1,)
    assert "shard 1" in str(excinfo.value)
    assert "users" in str(excinfo.value)  # names the lost user slice
    assert "injected failure" in str(excinfo.value)  # worker traceback


def test_fleet_surfaces_worker_crash():
    with pytest.raises(FleetWorkerError) as excinfo:
        run_fleet(
            12, 1.0, workers=2, seed=3, worker_timeout=30.0,
            inject_failure={"shard": 0, "mode": "crash"},
        )
    assert excinfo.value.shards == (0,)
    assert "exitcode" in str(excinfo.value)


def test_fleet_surfaces_hung_worker_without_deadlock():
    with pytest.raises(FleetWorkerError) as excinfo:
        run_fleet(
            12, 1.0, workers=2, seed=3, worker_timeout=5.0,
            inject_failure={"shard": 1, "mode": "hang"},
        )
    assert excinfo.value.shards == (1,)
    assert "hung" in str(excinfo.value)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def test_format_fleet_table():
    rows = [
        run_fleet(users=24, duration=4.0, seed=5, workers=1),
    ]
    table = format_fleet_table(rows)
    assert "workers" in table and "req/wall_s" in table
    assert "1.00x" in table
    assert format_fleet_table([]) == "(no fleet rows)"


def test_cli_scale_workers(capsys, tmp_path):
    from repro.cli import main

    out_path = tmp_path / "fleet.json"
    code = main([
        "scale", "--users", "24", "--duration", "4", "--workers", "2",
        "--seed", "5", "--output", str(out_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "fleet: 2 workers" in captured.out
    assert out_path.exists()


def test_cli_scale_rejects_bad_worker_combos(capsys):
    from repro.cli import main

    assert main(["scale", "--users", "10", "--workers", "0"]) == 2
    assert main(["scale", "--users", "10", "--workers", "2",
                 "--compare-strategies"]) == 2
    assert main(["scale", "--users", "2", "--workers", "4"]) == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# live telemetry plane: heartbeats + supervisor fold-back
# ----------------------------------------------------------------------
def test_heartbeat_tracker_flags_skew_and_lagging_shards():
    tracker = HeartbeatTracker(workers=2, interval_s=0.5)
    tracker.record(0, {"sim_now": 0.5, "requests": 10, "queue_depth": 0})
    tracker.record(0, {"sim_now": 1.0, "requests": 21, "queue_depth": 0})
    # shard 1 has never heartbeated while the leader moved well past
    # the lag threshold (2 intervals): silent from the start
    tracker.record(0, {"sim_now": 2.0, "requests": 40, "queue_depth": 1})
    assert tracker.lagging == {1}
    tracker.record(1, {"sim_now": 0.5, "requests": 9, "queue_depth": 0})
    summary = tracker.summary()
    assert summary["received"] == 4
    assert summary["max_skew_s"] == pytest.approx(1.5)
    assert summary["lagging_shards"] == [1]
    assert summary["per_shard"][0]["count"] == 3
    assert summary["per_shard"][1]["requests"] == 9


def test_heartbeat_tracker_no_lag_when_shards_keep_pace():
    tracker = HeartbeatTracker(workers=2, interval_s=0.5)
    for tick in (0.5, 1.0, 1.5):
        tracker.record(0, {"sim_now": tick})
        tracker.record(1, {"sim_now": tick})
    summary = tracker.summary()
    assert summary["lagging_shards"] == []
    # shards report in turn, so the observed spread never exceeds the
    # heartbeat interval itself
    assert summary["max_skew_s"] <= 0.5


def test_fleet_heartbeats_fold_back_mid_run():
    seen = []

    def log(shard, payload, tracker):
        seen.append((shard, payload["sim_now"], payload["requests"]))

    row = run_fleet(
        24, 4.0, workers=2, seed=11, max_entries_per_user=16,
        worker_timeout=120.0, heartbeat_interval=1.0, heartbeat_log=log,
    )
    # every shard shipped windowed snapshots while serving
    assert {shard for shard, _, _ in seen} == {0, 1}
    hb = row["heartbeats"]
    assert hb["received"] == len(seen) == row["live"]["heartbeats_sent"]
    assert hb["lagging_shards"] == []
    assert all(entry["count"] >= 1 for entry in hb["per_shard"])
    # the merged windows cover the whole fleet: the windowed request
    # count at end of run equals the aggregate completed-request count
    assert row["live"]["readings"]["requests"] == row["requests"]
    assert row["live"]["ticks"] > 0


def test_fleet_one_worker_telemetry_matches_multiworker_merge():
    kwargs = dict(users=24, duration=4.0, seed=11, max_entries_per_user=16)
    one = run_fleet(workers=1, telemetry=True, **kwargs)
    two = run_fleet(
        workers=2, telemetry=True, worker_timeout=120.0, **kwargs
    )
    # sharding changes where a user is served, never when: the merged
    # rolling windows must agree with the single-process plane
    for key in ("requests", "hit_rate", "overflow", "wasted"):
        assert two["live"]["readings"][key] == one["live"]["readings"][key]


def test_telemetry_plane_does_not_perturb_the_workload():
    kwargs = dict(users=24, duration=4.0, seed=11, max_entries_per_user=16)
    plain = run_scale(**kwargs)
    live = run_scale(telemetry=True, **kwargs)
    # sim_events differs (the telemetry tick process adds events); every
    # workload outcome must be byte-identical
    for key in DETERMINISTIC_KEYS:
        if key == "sim_events":
            continue
        assert live[key] == plain[key], key
    assert live["live"] is not None and plain.get("live") is None
