"""Property tests for registry snapshot/merge — the fleet fold-back core.

The sharded proxy fleet folds every worker's
:meth:`~repro.metrics.registry.MetricRegistry.snapshot` into one
aggregate with :meth:`~repro.metrics.registry.MetricRegistry.merge`.
Fold-back order is whatever order workers happen to finish in, so
merge must be commutative and associative; mismatched histogram bucket
layouts must fail loudly (silently misaligned buckets would corrupt
every percentile downstream); and overflow series must survive the
fold without re-entering the cardinality guard as fresh labels.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.registry import DEFAULT_BUCKETS, MetricRegistry, series_key

# ----------------------------------------------------------------------
# hypothesis strategies: a registry "workload" is a list of operations
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(["requests", "cache.hits", "queue_depth_peak"])
_LABELS = st.one_of(
    st.none(), st.fixed_dictionaries({"app": st.sampled_from(["wish", "doordash"])})
)
# dyadic values: sums of up to ~100 of these are exactly representable,
# so merge-order float associativity holds bit-for-bit (the merge is
# plain addition — the property under test is the fold structure, not
# IEEE-754 rounding)
_DYADIC = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), _NAMES, st.integers(1, 100), _LABELS),
        st.tuples(st.just("gauge"), st.just("depth"), st.floats(0, 1e6), _LABELS),
        st.tuples(st.just("observe"), st.just("stage_seconds"), _DYADIC, _LABELS),
        st.tuples(st.just("timing"), st.just("proxy.learn"), _DYADIC, st.none()),
    ),
    max_size=30,
)


def _registry_from(ops) -> MetricRegistry:
    registry = MetricRegistry()
    for op, name, value, labels in ops:
        if op == "inc":
            registry.inc(name, value, labels=labels)
        elif op == "gauge":
            registry.set_gauge(name, value, labels=labels)
        elif op == "observe":
            registry.observe(name, value, labels=labels)
        else:
            registry.timings[name] = registry.timings.get(name, 0.0) + value
    return registry


def _merged(*snapshots) -> dict:
    target = MetricRegistry()
    for snapshot in snapshots:
        target.merge(snapshot)
    return target.snapshot()


@settings(max_examples=50, deadline=None)
@given(_OPS, _OPS)
def test_merge_commutative(ops_a, ops_b):
    a = _registry_from(ops_a).snapshot()
    b = _registry_from(ops_b).snapshot()
    assert _merged(a, b) == _merged(b, a)


@settings(max_examples=50, deadline=None)
@given(_OPS, _OPS, _OPS)
def test_merge_associative(ops_a, ops_b, ops_c):
    a = _registry_from(ops_a).snapshot()
    b = _registry_from(ops_b).snapshot()
    c = _registry_from(ops_c).snapshot()
    ab_then_c = _merged(_merged(a, b), c)
    a_then_bc = _merged(a, _merged(b, c))
    assert ab_then_c == a_then_bc


@settings(max_examples=50, deadline=None)
@given(_OPS)
def test_merge_into_empty_is_identity(ops):
    snapshot = _registry_from(ops).snapshot()
    assert _merged(snapshot) == snapshot


def test_counters_add_and_peaks_keep_max():
    a = MetricRegistry()
    a.inc("requests", 7)
    a.inc("queue_depth_peak", 10)
    b = MetricRegistry()
    b.inc("requests", 5)
    b.inc("queue_depth_peak", 3)
    a.merge(b.snapshot())
    assert a.counters["requests"] == 12
    assert a.counters["queue_depth_peak"] == 10  # max, not 13


def test_gauges_keep_max():
    a = MetricRegistry()
    a.set_gauge("depth", 4.0)
    b = MetricRegistry()
    b.set_gauge("depth", 9.0)
    b.set_gauge("other", 1.0)
    a.merge(b.snapshot())
    assert a.gauges["depth"] == 9.0
    assert a.gauges["other"] == 1.0


def test_mismatched_histogram_bounds_raise():
    a = MetricRegistry()
    a.observe("stage_seconds", 0.5)
    b = MetricRegistry()
    b.observe("stage_seconds", 0.5, bounds=(0.1, 1.0, 10.0))
    with pytest.raises(ValueError) as excinfo:
        a.merge(b.snapshot())
    # diagnosing a fleet fold-back failure needs the series name and
    # BOTH bucket layouts in the message, not just "bounds differ"
    message = str(excinfo.value)
    assert "stage_seconds" in message
    assert "(0.1, 1.0, 10.0)" in message
    assert str(DEFAULT_BUCKETS[:3])[:-1] in message


def test_histogram_merge_preserves_counts_and_sum():
    a = MetricRegistry()
    b = MetricRegistry()
    for value in (0.001, 0.01, 0.1):
        a.observe("stage_seconds", value, labels={"stage": "learn"})
    for value in (0.002, 0.02):
        b.observe("stage_seconds", value, labels={"stage": "learn"})
    a.merge(b.snapshot())
    histogram = a.histogram("stage_seconds", labels={"stage": "learn"})
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(0.133)


def test_overflow_series_survive_merge():
    # a source registry past its cardinality guard folds the excess
    # into {overflow="true"}; merging must keep that series intact and
    # add the overflow counts, not spawn new per-label series
    source = MetricRegistry(max_series_per_metric=2)
    for index in range(6):
        source.inc("hits", labels={"user": "u{}".format(index)})
    overflow_key = series_key("hits", {"overflow": "true"})
    assert source.counters[overflow_key] == 4
    assert source.overflow_series == 4

    target = MetricRegistry(max_series_per_metric=2)
    target.merge(source.snapshot())
    target.merge(source.snapshot())
    assert target.counters[overflow_key] == 8
    assert target.overflow_series == 8


def test_merge_respects_target_cardinality_guard():
    # folding a high-cardinality worker into a tight supervisor registry
    # must route the excess through the guard, never blow past it
    source = MetricRegistry()
    for index in range(8):
        source.inc("hits", labels={"user": "u{}".format(index)})
    target = MetricRegistry(max_series_per_metric=3)
    target.merge(source.snapshot())
    per_label = [
        key
        for key in target.counters
        if key.startswith("hits{") and "overflow" not in key
    ]
    assert len(per_label) <= 3
    assert target.counters.get(series_key("hits", {"overflow": "true"}), 0) >= 5


def test_timings_add():
    a = MetricRegistry()
    a.timings["proxy.learn"] = 1.5
    b = MetricRegistry()
    b.timings["proxy.learn"] = 0.5
    b.timings["proxy.dispatch"] = 0.25
    a.merge(b.snapshot())
    assert a.timings["proxy.learn"] == pytest.approx(2.0)
    assert a.timings["proxy.dispatch"] == pytest.approx(0.25)


def test_default_buckets_round_trip():
    a = MetricRegistry()
    a.observe("stage_seconds", 0.004)
    snapshot = a.snapshot()
    bounds = snapshot["histograms"]["stage_seconds"]["bounds"]
    assert tuple(bounds) == DEFAULT_BUCKETS


# ----------------------------------------------------------------------
# Prometheus exposition: label escaping + atomic dump
# ----------------------------------------------------------------------
def test_prometheus_escapes_label_values():
    registry = MetricRegistry()
    registry.inc("requests", labels={"app": 'quo"te\\slash\nline'})
    text = registry.render_prometheus()
    # exposition format: backslash, double-quote, and newline must be
    # escaped inside quoted label values
    assert 'app="quo\\"te\\\\slash\\nline"' in text
    # the raw newline must never reach the output (it would split the
    # sample line and corrupt the whole scrape)
    assert not any(line.startswith("line") for line in text.splitlines())


def test_prometheus_escapes_histogram_labels_too():
    registry = MetricRegistry()
    registry.observe(
        "stage_seconds", 0.01, labels={"stage": 'le"arn'}
    )
    text = registry.render_prometheus()
    assert 'stage="le\\"arn"' in text
    assert 'le="' in text  # bucket labels still render


def test_dump_prometheus_is_atomic_and_round_trips(tmp_path):
    registry = MetricRegistry()
    registry.inc("requests", 3)
    path = tmp_path / "metrics.prom"
    text = registry.dump_prometheus(str(path))
    assert path.read_text() == text
    assert "repro_requests_total 3" in text
    # no temp droppings left behind (mkstemp + rename)
    assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]


def test_dump_prometheus_overwrites_previous_dump(tmp_path):
    registry = MetricRegistry()
    registry.inc("requests", 1)
    path = tmp_path / "metrics.prom"
    registry.dump_prometheus(str(path))
    registry.inc("requests", 1)
    registry.dump_prometheus(str(path))
    assert "repro_requests_total 2" in path.read_text()
