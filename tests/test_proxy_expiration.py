"""Tests for the §4.3 online expiration estimator.

A synthetic origin with a known ``rotation_period`` gives the probes a
ground-truth content lifetime to converge on; fault injection exercises
disable-on-error; a wired-up prefetcher shows learned TTLs reaching the
timer wheel.
"""

import pytest

from repro.httpmsg.body import JsonBody
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.config import ProxyConfig
from repro.proxy.expiration import ExpirationEstimator, ttl_from_headers
from repro.server.origin import OriginServer

ORIGIN = "https://ttl.example"
SITE = "Feed.load#0"


def build(rotation=16.0, max_ttl=600.0, headers=None, **kwargs):
    sim = Simulator()
    server = OriginServer(sim, ORIGIN)
    server.rotation_period = rotation

    def rotating(server, request, user):
        extra = Headers()
        for name, value in (headers or []):
            extra.set(name, value)
        return Response(
            200, headers=extra, body=JsonBody({"v": server.content_version()})
        )

    server.route("GET", "/feed", rotating, name="feed")
    origins = OriginMap()
    origins.register(ORIGIN, server, Link(rtt=0.02))
    config = ProxyConfig()
    estimator = ExpirationEstimator(
        sim, origins, config, max_ttl=max_ttl, **kwargs
    )
    request = Request("GET", Uri.parse(ORIGIN + "/feed"))
    return sim, server, config, estimator, request


# ----------------------------------------------------------------------
# ttl_from_headers
# ----------------------------------------------------------------------
def test_ttl_from_headers_parses_max_age():
    response = Response(200)
    response.headers.set("Cache-Control", "public, max-age=120")
    assert ttl_from_headers(response) == 120.0


def test_ttl_from_headers_no_store_wins():
    response = Response(200)
    response.headers.set("Cache-Control", "no-store, max-age=120")
    assert ttl_from_headers(response) == 0.0


def test_ttl_from_headers_absent():
    assert ttl_from_headers(Response(200)) is None


# ----------------------------------------------------------------------
# probe convergence
# ----------------------------------------------------------------------
def test_probes_converge_near_known_rotation_period():
    sim, _, _, estimator, request = build(rotation=16.0)
    value = sim.run_process(estimator.probe_site(SITE, request))
    estimate = estimator.estimate(SITE)
    assert estimate.converged
    assert not estimate.disabled
    # the estimate is conservative: a proven-unchanged gap can never
    # exceed the real rotation period (probes that span a rotation
    # boundary observe a change and cap ``hi``)
    assert value is not None
    assert estimator.min_ttl <= value <= 16.0
    assert estimate.lo == value
    assert estimate.hi is not None and estimate.hi <= 16.0 * 2
    # probing is deterministic: a fresh identical deployment agrees
    sim2, _, _, estimator2, request2 = build(rotation=16.0)
    value2 = sim2.run_process(estimator2.probe_site(SITE, request2))
    assert value2 == value
    assert estimator2.probes_issued == estimator.probes_issued


def test_static_content_saturates_at_max_ttl():
    sim, _, _, estimator, request = build(rotation=0.0, max_ttl=64.0)
    value = sim.run_process(estimator.probe_site(SITE, request))
    assert value == 64.0
    assert estimator.estimate(SITE).converged


def test_converged_estimate_feeds_config_expiration():
    sim, _, config, estimator, request = build(rotation=16.0)
    before = config.policy(SITE).expiration_time
    value = sim.run_process(estimator.probe_site(SITE, request))
    assert config.policy(SITE).expiration_time == pytest.approx(value)
    assert config.policy(SITE).expiration_time != before


def test_origin_cache_headers_short_circuit_probing():
    sim, _, _, estimator, request = build(
        rotation=16.0, headers=[("Cache-Control", "max-age=42")]
    )
    value = sim.run_process(estimator.probe_site(SITE, request))
    estimate = estimator.estimate(SITE)
    assert value == 42.0
    assert estimate.from_headers
    # one baseline fetch was enough — no wait-and-compare cycles ran
    assert estimate.probes == 0


def test_ttl_for_honors_response_headers_without_probing():
    sim, _, _, estimator, _ = build()
    response = Response(200)
    response.headers.set("Cache-Control", "max-age=90")
    assert estimator.ttl_for(SITE, response) == 90.0
    # the learned value persists for header-less follow-ups
    assert estimator.ttl_for(SITE) == 90.0


# ----------------------------------------------------------------------
# disable-on-error
# ----------------------------------------------------------------------
def test_repeated_probe_errors_disable_the_signature():
    sim, server, config, estimator, request = build(error_limit=3)
    server.force_error("feed", 503)
    value = sim.run_process(estimator.probe_site(SITE, request))
    estimate = estimator.estimate(SITE)
    assert estimate.disabled
    assert estimate.consecutive_errors == 3
    assert value is None
    assert not config.policy(SITE).prefetch
    assert SITE in estimator.disabled_sites
    assert estimator.ttl_for(SITE) is None


def test_transient_errors_below_limit_do_not_disable():
    sim, server, config, estimator, request = build(
        rotation=16.0, error_limit=3
    )
    server.force_error("feed", 503)

    def flow():
        probe = sim.spawn(estimator.probe_site(SITE, request))
        # let exactly one probe fetch fail, then heal the origin
        yield Delay(0.1)
        server.clear_faults()
        value = yield probe
        return value

    value = sim.run_process(flow())
    estimate = estimator.estimate(SITE)
    assert not estimate.disabled
    assert estimate.errors >= 1
    assert estimate.consecutive_errors == 0
    assert estimate.converged
    assert value is not None
    assert config.policy(SITE).prefetch


# ----------------------------------------------------------------------
# wired into the serving path
# ----------------------------------------------------------------------
def test_prefetcher_stores_entries_under_learned_ttl():
    from repro.proxy.cache import PrefetchCache
    from repro.proxy.prefetcher import Prefetcher

    sim, _, config, estimator, request = build(rotation=16.0)
    learned = sim.run_process(estimator.probe_site(SITE, request))
    cache = PrefetchCache()
    prefetcher = Prefetcher(
        sim, estimator.origins, cache, config, learner=None
    )
    prefetcher.expiration = estimator
    assert prefetcher.ttl_for(SITE) == pytest.approx(learned)
    response = Response(200, body=JsonBody({"v": 1}))
    cache.put(
        "u0", request, response, SITE, now=sim.now,
        ttl=prefetcher.ttl_for(SITE),
    )
    entry = cache.get("u0", request, sim.now)
    assert entry is not None
    assert entry.expires_at == pytest.approx(sim.now + learned)
    # ...and the wheel expires it right after the learned TTL
    assert cache.get("u0", request, sim.now + learned + 1.0) is None


def test_run_spawns_probers_for_sampled_sites():
    sim, _, _, estimator, request = build(rotation=16.0)
    samples = {}

    def flow():
        run = sim.spawn(estimator.run(samples, poll_interval=1.0, duration=200.0))
        yield Delay(2.0)
        samples[SITE] = request
        yield run
        return None

    sim.run_process(flow())
    assert estimator.estimate(SITE).converged
    assert estimator.probes_issued > 0
