"""Sharded cache + timer wheel vs the naive full-scan oracle."""

import random

import pytest

from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.proxy.cache import PrefetchCache
from repro.proxy.timerwheel import TimerWheel


def request(cid="1"):
    return Request("GET", Uri.parse("https://a.com/x?cid={}".format(cid)))


def response(payload=0):
    return Response(200, body=JsonBody({"v": payload}))


# -- timer wheel --------------------------------------------------------------
def test_wheel_boundary_tick_expires_exactly_on_time():
    wheel = TimerWheel(tick=0.5)
    wheel.schedule(5.0, "a")
    assert wheel.advance(4.9) == []
    # now == expires_at is expired (matches CacheEntry.expired)
    assert wheel.advance(5.0) == ["a"]
    assert len(wheel) == 0


def test_wheel_same_tick_unexpired_resident_stays_filed():
    wheel = TimerWheel(tick=0.5)
    wheel.schedule(5.0, "a")
    wheel.schedule(5.4, "b")  # same level-0 bucket as "a"
    assert wheel.advance(5.0) == ["a"]
    assert len(wheel) == 1
    assert wheel.advance(5.4) == ["b"]


def test_wheel_far_future_item_cascades_down():
    wheel = TimerWheel(tick=0.5, bits=4, levels=3)
    # 16 ticks per level-0 horizon at bits=4: 200s / 0.5 = 400 ticks is
    # far beyond it, so the item files coarse and must cascade
    wheel.schedule(200.0, "far")
    for now in (50.0, 100.0, 150.0, 199.9):
        assert wheel.advance(now) == []
    assert wheel.advance(200.0) == ["far"]
    assert wheel.cascades > 0


def test_wheel_advance_never_moves_backwards():
    wheel = TimerWheel(tick=0.5)
    wheel.schedule(3.0, "a")
    assert wheel.advance(10.0) == ["a"]
    wheel.schedule(4.0, "late")  # already past the clock
    assert wheel.advance(2.0) == []  # no rewind
    assert wheel.advance(10.0) == ["late"]


# -- boundary + overwrite semantics ------------------------------------------
@pytest.mark.parametrize("indexed", [True, False])
def test_boundary_now_equals_expires_at(indexed):
    cache = PrefetchCache(indexed=indexed)
    cache.put("u1", request(), response(), "s#0", now=0.0, ttl=5.0)
    assert cache.get("u1", request(), now=4.999) is not None
    assert cache.get("u1", request(), now=5.0) is None
    assert len(cache) == 0


@pytest.mark.parametrize("indexed", [True, False])
def test_boundary_purge_at_exact_expiry(indexed):
    cache = PrefetchCache(indexed=indexed)
    cache.put("u1", request(), response(), "s#0", now=0.0, ttl=5.0)
    assert cache.purge_expired(now=4.999) == 0
    assert cache.purge_expired(now=5.0) == 1
    assert len(cache) == 0


def test_overwrite_unexpired_entry_survives_stale_wheel_schedule():
    cache = PrefetchCache(indexed=True)
    cache.put("u1", request(), response(1), "s#0", now=0.0, ttl=1.0)
    # refresh before the first schedule fires; the wheel still holds
    # the old (entry, tick=1.0) schedule, which must be recognized as
    # stale (entry identity mismatch), not evict the replacement
    cache.put("u1", request(), response(2), "s#0", now=0.5, ttl=100.0)
    assert cache.purge_expired(now=2.0) == 0
    entry = cache.get("u1", request(), now=50.0)
    assert entry is not None
    assert entry.response.body.value == {"v": 2}
    assert cache.wheel_purged == 0


def test_refresh_same_expiry_tick_not_double_purged():
    cache = PrefetchCache(indexed=True)
    cache.put("u1", request(), response(1), "s#0", now=0.0, ttl=10.0)
    cache.put("u1", request(), response(2), "s#0", now=0.0, ttl=10.0)
    # two schedules point at one live entry; only one eviction happens
    assert cache.purge_expired(now=10.0) == 1
    assert len(cache) == 0
    assert cache.expired_evictions == 1


# -- differential: sharded/wheel vs naive full scan ---------------------------
def test_sharded_matches_naive_under_randomized_ttls():
    rng = random.Random(2018)
    indexed = PrefetchCache(indexed=True)
    naive = PrefetchCache(indexed=False)
    users = ["u{}".format(i) for i in range(8)]
    now = 0.0
    for step in range(2000):
        now += rng.random() * 0.7
        op = rng.random()
        user = rng.choice(users)
        req = request(cid=str(rng.randrange(40)))
        if op < 0.55:
            ttl = rng.choice([0.1, 0.5, 1.0, 7.0, 60.0, 600.0])
            site = "s#{}".format(step)
            for cache in (indexed, naive):
                cache.put(user, req, response(step), site, now, ttl)
        elif op < 0.85:
            got_indexed = indexed.get(user, req, now)
            got_naive = naive.get(user, req, now)
            assert (got_indexed is None) == (got_naive is None)
            if got_indexed is not None:
                assert got_indexed.site == got_naive.site
                assert got_indexed.expires_at == got_naive.expires_at
        else:
            assert indexed.purge_expired(now) == naive.purge_expired(now)
        assert len(indexed) == len(naive)
    # drain everything: both stores must agree they are empty
    now += 1e6
    indexed.purge_expired(now)
    naive.purge_expired(now)
    assert len(indexed) == len(naive) == 0
    assert indexed.wheel_purged > 0


def test_entries_for_user_deterministic_insertion_order():
    indexed = PrefetchCache(indexed=True)
    naive = PrefetchCache(indexed=False)
    for i in (3, 1, 2):
        for cache in (indexed, naive):
            cache.put("u1", request(cid=str(i)), response(i), "s#{}".format(i), 0.0, 60.0)
            cache.put("u2", request(cid=str(i)), response(i), "other#0", 0.0, 60.0)
    assert [e.site for e in indexed.entries_for_user("u1")] == ["s#3", "s#1", "s#2"]
    assert [e.site for e in indexed.entries_for_user("u1")] == [
        e.site for e in naive.entries_for_user("u1")
    ]
    assert indexed.entries_for_user("nobody") == []
    assert indexed.user_count == naive.user_count == 2


# -- LRU bounds ---------------------------------------------------------------
def test_bounds_require_indexed_cache():
    with pytest.raises(ValueError):
        PrefetchCache(indexed=False, max_entries_per_user=4)
    with pytest.raises(ValueError):
        PrefetchCache(indexed=False, max_bytes=1024)


def test_max_entries_per_user_evicts_least_recently_used():
    cache = PrefetchCache(max_entries_per_user=2)
    cache.put("u1", request(cid="a"), response(), "s#a", 0.0, 60.0)
    cache.put("u1", request(cid="b"), response(), "s#b", 1.0, 60.0)
    # touch "a" so "b" becomes the least recently used
    assert cache.get("u1", request(cid="a"), 2.0) is not None
    cache.put("u1", request(cid="c"), response(), "s#c", 3.0, 60.0)
    assert cache.lru_evictions == 1
    assert cache.get("u1", request(cid="b"), 4.0) is None
    assert cache.get("u1", request(cid="a"), 4.0) is not None
    assert cache.get("u1", request(cid="c"), 4.0) is not None


def test_max_entries_per_user_is_per_shard():
    cache = PrefetchCache(max_entries_per_user=1)
    cache.put("u1", request(cid="a"), response(), "s#a", 0.0, 60.0)
    cache.put("u2", request(cid="b"), response(), "s#b", 0.0, 60.0)
    assert cache.lru_evictions == 0
    assert len(cache) == 2


def test_max_bytes_evicts_globally_oldest_first():
    one_size = response().wire_size()
    cache = PrefetchCache(max_bytes=3 * one_size)
    for i, user in enumerate(["u1", "u2", "u3", "u4"]):
        cache.put(user, request(), response(), "s#{}".format(i), float(i), 60.0)
    assert cache.lru_evictions == 1
    assert cache.get("u1", request(), 5.0) is None  # oldest across users
    assert cache.get("u4", request(), 5.0) is not None
    assert cache.total_bytes <= 3 * one_size


def test_byte_accounting_on_overwrite_and_expiry():
    small, big = response(0), Response(200, body=JsonBody({"v": list(range(50))}))
    cache = PrefetchCache(max_bytes=10_000)
    cache.put("u1", request(), small, "s#0", 0.0, 5.0)
    cache.put("u1", request(), big, "s#0", 1.0, 5.0)  # overwrite
    assert cache.total_bytes == big.wire_size()
    assert cache.purge_expired(now=6.0) == 1
    assert cache.total_bytes == 0


def test_unbounded_indexed_cache_skips_lru_tracking():
    cache = PrefetchCache(indexed=True)
    cache.put("u1", request(), response(), "s#0", 0.0, 60.0)
    cache.get("u1", request(), 1.0)
    assert cache._lru == {}
    assert cache.lru_evictions == 0
