"""Tests for the discrete-event simulation core."""

import pytest

from repro.netsim.sim import Delay, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_delay_advances_clock():
    sim = Simulator()

    def process():
        yield Delay(1.5)
        return sim.now

    assert sim.run_process(process()) == 1.5


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_child_process_returns_value():
    sim = Simulator()

    def child():
        yield Delay(0.1)
        return "payload"

    def parent():
        value = yield sim.spawn(child())
        return value, sim.now

    assert sim.run_process(parent()) == ("payload", 0.1)


def test_parallel_children_overlap():
    sim = Simulator()

    def child(duration):
        yield Delay(duration)
        return duration

    def parent():
        a = sim.spawn(child(1.0))
        b = sim.spawn(child(2.0))
        first = yield a
        second = yield b
        return first, second, sim.now

    assert sim.run_process(parent()) == (1.0, 2.0, 2.0)


def test_waiting_on_triggered_event_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("already")

    def process():
        value = yield event
        return value

    assert sim.run_process(process()) == "already"


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    event = sim.event()

    def failer():
        yield Delay(0.1)
        event.fail(RuntimeError("boom"))
        return None

    def waiter():
        yield event
        return "not reached"

    sim.spawn(failer())
    process = sim.spawn(waiter())
    sim.run()
    assert process.is_error
    assert isinstance(process.value, RuntimeError)


def test_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_process_exception_propagates_to_run_process():
    sim = Simulator()

    def bad():
        yield Delay(0.1)
        raise ValueError("bad process")

    with pytest.raises(ValueError):
        sim.run_process(bad())


def test_yielding_garbage_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(TypeError):
        sim.run_process(bad())


def test_deterministic_fifo_tiebreak():
    sim = Simulator()
    order = []

    def make(name):
        def process():
            yield Delay(1.0)
            order.append(name)
        return process()

    for name in "abc":
        sim.spawn(make(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    sim = Simulator()

    def process():
        yield Delay(10.0)

    sim.spawn(process())
    assert sim.run(until=3.0) == 3.0
    assert sim.now == 3.0


def test_timeout_event():
    sim = Simulator()

    def process():
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(process()) == 2.5


def test_interrupt_stops_process():
    sim = Simulator()
    progressed = []

    def victim():
        yield Delay(1.0)
        progressed.append(True)

    process = sim.spawn(victim())
    process.interrupt()
    sim.run()
    assert progressed == []
    assert not process.triggered


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)
