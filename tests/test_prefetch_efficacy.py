"""Tests for the prefetch-efficacy machinery: hit-aware admission,
the wasted-prefetch counter, adaptive per-user budgets, and the
history-based baseline strategy.
"""

import random

import pytest

from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import ProxyConfig
from repro.proxy.history import HistoryPrefetcher
from repro.proxy.prefetcher import Prefetcher
from repro.server.origin import OriginServer

SITE = "Feed.load#1"


def make_request(path):
    return Request("GET", Uri.parse("https://eff.example" + path))


def make_response(payload):
    return Response(200, body=JsonBody(payload))


# ----------------------------------------------------------------------
# hit-aware admission (§4.4 threshold on *observed* hit probability)
# ----------------------------------------------------------------------
def build_prefetcher(threshold=0.3, min_issued=5, explore=0.0):
    sim = Simulator()
    config = ProxyConfig(
        admission_threshold=threshold,
        admission_min_issued=min_issued,
        admission_explore=explore,
    )
    cache = PrefetchCache()
    prefetcher = Prefetcher(sim, OriginMap(), cache, config, learner=None)
    return prefetcher, cache


def test_admission_allows_during_warmup():
    prefetcher, _ = build_prefetcher(min_issued=5)
    prefetcher.issued_by_site[SITE] = 4  # below warmup
    assert prefetcher._admitted(SITE)


def test_admission_blocks_cold_signatures():
    prefetcher, cache = build_prefetcher(threshold=0.3, explore=0.0)
    prefetcher.issued_by_site[SITE] = 10
    cache.hits[SITE] = 1  # observed probability 0.1 < 0.3
    assert not prefetcher._admitted(SITE)


def test_admission_passes_hot_signatures():
    prefetcher, cache = build_prefetcher(threshold=0.3)
    prefetcher.issued_by_site[SITE] = 10
    cache.hits[SITE] = 4  # 0.4 >= 0.3
    assert prefetcher._admitted(SITE)


def test_admission_explores_blocked_signatures():
    prefetcher, cache = build_prefetcher(threshold=0.3, explore=0.5)
    prefetcher.rng = random.Random(7)
    prefetcher.issued_by_site[SITE] = 100
    cache.hits[SITE] = 0
    admitted = sum(prefetcher._admitted(SITE) for _ in range(400))
    # the explore coin re-admits roughly its configured fraction
    assert 120 < admitted < 280


def test_admission_per_signature_override_beats_global():
    prefetcher, cache = build_prefetcher(threshold=0.9, explore=0.0)
    prefetcher.config.policy(SITE).min_hit_probability = 0.05
    prefetcher.issued_by_site[SITE] = 10
    cache.hits[SITE] = 1  # 0.1 >= the per-policy 0.05, < the global 0.9
    assert prefetcher._admitted(SITE)


def test_admission_disabled_when_no_threshold():
    prefetcher, cache = build_prefetcher(threshold=None)
    prefetcher.issued_by_site[SITE] = 1000
    cache.hits[SITE] = 0
    assert prefetcher._admitted(SITE)


# ----------------------------------------------------------------------
# wasted-prefetch accounting
# ----------------------------------------------------------------------
def test_lru_eviction_of_unserved_entry_counts_as_wasted():
    cache = PrefetchCache(max_entries_per_user=1)
    a, b = make_request("/a"), make_request("/b")
    cache.put("u0", a, make_response({"k": 1}), SITE, now=0.0, ttl=60.0)
    cache.put("u0", b, make_response({"k": 2}), SITE, now=1.0, ttl=60.0)
    assert cache.wasted == 1
    assert cache.wasted_by_site[SITE] == 1


def test_served_entry_is_not_wasted():
    cache = PrefetchCache(max_entries_per_user=1)
    a, b = make_request("/a"), make_request("/b")
    cache.put("u0", a, make_response({"k": 1}), SITE, now=0.0, ttl=60.0)
    entry = cache.get("u0", a, 0.5)
    entry.served = True
    cache.put("u0", b, make_response({"k": 2}), SITE, now=1.0, ttl=60.0)
    assert cache.wasted == 0


def test_expired_unserved_entry_counts_as_wasted():
    cache = PrefetchCache()
    cache.put(
        "u0", make_request("/a"), make_response({"k": 1}), SITE,
        now=0.0, ttl=5.0,
    )
    cache.purge_expired(10.0)
    assert cache.wasted == 1


def test_naive_cache_counts_wasted_identically():
    indexed = PrefetchCache()
    naive = PrefetchCache(indexed=False)
    for cache in (indexed, naive):
        cache.put(
            "u0", make_request("/a"), make_response({"k": 1}), SITE,
            now=0.0, ttl=5.0,
        )
        cache.purge_expired(10.0)
    assert naive.wasted == indexed.wasted == 1


# ----------------------------------------------------------------------
# adaptive per-user budgets
# ----------------------------------------------------------------------
def test_adaptive_requires_total_budget():
    with pytest.raises(ValueError):
        PrefetchCache(adaptive=True)


def test_hit_mass_rotates_by_window():
    cache = PrefetchCache(
        max_entries_total=16, adaptive=True, hit_mass_window=10.0
    )
    cache._note_user_hit("u0", 1.0)
    cache._note_user_hit("u0", 2.0)
    assert cache.hit_mass("u0") == 2
    # one window later the mass survives (cur + prev)...
    cache._note_user_hit("u0", 11.0)
    assert cache.hit_mass("u0") == 3
    # ...but two quiet windows later it is gone
    cache._note_user_hit("u1", 35.0)
    assert cache.hit_mass("u0") == 0


def test_active_users_get_larger_allowance():
    cache = PrefetchCache(
        max_entries_total=40, adaptive=True, min_entries_per_user=2
    )
    for user in ("u0", "u1"):
        cache.put(
            user, make_request("/seed-" + user), make_response({"u": user}),
            SITE, now=0.0, ttl=600.0,
        )
    for _ in range(8):
        cache._note_user_hit("u0", 1.0)
    assert cache._allowance("u0") > cache._allowance("u1")
    assert cache._allowance("u1") >= 2  # the floor


def test_adaptive_budget_evicts_cold_users_first():
    cache = PrefetchCache(
        max_entries_total=10, adaptive=True, min_entries_per_user=2
    )
    # u0 earns hit mass; u1 is cold
    for index in range(5):
        cache.put(
            "u0", make_request("/hot-{}".format(index)),
            make_response({"i": index}), SITE, now=0.0, ttl=600.0,
        )
        cache._note_user_hit("u0", 0.5)
    for index in range(8):
        cache.put(
            "u1", make_request("/cold-{}".format(index)),
            make_response({"i": index}), SITE, now=1.0, ttl=600.0,
        )
    hot = len(cache.entries_for_user("u0"))
    cold = len(cache.entries_for_user("u1"))
    assert hot + cold <= 10
    assert cold <= cache._allowance("u1")
    assert hot >= cache._allowance("u1")


def test_total_budget_is_enforced_without_adaptive():
    cache = PrefetchCache(max_entries_total=4)
    for index in range(10):
        cache.put(
            "u{}".format(index % 3), make_request("/e{}".format(index)),
            make_response({"i": index}), SITE, now=float(index), ttl=600.0,
        )
    assert len(cache) <= 4
    assert cache.lru_evictions >= 6


# ----------------------------------------------------------------------
# history-based baseline
# ----------------------------------------------------------------------
def build_history():
    sim = Simulator()
    server = OriginServer(sim, "https://eff.example")

    def echo(server, request, user):
        return Response(200, body=JsonBody({"path": request.uri.path}))

    server.route("GET", "/a", echo, name="a")
    server.route("GET", "/b", echo, name="b")
    origins = OriginMap()
    origins.register("https://eff.example", server, Link(rtt=0.02))
    cache = PrefetchCache()
    history = HistoryPrefetcher(sim, origins, cache, ttl=600.0)
    return sim, cache, history


def test_history_prefetches_most_frequent_successor():
    sim, cache, history = build_history()
    a, b = make_request("/a"), make_request("/b")

    def flow():
        # first cycle teaches the A -> B transition
        history.observe("u0", a, sim.now)
        history.observe("u0", b, sim.now)
        # second visit to A predicts B
        started = history.observe("u0", a, sim.now)
        assert started == 1
        yield Delay(1.0)
        return None

    sim.run_process(flow())
    assert history.issued == 1
    assert cache.get("u0", b, sim.now) is not None


def test_history_skips_fresh_duplicates():
    sim, cache, history = build_history()
    a, b = make_request("/a"), make_request("/b")

    def flow():
        history.observe("u0", a, sim.now)
        history.observe("u0", b, sim.now)
        history.observe("u0", a, sim.now)
        yield Delay(1.0)
        history.observe("u0", b, sim.now)
        started = history.observe("u0", a, sim.now)
        assert started == 0
        yield Delay(1.0)
        return None

    sim.run_process(flow())
    assert history.skipped_duplicate == 1
    # B was prefetched once (after the second A); the revisit of B also
    # predicted A from the learned B -> A transition
    assert history.issued == 2


def test_history_is_per_user():
    sim, cache, history = build_history()
    a, b = make_request("/a"), make_request("/b")

    def flow():
        history.observe("u0", a, sim.now)
        history.observe("u0", b, sim.now)
        # u1 visits A for the first time: no transition of their own
        started = history.observe("u1", a, sim.now)
        assert started == 0
        yield Delay(1.0)
        return None

    sim.run_process(flow())
    assert history.issued == 0
    assert cache.get("u1", b, sim.now) is None
