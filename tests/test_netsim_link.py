"""Tests for links and the direct transport."""

import pytest

from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import DirectTransport, Endpoint, OriginMap, UnknownOriginError


def test_one_way_includes_propagation_and_serialization():
    link = Link(rtt=0.1, bandwidth_bps=8e6)
    # 1000 bytes at 8 Mbps = 1 ms, plus rtt/2 = 50 ms
    assert link.one_way(1000) == pytest.approx(0.051)


def test_zero_size_transfer_is_half_rtt():
    link = Link(rtt=0.2)
    assert link.one_way(0) == pytest.approx(0.1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Link(rtt=-1)
    with pytest.raises(ValueError):
        Link(rtt=0.1, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(rtt=0.1).one_way(-5)


def test_unshared_link_ignores_contention():
    link = Link(rtt=0.0, bandwidth_bps=8e6, shared=False)
    first = link.transfer_delay(0.0, 1000)
    second = link.transfer_delay(0.0, 1000)
    assert first == second == pytest.approx(0.001)


def test_shared_link_queues_serialization():
    link = Link(rtt=0.0, bandwidth_bps=8e6, shared=True)
    first = link.transfer_delay(0.0, 1000)
    second = link.transfer_delay(0.0, 1000)
    assert first == pytest.approx(0.001)
    assert second == pytest.approx(0.002)  # waits for the first


def test_shared_link_idle_gap_resets_queue():
    link = Link(rtt=0.0, bandwidth_bps=8e6, shared=True)
    link.transfer_delay(0.0, 1000)
    later = link.transfer_delay(10.0, 1000)
    assert later == pytest.approx(0.001)


def test_link_reset():
    link = Link(rtt=0.0, bandwidth_bps=8e6, shared=True)
    link.transfer_delay(0.0, 100_000)
    link.reset()
    assert link.transfer_delay(0.0, 1000) == pytest.approx(0.001)


class EchoEndpoint(Endpoint):
    def __init__(self, service_time=0.05):
        self.service_time = service_time
        self.requests = []

    def handle(self, request, user):
        self.requests.append((request, user))
        yield Delay(self.service_time)
        return Response(200, body=JsonBody({"echo": request.uri.path}))


def make_transport(sim):
    origins = OriginMap()
    endpoint = EchoEndpoint()
    origins.register("https://a.com", endpoint, Link(rtt=0.1))
    access = Link(rtt=0.05)
    return DirectTransport(sim, access, origins), endpoint


def test_direct_transport_round_trip_latency():
    sim = Simulator()
    transport, endpoint = make_transport(sim)
    request = Request("GET", Uri.parse("https://a.com/x"))

    def flow():
        response = yield from transport.send(request, "u1")
        return response, sim.now

    response, elapsed = sim.run_process(flow())
    assert response.status == 200
    # 2 one-way access (0.025 each) + 2 one-way origin (0.05 each)
    # + 0.05 service + serialization
    assert elapsed > 0.2
    assert endpoint.requests[0][1] == "u1"


def test_direct_transport_unknown_origin():
    sim = Simulator()
    transport, _ = make_transport(sim)
    request = Request("GET", Uri.parse("https://unknown.com/x"))

    def flow():
        yield from transport.send(request, "u1")

    with pytest.raises(UnknownOriginError):
        sim.run_process(flow())


def test_origin_map_link_lookup():
    origins = OriginMap()
    endpoint = EchoEndpoint()
    link = Link(rtt=0.123)
    origins.register("https://a.com", endpoint, link)
    request = Request("GET", Uri.parse("https://a.com/x"))
    assert origins.endpoint_for(request) is endpoint
    assert origins.link_for(request) is link
    other = Request("GET", Uri.parse("https://b.com/x"))
    assert origins.endpoint_for(other) is None
