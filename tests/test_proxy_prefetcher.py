"""Unit tests for the prefetcher (priority scheduling, gating, stats)."""

import pytest

from repro.analysis.model import (
    AnalysisResult,
    ConstAtom,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    ValueTemplate,
)
from repro.httpmsg.body import JsonBody
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import Endpoint, OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import Condition, ProxyConfig
from repro.proxy.instances import RequestInstance, RuntimeSignature
from repro.proxy.learning import DynamicLearner, ReadyPrefetch
from repro.proxy.prefetcher import Prefetcher

ORIGIN = "https://api.test.com"


class SlowEndpoint(Endpoint):
    def __init__(self, service_time=0.05):
        self.service_time = service_time
        self.order = []

    def handle(self, request, user):
        self.order.append(request.uri.path_and_query())
        yield Delay(self.service_time)
        return Response(200, body=JsonBody({"p": request.uri.path}))


def make_signature(site, path="/x"):
    return RuntimeSignature(
        TransactionSignature(
            site,
            RequestTemplate("GET", ValueTemplate([ConstAtom(ORIGIN + path)])),
            ResponseTemplate(),
        )
    )


def make_environment(max_concurrent=1):
    sim = Simulator()
    endpoint = SlowEndpoint()
    origins = OriginMap()
    origins.register(ORIGIN, endpoint, Link(rtt=0.02))
    cache = PrefetchCache()
    config = ProxyConfig()
    analysis = AnalysisResult("t", [], [])
    learner = DynamicLearner(analysis)
    prefetcher = Prefetcher(
        sim, origins, cache, config, learner, max_concurrent=max_concurrent
    )
    return sim, endpoint, cache, config, prefetcher


def ready_for(site, path, user="u1", depth=1):
    signature = make_signature(site, path)
    instance = RequestInstance(signature, user, depth=depth)
    request = Request("GET", Uri.parse(ORIGIN + path))
    return ReadyPrefetch(instance, request)


def test_fetch_populates_cache():
    sim, endpoint, cache, config, prefetcher = make_environment()
    prefetcher.submit(ready_for("a#0", "/a"))
    sim.run()
    assert prefetcher.issued == 1
    assert cache.contains_fresh("u1", Request("GET", Uri.parse(ORIGIN + "/a")), sim.now)


def test_disabled_policy_skipped():
    sim, endpoint, cache, config, prefetcher = make_environment()
    config.disable("a#0", "off")
    prefetcher.submit(ready_for("a#0", "/a"))
    sim.run()
    assert prefetcher.issued == 0
    assert prefetcher.skipped_policy == 1


def test_depth_gate():
    sim, endpoint, cache, config, prefetcher = make_environment()
    config.max_chain_depth = 1
    prefetcher.submit(ready_for("a#0", "/a", depth=2))
    sim.run()
    assert prefetcher.skipped_depth == 1
    assert prefetcher.issued == 0


def test_duplicate_and_inflight_gate():
    sim, endpoint, cache, config, prefetcher = make_environment()
    prefetcher.submit(ready_for("a#0", "/a"))
    prefetcher.submit(ready_for("a#0", "/a"))  # in flight: skipped
    sim.run()
    prefetcher.submit(ready_for("a#0", "/a"))  # cached: skipped
    sim.run()
    assert prefetcher.issued == 1
    assert prefetcher.skipped_duplicate == 2


def test_probability_gate_deterministic_seed():
    sim, endpoint, cache, config, prefetcher = make_environment()
    config.global_probability = 0.0
    for i in range(5):
        prefetcher.submit(ready_for("a#0", "/a{}".format(i)))
    sim.run()
    assert prefetcher.issued == 0
    assert prefetcher.skipped_probability == 5


def test_condition_gate_uses_pred_context():
    sim, endpoint, cache, config, prefetcher = make_environment()
    config.policy("a#0").condition = Condition("price", "gt", "100")
    cheap = ready_for("a#0", "/cheap")
    cheap.instance.pred_context = {"price": 50}
    pricey = ready_for("a#0", "/pricey")
    pricey.instance.pred_context = {"price": 500}
    prefetcher.submit(cheap)
    prefetcher.submit(pricey)
    sim.run()
    assert prefetcher.issued == 1
    assert prefetcher.skipped_condition == 1
    assert endpoint.order == ["/pricey"]


def test_budget_gate_stops_after_highwater():
    sim, endpoint, cache, config, prefetcher = make_environment()
    config.data_budget_bytes = 1  # anything crosses it
    prefetcher.submit(ready_for("a#0", "/a"))
    sim.run()
    prefetcher.submit(ready_for("a#0", "/b"))
    sim.run()
    assert prefetcher.issued == 1
    assert prefetcher.skipped_budget == 1


def test_error_responses_not_cached():
    sim, endpoint, cache, config, prefetcher = make_environment()

    class FailingEndpoint(Endpoint):
        def handle(self, request, user):
            yield Delay(0.01)
            return Response(500, body=JsonBody({"error": 500}))

    prefetcher.origins.register(ORIGIN, FailingEndpoint(), Link(rtt=0.02))
    prefetcher.submit(ready_for("a#0", "/a"))
    sim.run()
    assert prefetcher.errors == 1
    assert prefetcher.error_by_site["a#0"] == 1
    assert len(cache) == 0


def test_priority_orders_waiting_queue():
    sim, endpoint, cache, config, prefetcher = make_environment(max_concurrent=1)
    # teach the scheduler that site "slow#0" takes long to complete
    prefetcher.avg_response_time["slow#0"] = 1.0
    prefetcher.avg_response_time["fast#0"] = 0.001
    prefetcher.submit(ready_for("x#0", "/first"))  # occupies the slot
    prefetcher.submit(ready_for("fast#0", "/fast"))
    prefetcher.submit(ready_for("slow#0", "/slow"))
    sim.run()
    # the slow-origin signature jumped the fast one in the queue (§5)
    assert endpoint.order == ["/first", "/slow", "/fast"]


def test_fifo_when_priority_disabled():
    sim, endpoint, cache, config, prefetcher = make_environment(max_concurrent=1)
    prefetcher.priority_enabled = False
    prefetcher.avg_response_time["slow#0"] = 1.0
    prefetcher.submit(ready_for("x#0", "/first"))
    prefetcher.submit(ready_for("fast#0", "/fast"))
    prefetcher.submit(ready_for("slow#0", "/slow"))
    sim.run()
    assert endpoint.order == ["/first", "/fast", "/slow"]


def test_concurrency_limit_respected():
    sim, endpoint, cache, config, prefetcher = make_environment(max_concurrent=2)
    for i in range(6):
        prefetcher.submit(ready_for("a#0", "/r{}".format(i)))
    sim.run()
    assert prefetcher.issued == 6
    assert len(cache) == 6


def test_response_time_running_average():
    sim, endpoint, cache, config, prefetcher = make_environment()
    prefetcher._record_response_time("s#0", 1.0)
    prefetcher._record_response_time("s#0", 3.0)
    assert prefetcher.avg_response_time["s#0"] == pytest.approx(2.0)


def test_add_header_only_on_wire_copy():
    sim, endpoint, cache, config, prefetcher = make_environment()
    config.policy("a#0").add_header = [("X-APPx", "prefetch")]
    ready = ready_for("a#0", "/a")
    prefetcher.submit(ready)
    sim.run()
    # the cache key is the unmarked request, so the client's (unmarked)
    # request will match
    assert cache.contains_fresh("u1", ready.request, sim.now)
    assert "X-APPx" not in ready.request.headers


def test_drain_reranks_from_current_priorities():
    # enqueue three sites while all priorities are equal (no samples
    # yet), then move the running averages before anything drains: the
    # queue must drain in *today's* order, not the enqueue-time order
    sim, endpoint, cache, config, prefetcher = make_environment(max_concurrent=1)
    prefetcher.submit(ready_for("hold#0", "/hold"))  # occupies the slot
    prefetcher.submit(ready_for("a#0", "/a"))
    prefetcher.submit(ready_for("b#0", "/b"))
    prefetcher.submit(ready_for("c#0", "/c"))
    prefetcher.avg_response_time["c#0"] = 1.0
    prefetcher.avg_response_time["b#0"] = 0.5
    prefetcher.avg_response_time["a#0"] = 0.1
    sim.run()
    assert endpoint.order == ["/hold", "/c", "/b", "/a"]


def test_drain_rerank_keeps_fifo_ties():
    sim, endpoint, cache, config, prefetcher = make_environment(max_concurrent=1)
    prefetcher.submit(ready_for("hold#0", "/hold"))
    for i in range(4):
        prefetcher.submit(ready_for("tie#0", "/t{}".format(i)))
    sim.run()
    assert endpoint.order == ["/hold", "/t0", "/t1", "/t2", "/t3"]


def test_queue_peak_perf_counter():
    from repro.metrics.perf import PERF

    sim, endpoint, cache, config, prefetcher = make_environment(max_concurrent=1)
    with PERF.capture():
        prefetcher.submit(ready_for("hold#0", "/hold"))
        for i in range(3):
            prefetcher.submit(ready_for("q#0", "/q{}".format(i)))
        peak = PERF.get("prefetch.queue_peak")
        sim.run()
        assert PERF.get("prefetch.queue_peak") == peak == 3
