"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.httpmsg.body import FormBody, JsonBody
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request, Response
from repro.httpmsg.uri import Uri, quote, unquote
from repro.httpmsg.wire import (
    parse_request,
    parse_response,
    serialize_request,
    serialize_response,
)
from repro.metrics.stats import cdf_points, mean, median, percentile
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.proxy.cache import PrefetchCache

# -- strategies ---------------------------------------------------------------
printable_text = st.text(
    alphabet=string.ascii_letters + string.digits + " -_.~%&=+/:;",
    min_size=0,
    max_size=40,
)
token = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12)
#: the wire layer owns Host/Content-Type/Content-Length; apps never set
#: them directly, so the strategy avoids those reserved names
_RESERVED_HEADERS = {"host", "content-type", "content-length"}
header_name = st.text(
    alphabet=string.ascii_letters + "-", min_size=1, max_size=16
).filter(lambda name: name.lower() not in _RESERVED_HEADERS)

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        printable_text,
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(token, children, max_size=4),
    ),
    max_leaves=12,
)


@st.composite
def uris(draw):
    host = draw(
        st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12)
    )
    segments = draw(st.lists(token, min_size=0, max_size=4))
    query = draw(st.lists(st.tuples(token, printable_text), max_size=4))
    return Uri(
        scheme=draw(st.sampled_from(["http", "https"])),
        host=host + ".com",
        path="/" + "/".join(segments),
        query=query,
    )


@st.composite
def requests(draw):
    method = draw(st.sampled_from(["GET", "POST"]))
    headers = Headers(
        draw(st.lists(st.tuples(header_name, printable_text), max_size=4))
    )
    kind = draw(st.sampled_from(["empty", "form", "json"]))
    if kind == "form":
        body = FormBody(draw(st.lists(st.tuples(token, printable_text), max_size=5)))
    elif kind == "json":
        body = JsonBody(draw(json_values))
    else:
        body = None
    return Request(method, draw(uris()), headers, body)


# -- URI / quoting --------------------------------------------------------------
@given(printable_text)
def test_quote_unquote_round_trip(text):
    assert unquote(quote(text)) == text


@given(uris())
def test_uri_string_round_trip(uri):
    assert Uri.parse(uri.to_string()) == uri


@given(uris())
def test_origin_is_prefix_of_uri(uri):
    assert uri.to_string().startswith(uri.origin())


# -- wire round trips -------------------------------------------------------------
@given(requests())
@settings(max_examples=60)
def test_request_wire_round_trip(request):
    parsed = parse_request(serialize_request(request), scheme=request.uri.scheme)
    assert parsed == request


@given(st.integers(min_value=100, max_value=599), json_values)
@settings(max_examples=60)
def test_response_wire_round_trip(status, payload):
    response = Response(status, body=JsonBody(payload))
    assert parse_response(serialize_response(response)) == response


@given(requests())
@settings(max_examples=60)
def test_exact_key_stable_and_copy_invariant(request):
    assert request.exact_key() == request.copy().exact_key()
    assert request.copy() == request


# -- field paths --------------------------------------------------------------------
@given(st.lists(token, min_size=1, max_size=4))
def test_fieldpath_parse_format_round_trip(parts):
    path = FieldPath("body", tuple(parts))
    assert FieldPath.parse(path.to_string()) == path


@given(token, printable_text)
def test_fieldpath_assign_then_extract(key, value):
    request = Request("POST", Uri.parse("https://a.com/x"), body=FormBody())
    path = FieldPath("body", (key,))
    path.assign(request, value)
    assert path.extract(request) == [value]


@given(json_values, st.lists(token, min_size=1, max_size=3), printable_text)
def test_json_assign_respects_structure(payload, parts, value):
    request = Request("POST", Uri.parse("https://a.com/x"), body=JsonBody({}))
    path = FieldPath("body", tuple(parts))
    assert path.assign(request, value)
    assert path.extract(request) == [value]


# -- statistics -----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_subnormal=False), min_size=1, max_size=50))
def test_percentile_bounds(values):
    assert min(values) <= percentile(values, 50) <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_subnormal=False), min_size=1, max_size=50))
def test_percentile_monotone_in_q(values):
    qs = [0, 25, 50, 75, 90, 100]
    points = [percentile(values, q) for q in qs]
    tolerance = 1e-9 * (1 + max(values))  # interpolation float jitter
    assert all(a <= b + tolerance for a, b in zip(points, points[1:]))


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_subnormal=False), min_size=1, max_size=50))
def test_cdf_properties(values):
    points = cdf_points(values)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys[-1] == 1.0
    assert all(0 < y <= 1 for y in ys)


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_subnormal=False), min_size=1, max_size=50))
def test_mean_median_within_range(values):
    slack = 1e-9 * (1 + max(values))  # float summation jitter
    assert min(values) - slack <= mean(values) <= max(values) + slack
    assert min(values) <= median(values) <= max(values)


# -- link timing --------------------------------------------------------------------
@given(
    st.floats(min_value=0, max_value=1.0),
    st.floats(min_value=1e3, max_value=1e9),
    st.integers(min_value=0, max_value=10_000_000),
)
def test_one_way_delay_positive_and_additive(rtt, bandwidth, size):
    link = Link(rtt=rtt, bandwidth_bps=bandwidth)
    assert link.one_way(size) >= rtt / 2
    assert link.one_way(size) >= link.one_way(0)


@given(st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=20))
def test_shared_link_conserves_serialization(sizes):
    shared = Link(rtt=0.0, bandwidth_bps=8e6, shared=True)
    total = sum(shared.transfer_delay(0.0, s) for s in sizes)
    serial = sum(s * 8 / 8e6 for s in sizes)
    # queueing can only add delay, and the final finish time equals the
    # serial sum (work conservation)
    last_finish = shared._busy_until
    assert abs(last_finish - serial) < 1e-9
    assert total >= serial - 1e-9


# -- simulator ordering -----------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []

    def make(delay):
        def process():
            yield Delay(delay)
            fired.append(sim.now)

        return process()

    for delay in delays:
        sim.spawn(make(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- cache ---------------------------------------------------------------------------------
@given(requests(), st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=40)
def test_cache_never_serves_expired(request, ttl):
    cache = PrefetchCache()
    cache.put("u", request, Response(200), "s#0", now=0.0, ttl=ttl)
    assert cache.get("u", request, now=ttl * 0.99) is not None
    assert cache.get("u", request, now=ttl) is None


@given(requests(), requests())
@settings(max_examples=40)
def test_cache_exact_match_only(a, b):
    cache = PrefetchCache()
    cache.put("u", a, Response(200), "s#0", now=0.0, ttl=60.0)
    hit = cache.get("u", b, now=1.0)
    if a == b:
        assert hit is not None
    else:
        assert hit is None
