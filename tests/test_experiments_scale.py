"""Tests for the ``repro scale`` load harness."""

import json

import pytest

from repro.cli import main
from repro.experiments.scale import record_session_template, run_scale


def test_record_session_template_yields_replayable_requests():
    template = record_session_template("wish")
    assert len(template) > 1
    # independent copies: mutating one replay must not poison another
    assert template[0] is not template[0].copy()
    methods = {request.method for request in template}
    assert "GET" in methods


def test_run_scale_reports_consistent_metrics():
    row = run_scale(users=10, duration=4.0, seed=3, rate_per_user=0.5)
    assert row["users"] == 10
    assert row["requests"] == row["requests_sent"] > 0
    assert row["served_prefetched"] + row["forwarded"] >= row["requests"]
    assert 0.0 <= row["hit_rate"] <= 1.0
    assert row["wall_s"] > 0.0
    assert row["sim_events"] > row["requests"]
    assert row["latency_p50_ms"] <= row["latency_p95_ms"] <= row["latency_p99_ms"]
    assert row["peak_cache_entries"] >= row["final_cache_entries"] >= 0
    assert row["peak_rss_bytes"] > 0
    assert row["cache_stored"] > 0


def test_run_scale_is_deterministic_in_virtual_metrics():
    first = run_scale(users=8, duration=3.0, seed=11)
    second = run_scale(users=8, duration=3.0, seed=11)
    for key in (
        "requests",
        "served_prefetched",
        "forwarded",
        "prefetch_issued",
        "latency_p99_ms",
        "sim_events",
        "cache_stored",
    ):
        assert first[key] == second[key], key


def test_run_scale_per_user_bound_caps_cache():
    row = run_scale(users=6, duration=5.0, seed=0, max_entries_per_user=4)
    assert row["peak_cache_entries"] <= 6 * 4
    assert row["cache_lru_evictions"] > 0


def test_run_scale_rejects_empty_population():
    with pytest.raises(ValueError):
        run_scale(users=0, duration=1.0)


def test_cli_scale_smoke(tmp_path, capsys):
    output = tmp_path / "scale.json"
    code = main(
        [
            "scale",
            "--users", "5", "10",
            "--duration", "2",
            "--apps", "wish",
            "--output", str(output),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "per-request wall cost" in printed
    written = json.loads(output.read_text())
    assert [row["users"] for row in written["rows"]] == [5, 10]
    assert written["derived"]["per_request_cost_ratio"] > 0


def test_cli_scale_validates_arguments(capsys):
    assert main(["scale", "--users", "0"]) == 2
    assert main(["scale", "--users", "5", "--duration", "0"]) == 2


# ======================================================================
# strategy plumbing: appx vs history vs none on one workload
# ======================================================================
def test_run_scale_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        run_scale(users=2, duration=1.0, strategy="bogus")


def test_strategy_none_issues_no_prefetches():
    row = run_scale(
        users=4, duration=5.0, rate_per_user=1.0, seed=3,
        apps=("wish",), strategy="none",
    )
    assert row["prefetch_issued"] == 0
    assert row["hit_rate"] == 0.0


def test_appx_strategy_beats_no_prefetch_on_the_same_workload():
    kwargs = dict(
        users=6, duration=10.0, rate_per_user=1.0, seed=3, apps=("wish",),
        warm_start=True,
    )
    baseline = run_scale(strategy="none", **kwargs)
    accelerated = run_scale(strategy="appx", **kwargs)
    # identical seeded workload: same arrivals, same session steps
    assert accelerated["requests"] == baseline["requests"]
    # session-consistent replay makes prefetched entries actually hit
    assert accelerated["hit_rate"] > 0.2
    assert accelerated["latency_p50_ms"] < baseline["latency_p50_ms"]


def test_admission_threshold_cuts_prefetch_volume():
    kwargs = dict(
        users=6, duration=10.0, rate_per_user=1.0, seed=3, apps=("wish",),
        warm_start=True,
    )
    open_gate = run_scale(strategy="appx", **kwargs)
    gated = run_scale(strategy="appx", admission_threshold=0.2, **kwargs)
    assert gated["skipped_admission"] > 0
    assert gated["prefetch_issued"] < open_gate["prefetch_issued"]


def test_run_strategy_comparison_reports_deltas():
    from repro.experiments.scale import (
        format_strategy_table,
        run_strategy_comparison,
    )

    comparison = run_strategy_comparison(
        users=6, duration=10.0, rate_per_user=1.0, seed=3, apps=("wish",),
        strategies=("none", "appx"),
    )
    assert set(comparison["rows"]) == {"none", "appx"}
    derived = comparison["derived"]["appx"]
    assert derived["p50_delta_ms"] < 0
    assert derived["p50_speedup"] > 1.0
    assert derived["hit_rate"] > 0.2
    table = format_strategy_table(comparison)
    assert "appx" in table and "none" in table and "speedup" in table


def test_run_scale_adaptive_budget_and_estimator_row_fields():
    row = run_scale(
        users=4, duration=8.0, rate_per_user=1.0, seed=3, apps=("wish",),
        strategy="appx", max_entries_total=64, adaptive_budget=True,
        estimate_expiration=True, warm_start=True,
    )
    assert row["max_entries_total"] == 64
    assert row["adaptive_budget"] is True
    assert row["expiration"] is not None
    assert row["expiration"]["sites"] > 0
    assert row["prefetch_by_signature"]


def test_cli_scale_compare_strategies_smoke(tmp_path, capsys):
    output = tmp_path / "compare.json"
    code = main(
        [
            "scale",
            "--users", "4",
            "--duration", "5",
            "--rate", "1.0",
            "--apps", "wish",
            "--compare-strategies",
            "--output", str(output),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "strategy comparison" in printed
    written = json.loads(output.read_text())
    assert set(written["rows"]) == {"none", "history", "appx"}


def test_cli_scale_validates_new_arguments(capsys):
    assert main(["scale", "--users", "4", "--admission-threshold", "1.5"]) == 2
    assert main(["scale", "--users", "4", "--adaptive-budget"]) == 2
    capsys.readouterr()
