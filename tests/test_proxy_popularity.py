"""Tests for popularity-guided prefetching (§6.3 extension)."""

import pytest

from repro.analysis import analyze_apk
from repro.apps.wish import SPEC as WISH
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.proxy import AccelerationProxy, ProxiedTransport, default_config
from repro.proxy.popularity import PopularityTracker
from repro.server.content import Catalog


# -- tracker unit tests ---------------------------------------------------------
def key(value):
    return (("body.cid", value),)


def test_counts_accumulate():
    tracker = PopularityTracker()
    tracker.record("s#0", key("a"))
    tracker.record("s#0", key("a"))
    tracker.record("s#0", key("b"))
    assert tracker.count("s#0", key("a")) == 2
    assert tracker.count("s#0", key("b")) == 1
    assert tracker.count("s#0", key("zzz")) == 0
    assert tracker.distinct_items("s#0") == 2


def test_rank_orders_by_count():
    tracker = PopularityTracker()
    for _ in range(3):
        tracker.record("s#0", key("hot"))
    tracker.record("s#0", key("cold"))
    assert tracker.rank("s#0", key("hot")) == 1
    assert tracker.rank("s#0", key("cold")) == 2
    assert tracker.rank("s#0", key("unseen")) is None


def test_allows_cold_start():
    tracker = PopularityTracker()
    # fewer distinct items than K: everything allowed
    assert tracker.allows("s#0", key("anything"), top_k=5)


def test_allows_top_k_cutoff():
    tracker = PopularityTracker()
    for index in range(5):
        for _ in range(5 - index):
            tracker.record("s#0", key("item{}".format(index)))
    assert tracker.allows("s#0", key("item0"), top_k=2)
    assert tracker.allows("s#0", key("item1"), top_k=2)
    assert not tracker.allows("s#0", key("item4"), top_k=2)
    assert not tracker.allows("s#0", key("unseen"), top_k=2)


def test_sites_independent():
    tracker = PopularityTracker()
    tracker.record("a#0", key("x"))
    assert tracker.count("b#0", key("x")) == 0


# -- end-to-end: the policy trims prefetch volume -------------------------------
@pytest.fixture(scope="module")
def analysis():
    return analyze_apk(WISH.build_apk())


def browse_session(analysis, top_k):
    sim = Simulator()
    origins, _ = WISH.build_origin_map(sim, Catalog())
    config = default_config(analysis)
    if top_k is not None:
        for signature in analysis.signatures:
            if signature.is_successor():
                config.policy(signature.site).popularity_top_k = top_k
    proxy = AccelerationProxy(sim, origins, analysis, config=config)
    runtime = AppRuntime(
        WISH.build_apk(),
        ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy),
        sim,
        WISH.default_profile(),
    )

    def flow():
        yield sim.spawn(runtime.launch())
        for index in range(4):
            yield Delay(5.0)
            yield sim.spawn(runtime.dispatch("select_item", index))
            yield Delay(3.0)
            yield sim.spawn(runtime.dispatch("select_related", 0))
            # back to the feed for the next item
            yield sim.spawn(runtime.launch())
        return None

    sim.run_process(flow())
    return proxy


def test_top_k_reduces_prefetch_volume(analysis):
    unrestricted = browse_session(analysis, top_k=None)
    restricted = browse_session(analysis, top_k=3)
    assert restricted.prefetcher.skipped_popularity > 0
    assert restricted.prefetcher.issued < unrestricted.prefetcher.issued
    assert (
        restricted.prefetcher.prefetch_bytes
        < unrestricted.prefetcher.prefetch_bytes
    )


def test_top_k_policy_round_trips_in_config(analysis):
    from repro.proxy.config import ProxyConfig

    config = default_config(analysis)
    site = analysis.prefetchable()[0].site
    config.policy(site).popularity_top_k = 7
    restored = ProxyConfig.from_json(config.to_json())
    assert restored.policy(site).popularity_top_k == 7


def test_popularity_recorded_from_client_traffic(analysis):
    proxy = browse_session(analysis, top_k=None)
    detail_site = next(s.site for s in analysis.signatures if "postDetail" in s.site)
    assert proxy.prefetcher.popularity.distinct_items(detail_site) >= 1
