"""Tests for the signature/dependency model."""

from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import FieldPath


def dep(site="pred#0", path="body.items[].id"):
    return DepAtom(site, FieldPath.parse(path))


def test_const_template_matches_exact_text():
    template = ValueTemplate.const("android")
    assert template.is_const()
    assert template.const_value() == "android"
    assert template.matches("android")
    assert not template.matches("ios")


def test_regex_escapes_special_characters():
    template = ValueTemplate.const("a.b+c")
    assert template.matches("a.b+c")
    assert not template.matches("aXb+c")


def test_unknown_template_matches_anything():
    template = ValueTemplate.unknown("env:cookie")
    assert not template.is_const()
    assert template.matches("")
    assert template.matches("bsid=1; theme=dark")


def test_concat_template_regex():
    template = ValueTemplate(
        [UnknownAtom("env:config:host"), ConstAtom("/img?cid="), dep()]
    )
    assert template.matches("https://img.wish.com/img?cid=09cf")
    assert not template.matches("https://img.wish.com/other")


def test_dep_atoms_found_through_alternations():
    alternation = AltAtom([ValueTemplate([dep("a#0")]), ValueTemplate([dep("b#0")])])
    template = ValueTemplate([alternation])
    sites = {atom.pred_site for atom in template.dep_atoms()}
    assert sites == {"a#0", "b#0"}


def test_alt_atom_regex_alternation():
    alternation = AltAtom([ValueTemplate.const("30"), ValueTemplate.const("1")])
    template = ValueTemplate([alternation])
    assert template.matches("30")
    assert template.matches("1")
    assert not template.matches("2")


def test_alt_atom_dedupes_options():
    alternation = AltAtom([ValueTemplate.const("x"), ValueTemplate.const("x")])
    assert len(alternation.options) == 1


def make_signature(site, fields=None, uri_text="/api/x", deps=()):
    atoms = [UnknownAtom("env:config:api_host"), ConstAtom(uri_text)]
    request = RequestTemplate(
        method="GET",
        uri=ValueTemplate(atoms),
        fields=fields or {},
    )
    return TransactionSignature(site, request, ResponseTemplate())


def test_request_template_uri_match_ignores_query():
    signature = make_signature("s#0", uri_text="/api/feed")
    assert signature.request.matches_uri("https://a.com/api/feed?x=1")
    assert not signature.request.matches_uri("https://a.com/api/feedz")


def test_signature_successor_detection():
    plain = make_signature("plain#0")
    assert not plain.is_successor()
    succ = make_signature(
        "succ#0",
        fields={FieldPath.parse("query.cid"): ValueTemplate([dep()])},
    )
    assert succ.is_successor()


def test_signature_hash_stable_and_distinct():
    a = make_signature("s#0")
    b = make_signature("s#0")
    c = make_signature("s#1")
    assert a.hash == b.hash
    assert a.hash != c.hash


def test_default_variant_covers_all_fields():
    signature = make_signature(
        "s#0",
        fields={FieldPath.parse("query.a"): ValueTemplate.const("1")},
    )
    assert signature.variants == [frozenset({"query.a"})]


def make_result():
    signatures = [
        make_signature("a#0"),
        make_signature(
            "b#0", fields={FieldPath.parse("query.k"): ValueTemplate([dep("a#0")])}
        ),
        make_signature(
            "c#0", fields={FieldPath.parse("query.k"): ValueTemplate([dep("b#0")])}
        ),
    ]
    edges = [
        DependencyEdge("a#0", FieldPath.parse("body.id"), "b#0", FieldPath.parse("query.k")),
        DependencyEdge("b#0", FieldPath.parse("body.id"), "c#0", FieldPath.parse("query.k")),
    ]
    return AnalysisResult("com.test", signatures, edges)


def test_analysis_result_prefetchable():
    result = make_result()
    assert {s.site for s in result.prefetchable()} == {"b#0", "c#0"}


def test_analysis_result_chain_length():
    assert make_result().max_chain_length() == 3


def test_analysis_result_neighbors():
    result = make_result()
    assert [e.succ_site for e in result.successors_of("a#0")] == ["b#0"]
    assert [e.pred_site for e in result.predecessors_of("c#0")] == ["b#0"]


def test_analysis_summary_keys():
    summary = make_result().summary()
    assert summary == {
        "signatures": 3,
        "prefetchable": 2,
        "dependencies": 2,
        "max_chain": 3,
    }


def test_dependency_edge_identity():
    a = DependencyEdge("x#0", FieldPath.parse("body.id"), "y#0", FieldPath.parse("query.k"))
    b = DependencyEdge("x#0", FieldPath.parse("body.id"), "y#0", FieldPath.parse("query.k"))
    assert a == b
    assert len({a, b}) == 1
