"""The lint framework: rule fixtures, suppressions, reporters, self-clean.

Each rule family gets must-flag / must-pass fixture pairs, the
suppression convention is exercised end to end, the JSON reporter
schema is pinned, and the meta-test runs the real linter over the real
``src/`` tree in ``--strict`` mode — the same configuration CI gates
on — so a regression that silently un-cleans the tree fails here
first.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.qa import lint_source, render_json, render_text, run_lint
from repro.qa.core import parse_suppressions
from repro.qa.profiles import BENCH, CORE, DEFAULT, SIM, TEST, profile_for

REPO_ROOT = Path(__file__).resolve().parent.parent

#: a path that resolves to the sim profile (full determinism contract)
SIM_PATH = "src/repro/experiments/fixture.py"
#: a path that resolves to the core profile (metrics + mp only)
CORE_PATH = "src/repro/metrics/fixture.py"


def lint_snippet(source: str, relpath: str = SIM_PATH, strict: bool = False):
    findings, suppressed = lint_source(
        relpath, textwrap.dedent(source), strict=strict
    )
    return findings, suppressed


def rule_ids(source: str, relpath: str = SIM_PATH, strict: bool = False):
    findings, _ = lint_snippet(source, relpath, strict=strict)
    return [finding.rule_id for finding in findings]


# ======================================================================
# profiles
# ======================================================================
def test_profile_resolution_longest_prefix():
    assert profile_for("src/repro/netsim/sim.py") == SIM
    assert profile_for("src/repro/proxy/cache.py") == SIM
    assert profile_for("src/repro/experiments/fleet.py") == SIM
    assert profile_for("src/repro/metrics/trace.py") == CORE
    assert profile_for("src/repro/cli.py") == CORE
    assert profile_for("benchmarks/test_perf.py") == BENCH
    assert profile_for("tests/test_qa_lint.py") == TEST
    assert profile_for("setup.py") == DEFAULT


# ======================================================================
# determinism rules
# ======================================================================
def test_wall_clock_flagged_in_sim_path():
    ids = rule_ids("""
        import time

        def serve(sim):
            return time.time()
    """)
    assert ids == ["det-wall-clock"]


def test_wall_clock_alias_resolved_through_import():
    ids = rule_ids("""
        from time import time as now

        def serve(sim):
            return now()
    """)
    assert ids == ["det-wall-clock"]


def test_perf_counter_allowed_everywhere():
    ids = rule_ids("""
        import time

        def measure():
            return time.perf_counter()
    """)
    assert ids == []


def test_wall_clock_allowed_in_benchmarks_profile():
    ids = rule_ids(
        """
        import time

        def bench():
            return time.time()
        """,
        relpath="benchmarks/fixture.py",
    )
    assert ids == []


def test_entropy_sources_flagged():
    ids = rule_ids("""
        import os
        import uuid

        def ids_(sim):
            return uuid.uuid4(), os.urandom(8)
    """)
    assert ids == ["det-entropy", "det-entropy"]


def test_module_level_random_flagged_instance_allowed():
    ids = rule_ids("""
        import random

        def draw(rng):
            shared = random.random()
            threaded = rng.random()
            return shared, threaded
    """)
    assert ids == ["det-global-random"]


def test_seed_provenance_rejects_literal_seed():
    # the acceptance-criteria fixture: a literal-seeded Random in a sim
    # path must be rejected by the def-use provenance walk
    ids = rule_ids("""
        import random

        def replay(requests):
            rng = random.Random(42)
            return rng
    """)
    assert ids == ["det-seed-provenance"]


def test_seed_provenance_rejects_literal_through_assignment_chain():
    ids = rule_ids("""
        import random

        def replay(requests):
            base = 7
            seed = base * 31
            return random.Random(seed)
    """)
    assert ids == ["det-seed-provenance"]


def test_seed_provenance_rejects_clock_and_unseeded():
    findings, _ = lint_snippet("""
        import random
        import time

        def replay():
            wall = random.Random(time.time())
            unseeded = random.Random()
            return wall, unseeded
    """)
    ids = [finding.rule_id for finding in findings]
    # the clock read itself is also a det-wall-clock finding
    assert ids.count("det-seed-provenance") == 2
    assert "det-wall-clock" in ids


def test_seed_provenance_accepts_parameter_derived_seeds():
    ids = rule_ids("""
        import random

        def replay(seed, config, spec):
            direct = random.Random(seed)
            derived = random.Random(seed * 31 + 7)
            attr = random.Random(config.seed)
            key = random.Random(spec["seed"])
            mixed = random.Random("{}|{}".format(seed, config.shard))
            return direct, derived, attr, key, mixed
    """)
    assert ids == []


def test_seed_provenance_accepts_loop_variable_seeds():
    ids = rule_ids("""
        import random

        def shards(seed, workers):
            return [random.Random((seed, shard)) for shard in range(workers)]
    """)
    assert ids == []


# ======================================================================
# metrics hygiene rules
# ======================================================================
def test_declared_counter_and_stage_pass():
    ids = rule_ids("""
        from repro.metrics.perf import PERF

        def hot(request):
            PERF.incr("matcher.requests")
            with PERF.stage("proxy.dispatch"):
                pass
    """)
    assert ids == []


def test_typoed_counter_flagged():
    ids = rule_ids("""
        from repro.metrics.perf import PERF

        def hot(request):
            PERF.incr("matcher.reqests")
    """)
    assert ids == ["met-undeclared-name"]


def test_declared_prefix_passes_undeclared_prefix_flagged():
    ids = rule_ids("""
        from repro.metrics.perf import PERF

        def misses(cause, thing):
            PERF.incr("cache.miss." + cause)
            PERF.incr("cache.oops." + thing)
    """)
    assert ids == ["met-dynamic-name"]


def test_catalog_constant_resolves_at_call_site():
    ids = rule_ids("""
        from repro.metrics import catalog

        def feed(registry, seconds):
            registry.observe(
                catalog.SPAN_WALL_SECONDS, seconds, labels={"stage": "learn"}
            )
    """)
    assert ids == []


def test_registry_typo_and_label_violations_flagged():
    ids = rule_ids("""
        def feed(registry, user):
            registry.inc("span_outcmes", labels={"stage": "learn"})
            registry.inc("traces", labels={"knd": "request"})
            registry.inc("traces", labels={"kind": "u{}".format(user)})
    """)
    assert ids == [
        "met-undeclared-name", "met-undeclared-label", "met-unbounded-label",
    ]


def test_label_dict_resolved_through_local_assignment():
    ids = rule_ids("""
        def feed(registry, seconds):
            labels = {"stgae": "learn"}
            registry.observe("span_wall_seconds", seconds, labels=labels)
    """)
    assert ids == ["met-undeclared-label"]


def test_span_stage_and_trace_kind_vocabulary():
    ids = rule_ids("""
        def trace_it(trace, TRACER, user):
            trace.start_span("match")
            trace.start_span("mtach")
            TRACER.begin(user, kind="prefetch")
            TRACER.begin(user, kind="prefetchh")
    """)
    assert ids == ["met-undeclared-name", "met-undeclared-name"]


def test_parameter_forwarding_is_allowed():
    # the facade pattern: PerfCounters.incr(name) forwards its caller's
    # name — the literal is checked at the caller's site, not here
    ids = rule_ids("""
        def incr(self, name, amount=1):
            self.registry.inc(name, amount)
    """, relpath=CORE_PATH)
    assert ids == []


def test_metrics_rules_active_in_core_profile():
    ids = rule_ids("""
        from repro.metrics.perf import PERF

        def hot(request):
            PERF.incr("no.such.counter")
    """, relpath=CORE_PATH)
    assert ids == ["met-undeclared-name"]


def test_declared_window_passes_typo_flagged():
    ids = rule_ids("""
        from repro.metrics import catalog

        def tick(self, now, latency):
            self.windows.inc(catalog.W_HITS, now)
            self.windows.observe("proxy.request", now, latency)
            self.windows.inc("proxy.reqests", now)
    """)
    assert ids == ["met-undeclared-name"]


def test_window_forwarding_allowed_dynamic_flagged():
    ids = rule_ids("""
        def inc(self, name, now, amount=1):
            self.windows.inc(name, now, amount)

        def feed(windows, suffix, now):
            windows.inc("proxy." + suffix, now)
    """)
    assert ids == ["met-dynamic-name"]


# ======================================================================
# multiprocessing safety rules
# ======================================================================
def test_worker_reachable_global_mutation_flagged():
    ids = rule_ids("""
        from multiprocessing import Process

        CACHE = {}

        def _worker(spec):
            CACHE["key"] = spec
            CACHE.update(spec)

        def launch(spec):
            Process(target=_worker, args=(spec,)).start()
    """)
    assert ids == ["mp-global-mutation", "mp-global-mutation"]


def test_global_rebind_in_worker_flagged_supervisor_side_allowed():
    ids = rule_ids("""
        from concurrent.futures import ProcessPoolExecutor

        _POOL = None

        def _init(env):
            global _POOL
            _POOL = env

        def supervisor_reset():
            global _POOL
            _POOL = None

        def launch():
            return ProcessPoolExecutor(max_workers=2, initializer=_init)
    """)
    # only the initializer's rebind is worker-reachable; the
    # supervisor-side reset stays in the parent process and is fine
    assert ids == ["mp-global-mutation"]


def test_mutation_reached_transitively_and_locals_exempt():
    ids = rule_ids("""
        from multiprocessing import Process

        STATE = {}

        def _helper(spec):
            local = {}
            local["fine"] = spec
            STATE["bad"] = spec

        def _worker(spec):
            _helper(spec)

        def launch(spec):
            Process(target=_worker, args=(spec,)).start()
    """)
    assert ids == ["mp-global-mutation"]


def test_environ_write_through_imported_module_flagged():
    ids = rule_ids("""
        from concurrent.futures import ProcessPoolExecutor
        import os

        def _init(env):
            os.environ["REPRO_X"] = env

        def launch():
            return ProcessPoolExecutor(max_workers=2, initializer=_init)
    """)
    assert ids == ["mp-global-mutation"]


def test_lambda_and_nested_function_pool_targets_flagged():
    ids = rule_ids("""
        from multiprocessing import Process

        def launch(pool, items):
            def inner(item):
                return item

            Process(target=lambda: None).start()
            pool.submit(inner, items[0])
            return pool.map(inner, items)
    """)
    assert ids == [
        "mp-unpicklable-callable",
        "mp-unpicklable-callable",
        "mp-unpicklable-callable",
    ]


def test_module_level_pool_target_passes():
    ids = rule_ids("""
        from multiprocessing import Process

        def _worker(spec):
            result = dict(spec)
            return result

        def launch(spec):
            Process(target=_worker, args=(spec,)).start()
    """)
    assert ids == []


# ======================================================================
# suppressions
# ======================================================================
SUPPRESSIBLE = """
    import time

    def serve(sim):
        return time.time(){comment}
"""


def test_suppression_with_reason_silences_finding():
    findings, suppressed = lint_snippet(
        SUPPRESSIBLE.format(
            comment="  # repro-lint: disable=det-wall-clock -- test hook"
        )
    )
    assert findings == []
    assert suppressed == 1


def test_suppression_without_reason_is_itself_a_finding():
    ids = rule_ids(
        SUPPRESSIBLE.format(comment="  # repro-lint: disable=det-wall-clock")
    )
    assert ids == ["qa-suppression-missing-reason"]


def test_suppression_on_preceding_comment_line_covers_next_line():
    findings, suppressed = lint_snippet("""
        import time

        def serve(sim):
            # repro-lint: disable=det-wall-clock -- injected-hang test hook
            return time.time()
    """)
    assert findings == []
    assert suppressed == 1


def test_suppression_only_matches_named_rule():
    findings, suppressed = lint_snippet("""
        import time

        def serve(sim):
            return time.time()  # repro-lint: disable=det-entropy -- wrong id
    """)
    assert [finding.rule_id for finding in findings] == ["det-wall-clock"]
    assert suppressed == 0


def test_unused_suppression_flagged_only_in_strict():
    clean = """
        import time

        def serve(sim):
            # repro-lint: disable=det-wall-clock -- nothing to suppress
            return time.perf_counter()
    """
    assert rule_ids(clean) == []
    assert rule_ids(clean, strict=True) == ["qa-unused-suppression"]


def test_suppression_parser_handles_multiple_ids():
    suppressions = parse_suppressions(
        "x = 1  # repro-lint: disable=det-wall-clock,det-entropy -- both\n"
    )
    assert len(suppressions) == 1
    assert suppressions[0].rule_ids == ("det-wall-clock", "det-entropy")
    assert suppressions[0].reason == "both"
    assert suppressions[0].target_line == 1


# ======================================================================
# runner, reporters, determinism of output
# ======================================================================
def test_parse_error_is_a_finding_not_a_crash():
    findings, _ = lint_snippet("def broken(:\n")
    assert [finding.rule_id for finding in findings] == ["qa-parse-error"]


def test_run_lint_over_tree_deterministic_and_exit_codes(tmp_path):
    sim_dir = tmp_path / "src" / "repro" / "experiments"
    sim_dir.mkdir(parents=True)
    (sim_dir / "b_dirty.py").write_text(
        "import time\n\ndef f(sim):\n    return time.time()\n"
    )
    (sim_dir / "a_clean.py").write_text("def g(seed):\n    return seed\n")

    report = run_lint(["src"], root=str(tmp_path))
    assert report.exit_code == 1
    assert report.files_scanned == 2
    assert [f.path for f in report.findings] == [
        "src/repro/experiments/b_dirty.py"
    ]

    again = run_lint(["src"], root=str(tmp_path))
    assert render_text(again) == render_text(report)
    assert render_json(again) == render_json(report)

    (sim_dir / "b_dirty.py").write_text("def f(seed):\n    return seed\n")
    assert run_lint(["src"], root=str(tmp_path)).exit_code == 0


def test_json_report_schema(tmp_path):
    sim_dir = tmp_path / "src" / "repro" / "proxy"
    sim_dir.mkdir(parents=True)
    (sim_dir / "mod.py").write_text(
        "import random\n\ndef f(x):\n    return random.Random(1)\n"
    )
    report = run_lint(["src"], root=str(tmp_path), strict=True)
    data = json.loads(render_json(report))
    assert set(data) == {
        "version", "strict", "files_scanned", "findings", "suppressed",
        "counts", "exit_code",
    }
    assert data["version"] == 1
    assert data["strict"] is True
    assert data["files_scanned"] == 1
    assert data["exit_code"] == 1
    assert data["counts"] == {"det-seed-provenance": 1}
    (finding,) = data["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "det-seed-provenance"
    assert finding["path"] == "src/repro/proxy/mod.py"
    assert finding["line"] == 4


def test_missing_path_raises(tmp_path):
    try:
        run_lint(["no/such/dir"], root=str(tmp_path))
    except FileNotFoundError:
        pass
    else:
        raise AssertionError("expected FileNotFoundError")


# ======================================================================
# the meta-test: src/ is clean under the CI configuration
# ======================================================================
def test_src_tree_is_strict_clean():
    report = run_lint(["src"], root=str(REPO_ROOT), strict=True)
    rendered = render_text(report)
    assert report.exit_code == 0, "src/ is no longer lint-clean:\n" + rendered
    # the tree exercises all three rule families' sinks, so a silently
    # inert linter would also show up here: the known, justified
    # suppressions must have matched real findings
    assert report.suppressed >= 3, rendered
    assert report.files_scanned > 80, rendered


def test_sink_heuristics_still_match_real_call_shapes():
    """Pin the receiver heuristics against the real tree's idioms.

    If a refactor renames ``PERF``/``registry``/``TRACER`` receivers,
    the sinks silently stop matching and the gate goes blind; this
    differential (typo'd copies of real call shapes MUST flag) keeps it
    honest.
    """
    real_shapes = """
        from repro.metrics.perf import PERF
        from repro.metrics.trace import TRACER

        def serve(user, registry, trace):
            PERF.incr("matcher.reqests")
            PERF.registry.inc("prefetch_hitz", labels={"signature": user})
            registry.observe("span_wall_secondz", 0.1, labels={"stage": "learn"})
            trace.start_span("mtach")
            TRACER.begin(user, kind="requestt")
    """
    ids = rule_ids(real_shapes)
    assert ids.count("met-undeclared-name") == 5
