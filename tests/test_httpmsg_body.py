"""Tests for repro.httpmsg.body."""

import pytest

from repro.httpmsg.body import BlobBody, EmptyBody, FormBody, JsonBody, TextBody


# -- FormBody -----------------------------------------------------------
def test_form_repeated_keys():
    body = FormBody([("_cap[]", "2"), ("_cap[]", "4")])
    assert body.get_all("_cap[]") == ["2", "4"]
    assert body.get("_cap[]") == "2"


def test_form_set_replaces_first_occurrence():
    body = FormBody([("k", "1"), ("k", "2")])
    body.set("k", "9")
    assert body.get_all("k") == ["9", "2"]


def test_form_set_appends_when_missing():
    body = FormBody()
    body.set("k", "1")
    assert body.fields == [("k", "1")]


def test_form_remove():
    body = FormBody([("a", "1"), ("b", "2"), ("a", "3")])
    body.remove("a")
    assert body.fields == [("b", "2")]


def test_form_keys_deduped_in_order():
    body = FormBody([("b", "1"), ("a", "2"), ("b", "3")])
    assert body.keys() == ["b", "a"]


def test_form_wire_round_trip():
    body = FormBody([("cid", "09cf"), ("q", "a b&c")])
    assert FormBody.parse(body.to_wire()) == body


def test_form_values_coerced_to_str():
    body = FormBody([("n", 30)])
    assert body.get("n") == "30"


def test_form_empty_wire():
    assert FormBody().to_wire() == ""
    assert FormBody.parse("") == FormBody()


# -- JsonBody -----------------------------------------------------------
def test_json_round_trip():
    body = JsonBody({"a": [1, 2, {"b": None}], "c": "x"})
    assert JsonBody.parse(body.to_wire()) == body


def test_json_canonical_key_order():
    a = JsonBody({"b": 1, "a": 2})
    b = JsonBody({"a": 2, "b": 1})
    assert a.to_wire() == b.to_wire()
    assert a == b


def test_json_copy_is_deep():
    body = JsonBody({"a": {"b": 1}})
    clone = body.copy()
    clone.value["a"]["b"] = 2
    assert body.value["a"]["b"] == 1


# -- BlobBody -----------------------------------------------------------
def test_blob_size_is_wire_size():
    blob = BlobBody("img-1", 315_000)
    assert blob.wire_size() == 315_000


def test_blob_rejects_negative_size():
    with pytest.raises(ValueError):
        BlobBody("x", -1)


def test_blob_equality_by_label_and_size():
    assert BlobBody("a", 10) == BlobBody("a", 10)
    assert BlobBody("a", 10) != BlobBody("a", 11)
    assert BlobBody("a", 10) != BlobBody("b", 10)


# -- misc ---------------------------------------------------------------
def test_empty_body():
    body = EmptyBody()
    assert body.wire_size() == 0
    assert body.content_type() is None
    assert body == EmptyBody()


def test_text_body():
    body = TextBody("hello")
    assert body.wire_size() == 5
    assert body.copy() == body


def test_content_types():
    assert FormBody().content_type() == "application/x-www-form-urlencoded"
    assert JsonBody({}).content_type() == "application/json"
    assert BlobBody("x", 1).content_type() == "image/jpeg"
    assert TextBody("t").content_type() == "text/plain"
