"""Tests for the §5 periodic prefetch refresher."""

import pytest

from repro.analysis import analyze_apk
from repro.apps.wish import SPEC as WISH
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.proxy import AccelerationProxy, ProxiedTransport, default_config
from repro.proxy.refresher import Refresher
from repro.server.content import Catalog


@pytest.fixture(scope="module")
def analysis():
    return analyze_apk(WISH.build_apk())


def build(analysis, expiration=8.0):
    sim = Simulator()
    origins, servers = WISH.build_origin_map(sim, Catalog())
    config = default_config(analysis)
    for site in config.policies:
        config.policies[site].expiration_time = expiration
    proxy = AccelerationProxy(sim, origins, analysis, config=config)
    runtime = AppRuntime(
        WISH.build_apk(),
        ProxiedTransport(sim, Link(rtt=0.055, shared=True), proxy),
        sim,
        WISH.default_profile(),
    )
    return sim, proxy, runtime


def test_refresher_tracks_only_consumed_hits(analysis):
    sim, proxy, runtime = build(analysis)
    refresher = Refresher(proxy, min_interval=2.0)
    proxy.on_cache_hit = refresher.note_served

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(5.0)
        yield sim.spawn(runtime.dispatch("select_item", 1))
        return None

    sim.run_process(flow())
    assert refresher.tracked >= 1
    # far fewer tracked than cached: unconsumed prefetches aren't refreshed
    assert refresher.tracked < len(proxy.cache)


def test_refresher_keeps_entries_fresh_across_expiry(analysis):
    sim, proxy, runtime = build(analysis, expiration=6.0)
    refresher = Refresher(proxy, min_interval=2.0)
    proxy.on_cache_hit = refresher.note_served

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(5.0)
        first = yield sim.spawn(runtime.dispatch("select_item", 1))
        # run the refresher while the user idles well past expiry
        refresh_process = sim.spawn(refresher.run(30.0))
        yield Delay(31.0)
        yield refresh_process
        # back to the feed, open the same item again
        yield sim.spawn(runtime.launch())
        yield Delay(1.0)
        second = yield sim.spawn(runtime.dispatch("select_item", 1))
        return first, second

    first, second = sim.run_process(flow())
    assert refresher.refreshed >= 1
    assert refresher.cycles >= 2
    # the re-visit hits refreshed entries instead of paying origin RTTs
    assert second.latency <= first.latency + 0.05


def test_refresher_without_runs_lets_entries_expire(analysis):
    sim, proxy, runtime = build(analysis, expiration=6.0)

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(5.0)
        yield sim.spawn(runtime.dispatch("select_item", 1))
        yield Delay(31.0)
        yield sim.spawn(runtime.launch())
        yield Delay(1.0)
        result = yield sim.spawn(runtime.dispatch("select_item", 1))
        return result

    sim.run_process(flow())
    assert proxy.cache.expired_evictions > 0


def test_refresher_respects_disabled_policies(analysis):
    sim, proxy, runtime = build(analysis)
    refresher = Refresher(proxy, min_interval=1.0)
    proxy.on_cache_hit = refresher.note_served

    def flow():
        yield sim.spawn(runtime.launch())
        yield Delay(5.0)
        yield sim.spawn(runtime.dispatch("select_item", 1))
        # operator disables everything mid-flight
        for site in list(proxy.config.policies):
            proxy.config.disable(site, "maintenance")
        done = sim.spawn(refresher.run(10.0))
        yield done
        return None

    sim.run_process(flow())
    assert refresher.refreshed == 0


def test_refresh_interval_derived_from_expiration(analysis):
    sim, proxy, _ = build(analysis, expiration=100.0)
    refresher = Refresher(proxy, min_interval=5.0)
    site = analysis.signatures[0].site
    assert refresher.interval_for(site) == 50.0
    proxy.config.policy(site).expiration_time = 4.0
    assert refresher.interval_for(site) == 5.0  # floor at min_interval
