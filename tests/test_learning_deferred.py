"""Deferred learn pipeline: differential oracle vs inline mode.

The deferred pipeline (``learn_mode="deferred"``) moves the full learn
workflow — value learning, cookie tracking, successor spawning, the
pending-instance drain — off the request path into a budgeted queue
drain.  Its correctness claim is purely differential: once the queue is
drained, the ready-prefetch stream must be exactly what inline mode
(the seed behavior, retained as the oracle) produced, observation for
observation.  This file pins that claim:

* across every registered app's real recorded session (drain pumped
  per observation: byte-level list equality; drain deferred to the
  end: set equality of completed prefetches);
* under hypothesis-fuzzed drain budgets and observe/drain
  interleavings on the synthetic feed→detail analysis;
* and for the bounded queue's failure mode — a full queue drops the
  observation, counts ``learn.queue_overflow``, and never blocks.
"""

import pytest

from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.apps import all_apps
from repro.apps.registry import get_app
from repro.experiments.scale import record_session_transactions
from repro.httpmsg.wire import serialize_request
from repro.proxy.learning import DynamicLearner
from tests.test_proxy_learning import (
    detail_transaction,
    feed_transaction,
    make_analysis,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False

APP_NAMES = list(all_apps())


def _key(ready):
    """A stable identity for one completed prefetch."""
    return (
        ready.instance.signature.site,
        ready.instance.user,
        ready.request.exact_key(),
    )


def _keys(ready_list):
    return [_key(r) for r in ready_list]


def _drain_all(learner):
    """Pump the budgeted drain until the queue is empty."""
    ready = []
    while learner.learn_queue_depth:
        ready.extend(learner.drain_learn_queue())
    return ready


def _app_fixture(name):
    transactions = record_session_transactions(name)
    analysis = analyze_apk(
        get_app(name).build_apk(), AnalysisOptions(run_slicing=False)
    )
    return transactions, analysis


# ----------------------------------------------------------------------
# oracle: the 5 real apps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", APP_NAMES, ids=str)
def test_deferred_drained_per_observation_equals_inline(name):
    """Pump-after-every-observe is byte-for-byte the inline stream."""
    transactions, analysis = _app_fixture(name)
    inline = DynamicLearner(analysis)
    deferred = DynamicLearner(analysis, learn_mode="deferred")
    for transaction in transactions:
        inline_ready = inline.observe(transaction, "u1")
        assert deferred.observe(transaction, "u1") == []
        deferred_ready = deferred.drain_learn_queue(budget=None)
        assert _keys(deferred_ready) == _keys(inline_ready)
        for a, b in zip(inline_ready, deferred_ready):
            assert serialize_request(a.request) == serialize_request(b.request)
    assert deferred.learn_queue_depth == 0
    assert deferred.queue_overflows == 0
    assert inline.pending_count == deferred.pending_count
    assert inline.completed_count == deferred.completed_count


@pytest.mark.parametrize("name", APP_NAMES, ids=str)
def test_deferred_drained_at_end_equals_inline_as_set(name):
    """Eventually-drained: the completed-prefetch set is identical."""
    transactions, analysis = _app_fixture(name)
    inline = DynamicLearner(analysis)
    deferred = DynamicLearner(
        analysis, learn_mode="deferred", learn_queue_capacity=10_000
    )
    inline_ready = []
    for transaction in transactions:
        inline_ready.extend(inline.observe(transaction, "u1"))
        deferred.observe(transaction, "u1")
    assert deferred.learn_queue_depth == len(transactions)
    # repeated default-budget pumps, the way the proxy/sweeper drains a
    # backlog — the eventual completed-prefetch stream is identical
    deferred_ready = _drain_all(deferred)
    assert _keys(deferred_ready) == _keys(inline_ready)
    assert deferred.deferred_drained == len(transactions)


def test_budgeted_drain_processes_fifo_and_stops_at_budget():
    learner = DynamicLearner(make_analysis(), learn_mode="deferred")
    learner.observe(detail_transaction(), "u1")  # learns _ver + cookie
    learner.observe(feed_transaction(item_ids=("a1", "b2")), "u1")
    learner.observe(feed_transaction(item_ids=("c3",)), "u1")
    assert learner.learn_queue_depth == 3
    # budget=1 processes only the oldest observation (the detail)
    assert learner.drain_learn_queue(budget=1) == []
    assert learner.learn_queue_depth == 2
    ready = _drain_all(learner)
    assert learner.learn_queue_depth == 0
    cids = sorted(r.request.body.get("cid") for r in ready)
    assert cids == ["a1", "b2", "c3"]


# ----------------------------------------------------------------------
# overflow: a full queue degrades gracefully
# ----------------------------------------------------------------------
def test_full_queue_drops_learn_and_counts_overflow():
    learner = DynamicLearner(
        make_analysis(), learn_mode="deferred", learn_queue_capacity=2
    )
    for index in range(5):
        # never raises, never blocks, always returns [] on the
        # request path regardless of queue state
        assert learner.observe(feed_transaction(item_ids=(str(index),)), "u1") == []
    assert learner.learn_queue_depth == 2
    assert learner.queue_overflows == 3
    assert learner.deferred_enqueued == 2
    assert learner.stats()["queue_overflows"] == 3
    # only the two admitted observations ever reach the pipeline
    _drain_all(learner)
    assert learner.observed_count == 5
    assert learner.deferred_drained == 2
    assert learner.pending_count == 2  # one instance per admitted feed


def test_overflow_recovers_after_drain():
    learner = DynamicLearner(
        make_analysis(), learn_mode="deferred", learn_queue_capacity=1
    )
    learner.observe(detail_transaction(), "u1")
    learner.observe(detail_transaction(), "u1")  # dropped
    assert learner.queue_overflows == 1
    _drain_all(learner)
    learner.observe(feed_transaction(item_ids=("a1",)), "u1")  # admitted again
    assert learner.learn_queue_depth == 1
    ready = _drain_all(learner)
    assert [r.request.body.get("cid") for r in ready] == ["a1"]


def test_unmatched_transactions_still_update_cookies_via_drain():
    from repro.httpmsg.headers import Headers
    from repro.httpmsg.message import Request, Response, Transaction
    from repro.httpmsg.uri import Uri

    learner = DynamicLearner(make_analysis(), learn_mode="deferred")
    headers = Headers()
    headers.add("Set-Cookie", "tok=xyz")
    other = Transaction(
        Request("GET", Uri.parse("https://elsewhere.com/x")),
        Response(200, headers),
    )
    assert learner.observe(other, "u1") == []
    assert learner.jar("u1").cookie_header("https://elsewhere.com") == ""
    _drain_all(learner)
    assert learner.jar("u1").cookie_header("https://elsewhere.com") == "tok=xyz"


# ----------------------------------------------------------------------
# hypothesis: fuzz budgets and observe/drain interleavings
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        plan=st.lists(
            st.tuples(
                st.sampled_from(["feed", "detail", "other_user_feed"]),
                st.integers(min_value=0, max_value=3),  # drain budget after
                st.booleans(),  # drain at all after this observation?
            ),
            min_size=1,
            max_size=12,
        ),
        item_seed=st.integers(min_value=0, max_value=99),
    )
    def test_fuzzed_interleavings_match_inline(plan, item_seed):
        analysis = make_analysis()
        inline = DynamicLearner(analysis)
        deferred = DynamicLearner(analysis, learn_mode="deferred")
        inline_ready = []
        deferred_ready = []
        for step, (kind, budget, do_drain) in enumerate(plan):
            item = "i{}-{}".format(item_seed, step)
            if kind == "feed":
                transaction = feed_transaction(item_ids=(item, item + "b"))
                user = "u1"
            elif kind == "detail":
                transaction = detail_transaction(cid=item)
                user = "u1"
            else:
                transaction = feed_transaction(item_ids=(item,))
                user = "u2"
            inline_ready.extend(inline.observe(transaction, user))
            assert deferred.observe(transaction, user) == []
            if do_drain:
                deferred_ready.extend(deferred.drain_learn_queue(budget=budget))
        deferred_ready.extend(_drain_all(deferred))
        assert deferred.learn_queue_depth == 0
        assert set(_keys(deferred_ready)) == set(_keys(inline_ready))
        assert deferred.pending_count == inline.pending_count
        assert deferred.completed_count == inline.completed_count
