"""Declarative SLOs, multiwindow burn-rate alerting, and backpressure.

Objectives live in ``benchmarks/slo.json`` and come in three kinds,
each reduced to one **error-budget ratio** over the live windows of
:mod:`repro.metrics.live`:

``latency``
    ``good_under_ms`` / ``target``: the fraction of requests slower
    than ``good_under_ms`` must stay under ``1 - target``.  The live
    plane counts slow requests into the ``proxy.request_slow`` window
    at observation time, so evaluation is two window sums.
``hit_rate``
    ``floor``: the windowed miss ratio (answered − hits) / answered
    must stay under ``1 - floor``.
``overflow``
    ``budget_ratio``: deferred-learn queue drops per answered request
    must stay under ``budget_ratio``.

Evaluation uses the SRE-workbook **multiwindow, multi-burn-rate**
rule: with ``budget`` the allowed bad ratio, the *burn rate* of a
window is ``(bad / total) / budget`` — 1.0 means "spending exactly
the budget".  An alert fires when **both** the fast window (default
the last ¼ of the horizon) and the slow window (the full horizon)
burn above ``fast_burn`` — the fast window gives low detection
latency, the slow window keeps one transient bucket from paging.
Alerts fire on the not-burning → burning *transition* (no re-page
while an incident is open), are counted in ``slo.alerts``, and are
exported as spanless ``kind=alert`` trace records.  The end-of-run
verdict is per objective: *violated* iff the slow-window burn at the
final evaluation is ≥ 1.0 — i.e. the run ended while the error budget
was actually being overspent.

:class:`BackpressureController` closes the loop (the ROADMAP's
"overflow-aware backpressure" item): overflow in the recent window
doubles every learner's deferred drain budget (bounded), calm windows
decay it back toward base; a sustained hit-rate burn raises the
hit-aware admission threshold (prefetch less until it earns its
keep), relaxing stepwise once the burn clears.  Every actuation bumps
a ``backpressure.*`` counter so tests and BENCH rows can prove the
loop actually moved, not just existed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics import catalog
from repro.metrics.live import LiveWindows
from repro.metrics.perf import PERF

#: repo-relative default objective file (the CLI resolves it)
DEFAULT_SLO_PATH = "benchmarks/slo.json"

#: objective kinds -> required parameter
_KINDS = {"latency": "target", "hit_rate": "floor", "overflow": "budget_ratio"}


class SloObjective:
    """One declarative objective, normalized to bad/total vs budget."""

    __slots__ = (
        "name",
        "kind",
        "budget",
        "fast_burn",
        "slow_burn",
        "min_events",
        "good_under_s",
    )

    def __init__(self, spec: Dict[str, object]) -> None:
        self.name = str(spec.get("name") or spec.get("kind"))
        self.kind = str(spec["kind"])
        if self.kind not in _KINDS:
            raise ValueError(
                "unknown SLO kind {!r}; expected one of {}".format(
                    self.kind, sorted(_KINDS)
                )
            )
        if _KINDS[self.kind] not in spec:
            raise ValueError(
                "SLO objective {!r} is missing {!r}".format(
                    self.name, _KINDS[self.kind]
                )
            )
        if self.kind == "latency":
            target = float(spec["target"])
            if not 0.0 < target < 1.0:
                raise ValueError("latency target must be in (0, 1)")
            self.budget = 1.0 - target
            self.good_under_s = float(spec["good_under_ms"]) / 1e3
        elif self.kind == "hit_rate":
            floor = float(spec["floor"])
            if not 0.0 < floor < 1.0:
                raise ValueError("hit_rate floor must be in (0, 1)")
            self.budget = 1.0 - floor
            self.good_under_s = None
        else:
            self.budget = float(spec["budget_ratio"])
            if self.budget <= 0.0:
                raise ValueError("overflow budget_ratio must be positive")
            self.good_under_s = None
        self.fast_burn = float(spec.get("fast_burn", 2.0))
        self.slow_burn = float(spec.get("slow_burn", 1.0))
        self.min_events = int(spec.get("min_events", 20))

    def bad_and_total(
        self, windows: LiveWindows, now: float, horizon_s: Optional[float]
    ) -> Tuple[float, float]:
        if self.kind == "latency":
            total = windows.total(catalog.W_REQUEST, now, horizon_s)
            bad = windows.total(catalog.W_REQUEST_SLOW, now, horizon_s)
        elif self.kind == "hit_rate":
            total = windows.total(catalog.W_ANSWERED, now, horizon_s)
            bad = total - windows.total(catalog.W_HITS, now, horizon_s)
        else:
            total = windows.total(catalog.W_ANSWERED, now, horizon_s)
            bad = windows.total(catalog.W_OVERFLOW, now, horizon_s)
        return bad, total

    def burn(
        self, windows: LiveWindows, now: float, horizon_s: Optional[float]
    ) -> Tuple[float, float, float]:
        """(burn rate, bad, total) over the given horizon."""
        bad, total = self.bad_and_total(windows, now, horizon_s)
        if total < self.min_events:
            return 0.0, bad, total
        return (bad / total) / self.budget, bad, total


def load_slo_config(path: str) -> Dict[str, object]:
    with open(path) as handle:
        config = json.load(handle)
    if not isinstance(config, dict) or "objectives" not in config:
        raise ValueError("SLO config must be an object with 'objectives'")
    return config


class SloEngine:
    """Evaluates every objective per telemetry tick; remembers state."""

    def __init__(self, config: Dict[str, object]) -> None:
        self.objectives = [SloObjective(s) for s in config["objectives"]]
        if not self.objectives:
            raise ValueError("SLO config declares no objectives")
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO objective names: {}".format(names))
        self.window_s = float(config.get("window_s", 10.0))
        self.fast_window_s = float(
            config.get("fast_window_s", self.window_s / 4.0)
        )
        #: per-objective open-incident flag (alert on transition only)
        self._burning: Dict[str, bool] = {o.name: False for o in self.objectives}
        self._last: Dict[str, Dict[str, object]] = {}
        self._alert_seq = 0
        self.alerts: List[Dict[str, object]] = []

    @property
    def slow_threshold_s(self) -> Optional[float]:
        """The latency objective's good/bad cut, for the live plane."""
        for objective in self.objectives:
            if objective.kind == "latency":
                return objective.good_under_s
        return None

    def evaluate(
        self, windows: LiveWindows, now: float
    ) -> Tuple[List[Dict[str, object]], Dict[str, bool]]:
        """One pass: returns (newly fired alerts, kind -> burning map)."""
        PERF.incr("slo.evaluations")
        new_alerts: List[Dict[str, object]] = []
        burning_by_kind: Dict[str, bool] = {}
        for objective in self.objectives:
            slow, bad, total = objective.burn(windows, now, None)
            fast, fast_bad, fast_total = objective.burn(
                windows, now, self.fast_window_s
            )
            burning = fast >= objective.fast_burn and slow >= objective.slow_burn
            self._last[objective.name] = {
                "objective": objective.name,
                "kind": objective.kind,
                "budget": objective.budget,
                "burn_slow": slow,
                "burn_fast": fast,
                "bad": bad,
                "total": total,
                "burning": burning,
                "sim_now": now,
            }
            burning_by_kind[objective.kind] = (
                burning_by_kind.get(objective.kind, False) or burning
            )
            if burning and not self._burning[objective.name]:
                self._alert_seq += 1
                alert = dict(self._last[objective.name], seq=self._alert_seq)
                self.alerts.append(alert)
                new_alerts.append(alert)
            self._burning[objective.name] = burning
        return new_alerts, burning_by_kind

    # -- verdicts -------------------------------------------------------
    def status(
        self, windows: LiveWindows, now: float
    ) -> List[Dict[str, object]]:
        """Per-objective verdict at ``now`` (recomputed, not cached)."""
        rows = []
        for objective in self.objectives:
            slow, bad, total = objective.burn(windows, now, None)
            fast = objective.burn(windows, now, self.fast_window_s)[0]
            alerts = sum(
                1 for a in self.alerts if a["objective"] == objective.name
            )
            rows.append(
                {
                    "objective": objective.name,
                    "kind": objective.kind,
                    "budget": objective.budget,
                    "burn_slow": slow,
                    "burn_fast": fast,
                    "bad": bad,
                    "total": total,
                    "alerts": alerts,
                    "violated": slow >= 1.0,
                }
            )
        return rows

    def report(self, windows: LiveWindows, now: float) -> Dict[str, object]:
        objectives = self.status(windows, now)
        return {
            "sim_now": now,
            "passed": all(not row["violated"] for row in objectives),
            "alerts": len(self.alerts),
            "objectives": objectives,
        }


class BackpressureController:
    """Window-driven actuation on drain budgets and admission.

    ``learners`` / ``configs`` are the per-app :class:`DynamicLearner`
    and :class:`ProxyConfig` instances of one process (the fleet gives
    each shard its own controller; no cross-process coordination is
    needed because each shard owns its users outright).
    """

    __slots__ = (
        "learners",
        "configs",
        "windows",
        "overflow_horizon_s",
        "max_budget",
        "calm_ticks",
        "admission_step",
        "admission_ceiling",
        "sustain_ticks",
        "base_budgets",
        "base_thresholds",
        "budget_grow",
        "budget_shrink",
        "admission_tighten",
        "admission_relax",
        "_calm",
        "_hit_streak",
    )

    def __init__(
        self,
        learners: Sequence[object],
        configs: Sequence[object],
        windows: LiveWindows,
        overflow_horizon_s: Optional[float] = None,
        max_budget: int = 1024,
        calm_ticks: int = 4,
        admission_step: float = 0.1,
        admission_ceiling: float = 0.9,
        sustain_ticks: int = 3,
    ) -> None:
        self.learners = list(learners)
        self.configs = list(configs)
        self.windows = windows
        self.overflow_horizon_s = overflow_horizon_s
        self.max_budget = max_budget
        self.calm_ticks = calm_ticks
        self.admission_step = admission_step
        self.admission_ceiling = admission_ceiling
        self.sustain_ticks = sustain_ticks
        self.base_budgets = [
            getattr(learner, "learn_drain_budget", None)
            for learner in self.learners
        ]
        self.base_thresholds = [
            getattr(config, "admission_threshold", None)
            for config in self.configs
        ]
        self.budget_grow = 0
        self.budget_shrink = 0
        self.admission_tighten = 0
        self.admission_relax = 0
        self._calm = 0
        self._hit_streak = 0

    # -- drain-budget loop ----------------------------------------------
    def _grow_budgets(self) -> None:
        for learner in self.learners:
            budget = getattr(learner, "learn_drain_budget", None)
            if budget is None:
                continue  # unlimited drain: nothing to grow
            grown = min(self.max_budget, max(budget * 2, budget + 1))
            if grown != budget:
                learner.learn_drain_budget = grown
                self.budget_grow += 1
                PERF.incr("backpressure.budget_grow")

    def _shrink_budgets(self) -> None:
        for learner, base in zip(self.learners, self.base_budgets):
            budget = getattr(learner, "learn_drain_budget", None)
            if budget is None or base is None or budget <= base:
                continue
            learner.learn_drain_budget = max(base, budget // 2)
            self.budget_shrink += 1
            PERF.incr("backpressure.budget_shrink")

    # -- admission loop --------------------------------------------------
    def _tighten_admission(self) -> None:
        for config in self.configs:
            threshold = getattr(config, "admission_threshold", None)
            raised = min(
                self.admission_ceiling, (threshold or 0.0) + self.admission_step
            )
            if threshold is None or raised > threshold:
                config.admission_threshold = raised
                self.admission_tighten += 1
                PERF.incr("backpressure.admission_tighten")

    def _relax_admission(self) -> None:
        for config, base in zip(self.configs, self.base_thresholds):
            threshold = getattr(config, "admission_threshold", None)
            floor = base if base is not None else 0.0
            if threshold is None or threshold <= floor:
                continue
            config.admission_threshold = max(
                floor, threshold - self.admission_step
            )
            self.admission_relax += 1
            PERF.incr("backpressure.admission_relax")

    # -- per-tick entry point -------------------------------------------
    def tick(self, now: float, burning: Dict[str, bool]) -> None:
        overflow = self.windows.total(
            catalog.W_OVERFLOW, now, self.overflow_horizon_s
        )
        if overflow > 0:
            self._calm = 0
            self._grow_budgets()
        else:
            self._calm += 1
            if self._calm >= self.calm_ticks:
                self._shrink_budgets()
        if burning.get("hit_rate"):
            self._hit_streak += 1
            if self._hit_streak >= self.sustain_ticks:
                self._tighten_admission()
        else:
            self._hit_streak = 0
            self._relax_admission()

    def stats(self) -> Dict[str, object]:
        return {
            "budget_grow": self.budget_grow,
            "budget_shrink": self.budget_shrink,
            "admission_tighten": self.admission_tighten,
            "admission_relax": self.admission_relax,
            "drain_budgets": [
                getattr(learner, "learn_drain_budget", None)
                for learner in self.learners
            ],
            "base_budgets": list(self.base_budgets),
            "admission_thresholds": [
                getattr(config, "admission_threshold", None)
                for config in self.configs
            ],
            "base_thresholds": list(self.base_thresholds),
        }
