"""Hot-path performance counters (near-zero overhead when disabled).

The proxy's request path — signature dispatch, pending-instance wakes,
cache lookups, prefetch issuing — is instrumented with named counters
and per-stage wall-clock timings so benchmarks can assert *work done*
(regex attempts, candidates examined, retries) instead of flaky wall
time.  Everything funnels through one process-global
:class:`PerfCounters` instance, :data:`PERF`.

Disabled (the default) the cost at a call site is one attribute load
and a branch; the hottest loops guard with ``if PERF.enabled:`` so not
even the call happens.  Enable around a measured region::

    from repro.metrics.perf import PERF

    with PERF.capture():          # enable + reset, restore on exit
        run_workload()
        snapshot = PERF.snapshot()
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PerfCounters:
    """Named monotonic counters plus accumulated stage timings."""

    __slots__ = ("enabled", "counters", "timings")

    def __init__(self) -> None:
        self.enabled = False
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.timings.clear()

    @contextmanager
    def capture(self, reset: bool = True) -> Iterator["PerfCounters"]:
        """Enable counting inside the block; restore prior state after."""
        previous = self.enabled
        if reset:
            self.reset()
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous

    # -- recording ------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + amount

    def peak(self, name: str, value: int) -> None:
        """Record a high-water mark (keeps the max seen under ``name``)."""
        if self.enabled and value > self.counters.get(name, 0):
            self.counters[name] = value

    def merge(self, counters: Dict[str, int]) -> None:
        """Fold a counter snapshot in (used for worker-process results).

        Plain counters add; ``*_peak`` names keep the maximum, matching
        :meth:`peak` semantics.
        """
        if not self.enabled:
            return
        for name, value in counters.items():
            if name.endswith("_peak"):
                self.peak(name, value)
            else:
                self.counters[name] = self.counters.get(name, 0) + value

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time under ``name`` while enabled."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.timings[name] = self.timings.get(name, 0.0) + (
                time.perf_counter() - started
            )

    # -- reading --------------------------------------------------------
    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": dict(self.counters), "timings_s": dict(self.timings)}

    def __repr__(self) -> str:
        return "PerfCounters(enabled={}, {} counters)".format(
            self.enabled, len(self.counters)
        )


def rss_peak_bytes() -> int:
    """This process's peak resident set size, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the scale
    harness reports it alongside per-request cost so memory growth with
    the user population is visible in the trajectory artifacts.  The
    value is a process-lifetime high-water mark, so within one process
    successive measurements only ever rise.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(peak)
    return int(peak) * 1024


#: process-global counter sink used by the proxy hot path
PERF = PerfCounters()
