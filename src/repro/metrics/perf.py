"""Hot-path performance counters (near-zero overhead when disabled).

The proxy's request path — signature dispatch, pending-instance wakes,
cache lookups, prefetch issuing — is instrumented with named counters
and per-stage wall-clock timings so benchmarks can assert *work done*
(regex attempts, candidates examined, retries) instead of flaky wall
time.  Everything funnels through one process-global
:class:`PerfCounters` instance, :data:`PERF`.

:class:`PerfCounters` is a thin facade over a
:class:`~repro.metrics.registry.MetricRegistry`: its ``counters`` and
``timings`` dicts *are* the registry's stores (same objects), so the
hot path keeps its raw-dict writes while labeled series, histograms,
and the Prometheus export live in the registry.  ``stage()``
additionally feeds a ``stage_seconds{stage=...}`` histogram so the
scale harness can report per-stage p50/p95/p99, not just totals.

Disabled (the default) the cost at a call site is one attribute load
and a branch; the hottest loops guard with ``if PERF.enabled:`` so not
even the call happens.  Enable around a measured region::

    from repro.metrics.perf import PERF

    with PERF.capture():          # enable + reset, restore on exit
        run_workload()
        snapshot = PERF.snapshot()
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.metrics.catalog import STAGE_SECONDS
from repro.metrics.registry import MetricRegistry


class PerfCounters:
    """Named monotonic counters plus accumulated stage timings."""

    __slots__ = ("enabled", "registry", "counters", "timings")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricRegistry()
        # facade: these are the registry's own stores, not copies —
        # reset() clears them in place so the aliases stay live
        self.counters: Dict[str, int] = self.registry.counters
        self.timings: Dict[str, float] = self.registry.timings

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.registry.reset()

    @contextmanager
    def capture(self, reset: bool = True) -> Iterator["PerfCounters"]:
        """Enable counting inside the block; restore prior state after."""
        previous = self.enabled
        if reset:
            self.reset()
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous

    # -- recording ------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + amount

    def peak(self, name: str, value: int) -> None:
        """Record a high-water mark (keeps the max seen under ``name``)."""
        if self.enabled and value > self.counters.get(name, 0):
            self.counters[name] = value

    def merge(self, snapshot: Dict) -> None:
        """Fold a worker-process snapshot in.

        Accepts either a plain counter dict (the historical shape) or a
        full :meth:`snapshot` dict (``counters`` + ``timings_s`` +
        ``histograms``), so pool runners fold back stage timings and
        histograms too instead of silently dropping them.  Plain
        counters add; ``*_peak`` names keep the maximum, matching
        :meth:`peak` semantics.
        """
        if not self.enabled:
            return
        if isinstance(snapshot.get("counters"), dict):
            # full snapshot: the registry owns the fold-back semantics
            # (peak counters keep max, histogram bounds must agree, new
            # series respect the cardinality guard)
            self.registry.merge(snapshot)
            return
        for name, value in snapshot.items():
            if name.split("{", 1)[0].endswith("_peak"):
                self.peak(name, value)
            else:
                self.counters[name] = self.counters.get(name, 0) + value

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time under ``name`` while enabled."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            self.registry.observe(STAGE_SECONDS, elapsed, labels={"stage": name})

    # -- reading --------------------------------------------------------
    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict]:
        data: Dict[str, Dict] = {
            "counters": dict(self.counters),
            "timings_s": dict(self.timings),
        }
        histograms = self.registry.snapshot_histograms()
        if histograms:
            data["histograms"] = histograms
        if self.registry.gauges:
            data["gauges"] = dict(self.registry.gauges)
        return data

    def __repr__(self) -> str:
        return "PerfCounters(enabled={}, {} counters)".format(
            self.enabled, len(self.counters)
        )


def rss_peak_bytes() -> int:
    """This process's peak resident set size, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the scale
    harness reports it alongside per-request cost so memory growth with
    the user population is visible in the trajectory artifacts.  The
    value is a process-lifetime high-water mark, so within one process
    successive measurements only ever rise.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(peak)
    return int(peak) * 1024


#: process-global counter sink used by the proxy hot path
PERF = PerfCounters()
