"""Measurement helpers: latency statistics and data-usage accounting."""

from repro.metrics.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    reduction,
    summarize_latencies,
)
from repro.metrics.usage import DataUsage

__all__ = [
    "DataUsage",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "reduction",
    "summarize_latencies",
]
