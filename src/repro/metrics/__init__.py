"""Measurement helpers: latency statistics, data-usage accounting,
hot-path performance counters, the labeled metric registry, and
request-lifecycle tracing."""

from repro.metrics.perf import PERF, PerfCounters
from repro.metrics.registry import Histogram, MetricRegistry
from repro.metrics.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    reduction,
    summarize_latencies,
)
from repro.metrics.trace import TRACER, Span, TraceContext, Tracer, validate_record
from repro.metrics.usage import DataUsage

__all__ = [
    "DataUsage",
    "Histogram",
    "MetricRegistry",
    "PERF",
    "PerfCounters",
    "Span",
    "TRACER",
    "TraceContext",
    "Tracer",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "reduction",
    "summarize_latencies",
    "validate_record",
]
