"""Measurement helpers: latency statistics, data-usage accounting, and
hot-path performance counters."""

from repro.metrics.perf import PERF, PerfCounters
from repro.metrics.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    reduction,
    summarize_latencies,
)
from repro.metrics.usage import DataUsage

__all__ = [
    "DataUsage",
    "PERF",
    "PerfCounters",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "reduction",
    "summarize_latencies",
]
