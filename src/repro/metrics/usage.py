"""Data-usage accounting (Fig. 16 bottom row, Fig. 17 annotations).

The paper measures "the size of responses transmitted between the
proxy and server, normalized to the size of the environment that does
not prefetch".
"""

from __future__ import annotations

from typing import Iterable

from repro.httpmsg.message import Transaction


class DataUsage:
    """Bytes between proxy (or client, in the Orig case) and servers."""

    def __init__(self) -> None:
        self.demand_bytes = 0
        self.prefetch_bytes = 0

    @property
    def total(self) -> int:
        return self.demand_bytes + self.prefetch_bytes

    def add_transactions(self, transactions: Iterable[Transaction]) -> None:
        for transaction in transactions:
            self.demand_bytes += (
                transaction.request.wire_size() + transaction.response.wire_size()
            )

    def normalized_to(self, baseline: "DataUsage") -> float:
        """This usage as a multiple of ``baseline`` (1.0 = identical)."""
        if baseline.total == 0:
            return 0.0
        return self.total / float(baseline.total)

    def __repr__(self) -> str:
        return "DataUsage(demand={}, prefetch={})".format(
            self.demand_bytes, self.prefetch_bytes
        )
