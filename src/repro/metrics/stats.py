"""Latency statistics used by the evaluation harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative probability) pairs for plotting a CDF."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def reduction(original: float, accelerated: float) -> float:
    """Fractional latency reduction (0.47 = '47% lower')."""
    if original <= 0:
        return 0.0
    return 1.0 - accelerated / original


def summarize_latencies(values: Sequence[float]) -> Dict[str, float]:
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "median": median(values),
        "p90": percentile(values, 90.0),
        "min": min(values),
        "max": max(values),
    }
