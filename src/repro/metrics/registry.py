"""Labeled metric registry: counters, gauges, fixed-bucket histograms.

One process-wide store for everything the serving core measures about
itself.  Series are addressed by a metric *name* plus an optional
label set — ``cache.miss{cause="miss_expired"}`` — and come in three
kinds:

* **counters** — monotonic sums (plain ``dict`` writes on the hot
  path, exactly what :mod:`repro.metrics.perf` has always done);
* **gauges** — last-written values (queue depths, shard counts);
* **histograms** — fixed-bucket latency distributions with a
  p50/p95/p99 readout estimated by linear interpolation inside the
  bucket holding the rank.

:data:`~repro.metrics.perf.PERF` is a thin facade over one registry:
its ``counters``/``timings`` dicts *are* the registry's stores, so
every existing ``PERF.incr`` call site is already writing labeled-less
series here, and ``PERF.stage`` feeds a ``stage_seconds{stage=...}``
histogram alongside the accumulated total.

Label cardinality is bounded per metric (``max_series_per_metric``):
once a metric has that many live series, further new label sets are
folded into one ``{overflow="true"}`` series instead of growing the
store without bound — label values must be *bounded* dimensions
(signature site, stage, outcome), never per-request values.

``snapshot()``/``merge()`` mirror the worker-process fold-back the
parallel experiment engine relies on, and ``render_prometheus()``
emits the text exposition format for scraping or file dumps.
"""

from __future__ import annotations

import os
import tempfile
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: default histogram bucket upper bounds, in seconds: 1 µs doubling up
#: to ~134 s, plus the implicit +Inf overflow bucket
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 2 ** i for i in range(28))


def series_key(name: str, labels: Optional[Dict[str, object]] = None) -> str:
    """Canonical series key: ``name`` or ``name{a="x",b="y"}`` (sorted)."""
    if not labels:
        return name
    return "{}{{{}}}".format(
        name,
        ",".join('{}="{}"'.format(k, labels[k]) for k in sorted(labels)),
    )


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`series_key` (labels come back as strings)."""
    if "{" not in key:
        return key, {}
    name, _, raw = key.partition("{")
    labels: Dict[str, str] = {}
    for part in raw.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value.strip('"')
    return name, labels


class Histogram:
    """Fixed-bucket histogram over non-negative values (seconds)."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        #: one slot per bound plus the +Inf overflow slot
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (linear within the bucket)."""
        if not self.count:
            return 0.0
        target = max(1.0, self.count * q / 100.0)
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            if not bucket:
                continue
            cumulative += bucket
            if cumulative >= target:
                lower = self.bounds[index - 1] if index else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                inside = (target - (cumulative - bucket)) / bucket
                return lower + (upper - lower) * inside
        return self.bounds[-1]  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, snapshot: Dict[str, object], name: Optional[str] = None) -> None:
        counts = list(snapshot["bucket_counts"])
        if tuple(snapshot["bounds"]) != self.bounds:
            raise ValueError(
                "cannot merge histogram{}: local bounds {} != snapshot "
                "bounds {}".format(
                    " {!r}".format(name) if name else "s",
                    self.bounds,
                    tuple(snapshot["bounds"]),
                )
            )
        for index, value in enumerate(counts):
            self.bucket_counts[index] += value
        self.count += int(snapshot["count"])
        self.sum += float(snapshot["sum"])

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:
        return "Histogram(count={}, sum={:.6f})".format(self.count, self.sum)


class MetricRegistry:
    """Process-wide labeled counters, gauges, timings, and histograms."""

    __slots__ = (
        "counters",
        "gauges",
        "timings",
        "histograms",
        "max_series_per_metric",
        "overflow_series",
        "_series_count",
    )

    def __init__(self, max_series_per_metric: int = 512) -> None:
        #: plain name (or series key) -> monotonic sum; shared with
        #: :class:`~repro.metrics.perf.PerfCounters` as its ``counters``
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: accumulated stage seconds, the facade's ``timings`` store
        self.timings: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.max_series_per_metric = max_series_per_metric
        self.overflow_series = 0
        self._series_count: Dict[str, int] = {}

    # -- keying ---------------------------------------------------------
    def _key(self, store: Dict[str, object], name: str, labels) -> str:
        if not labels:
            return name
        key = series_key(name, labels)
        if key in store:
            return key
        if dict(labels).get("overflow") == "true":
            # the guard's own sink series: always admitted and never
            # counted against the budget, so worker-side overflow
            # series fold back into it verbatim on merge
            return key
        used = self._series_count.get(name, 0)
        if used >= self.max_series_per_metric:
            self.overflow_series += 1
            return series_key(name, {"overflow": "true"})
        self._series_count[name] = used + 1
        return key

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: int = 1, labels=None) -> None:
        key = self._key(self.counters, name, labels)
        self.counters[key] = self.counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, labels=None) -> None:
        self.gauges[self._key(self.gauges, name, labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        labels=None,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        key = self._key(self.histograms, name, labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(bounds)
        histogram.observe(value)

    # -- reading --------------------------------------------------------
    def histogram(self, name: str, labels=None) -> Optional[Histogram]:
        return self.histograms.get(series_key(name, labels))

    def series(self, name: str) -> Iterator[Tuple[Dict[str, str], Histogram]]:
        """Every histogram series of ``name``: (labels, histogram)."""
        for key, histogram in self.histograms.items():
            base, labels = parse_series_key(key)
            if base == name:
                yield labels, histogram

    def percentiles(
        self, name: str, labels=None, qs: Sequence[float] = (50, 95, 99)
    ) -> Dict[str, float]:
        histogram = self.histogram(name, labels)
        if histogram is None:
            return {}
        return {"p{:g}".format(q): histogram.percentile(q) for q in qs}

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Clear every store *in place* (facade dicts stay aliased)."""
        self.counters.clear()
        self.gauges.clear()
        self.timings.clear()
        self.histograms.clear()
        self._series_count.clear()
        self.overflow_series = 0

    def snapshot_histograms(self) -> Dict[str, Dict[str, object]]:
        return {key: h.snapshot() for key, h in self.histograms.items()}

    def merge_histograms(self, snapshots: Dict[str, Dict[str, object]]) -> None:
        for key, snapshot in snapshots.items():
            histogram = self.histograms.get(key)
            if histogram is None:
                name, labels = parse_series_key(key)
                key = self._key(self.histograms, name, labels)
                histogram = self.histograms.get(key)
            if histogram is None:
                histogram = self.histograms[key] = Histogram(
                    tuple(snapshot["bounds"])
                )
            histogram.merge(snapshot, name=key)

    def snapshot(self) -> Dict[str, object]:
        """Full picklable registry state, for cross-process fold-back.

        The shape is what :meth:`merge` consumes — the sharded proxy
        fleet's workers each ship one of these back to the supervisor,
        which folds them into a single aggregate registry.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timings_s": dict(self.timings),
            "histograms": self.snapshot_histograms(),
            "overflow_series": self.overflow_series,
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Fold-back semantics — chosen so that merging is commutative and
        associative across any set of worker snapshots:

        * counters and timings **add**, except counters whose base name
          ends in ``_peak``, which keep the **maximum** (matching
          :meth:`~repro.metrics.perf.PerfCounters.peak`);
        * gauges keep the **maximum** (worker gauges are high-water
          marks once they cross process boundaries — a "last written"
          has no meaning across concurrent workers);
        * histograms merge bucket-wise and **raise** on mismatched
          bucket bounds rather than silently corrupting percentiles;
        * ``overflow_series`` adds.

        New labeled series are routed through the cardinality guard, so
        a merge cannot grow a metric past ``max_series_per_metric`` —
        excess series fold into ``{overflow="true"}`` exactly as live
        recording would, and overflow-labeled series from the worker
        side survive as themselves.
        """
        for key, value in (snapshot.get("counters") or {}).items():
            name, labels = parse_series_key(key)
            key = self._key(self.counters, name, labels)
            if name.endswith("_peak"):
                if value > self.counters.get(key, 0):
                    self.counters[key] = value
            else:
                self.counters[key] = self.counters.get(key, 0) + value
        for key, value in (snapshot.get("timings_s") or {}).items():
            name, labels = parse_series_key(key)
            key = self._key(self.timings, name, labels)
            self.timings[key] = self.timings.get(key, 0.0) + value
        for key, value in (snapshot.get("gauges") or {}).items():
            name, labels = parse_series_key(key)
            key = self._key(self.gauges, name, labels)
            if key not in self.gauges or value > self.gauges[key]:
                self.gauges[key] = value
        self.merge_histograms(snapshot.get("histograms") or {})
        self.overflow_series += int(snapshot.get("overflow_series") or 0)

    # -- export ---------------------------------------------------------
    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Text exposition format for every live series."""
        lines: List[str] = []
        emitted_types: Dict[str, str] = {}

        def emit(key: str, kind: str, suffix: str, value) -> None:
            name, labels = parse_series_key(key)
            metric = prefix + _sanitize(name) + suffix
            if metric not in emitted_types:
                emitted_types[metric] = kind
                lines.append("# TYPE {} {}".format(metric, kind))
            lines.append(
                "{}{} {}".format(metric, _label_text(labels), _fmt(value))
            )

        for key in sorted(self.counters):
            emit(key, "counter", "_total", self.counters[key])
        for key in sorted(self.timings):
            emit(key, "counter", "_seconds_total", self.timings[key])
        for key in sorted(self.gauges):
            emit(key, "gauge", "", self.gauges[key])
        for key in sorted(self.histograms):
            histogram = self.histograms[key]
            name, labels = parse_series_key(key)
            metric = prefix + _sanitize(name)
            if metric not in emitted_types:
                emitted_types[metric] = "histogram"
                lines.append("# TYPE {} histogram".format(metric))
            cumulative = 0
            bucket_bounds = list(histogram.bounds) + [float("inf")]
            for bound, count in zip(bucket_bounds, histogram.bucket_counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _fmt(bound)
                lines.append(
                    "{}_bucket{} {}".format(
                        metric, _label_text(bucket_labels), cumulative
                    )
                )
            label_text = _label_text(labels)
            lines.append("{}_sum{} {}".format(metric, label_text, _fmt(histogram.sum)))
            lines.append("{}_count{} {}".format(metric, label_text, histogram.count))
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_prometheus(self, path: str, prefix: str = "repro_") -> str:
        """Atomically write :meth:`render_prometheus` output to ``path``.

        The text lands in a temp file next to ``path`` and is moved
        into place with ``os.replace``, so a scraper (or a concurrent
        fleet supervisor) never reads a half-written exposition.
        """
        text = self.render_prometheus(prefix=prefix)
        directory = os.path.dirname(os.path.abspath(path))
        handle, tmp_path = tempfile.mkstemp(
            prefix=".prom-", dir=directory or None
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(text)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return text

    def __repr__(self) -> str:
        return "MetricRegistry({} counters, {} histograms)".format(
            len(self.counters), len(self.histograms)
        )


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _escape_label_value(value) -> str:
    """Escape per the exposition spec: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_text(labels: Dict[str, object]) -> str:
    """``{a="x",b="y"}`` with spec-escaped values ('' when unlabeled)."""
    if not labels:
        return ""
    return "{{{}}}".format(
        ",".join(
            '{}="{}"'.format(_sanitize(k), _escape_label_value(v))
            for k, v in sorted(labels.items())
        )
    )


def _fmt(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float):
        return repr(value)
    return str(value)
