"""The metric, label, and span-name catalog: every observable series.

The registry (:mod:`repro.metrics.registry`), the PERF facade
(:mod:`repro.metrics.perf`), and the tracer (:mod:`repro.metrics.trace`)
all address series by *string name* — and the sharded fleet's
supervisor fold-back (:mod:`repro.experiments.fleet`) matches those
strings across process boundaries.  A typo'd name therefore does not
crash; it silently forks a parallel series that no merge, no dashboard,
and no CI gate ever looks at.  This module is the single place those
names are declared, and ``python -m repro lint`` statically extracts
every name used at a call site and fails on anything undeclared
(rule family ``met-*`` in :mod:`repro.qa.rules.metrics_hygiene`).

Conventions
-----------
* **Unlabeled counters** (:data:`COUNTERS`) are the dotted
  ``PERF.incr`` names the hot path bumps (``matcher.regex_attempts``).
* **Counter prefixes** (:data:`COUNTER_PREFIXES`) declare the few
  dynamically-suffixed families (``cache.miss.<cause>``) together with
  the *bounded* value set the suffix must come from — an unbounded
  suffix would be a cardinality leak, which is exactly what the lint
  rule exists to refuse.
* **Labeled metrics** (:data:`METRICS`) are registry series with their
  allowed label keys; label values must be bounded dimensions
  (signature site, stage, outcome), never per-request values.
* **Stage and span names** (:data:`PERF_STAGES`, :data:`SPAN_STAGES`)
  plus :data:`LOOKUP_OUTCOMES` / :data:`TRACE_KINDS` round out every
  vocabulary the trace schema validates.

Adding a metric is a two-line change: declare it here, then record it
at the call site through the constant (never a fresh string literal).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class MetricSpec:
    """One declared labeled series: name, kind, allowed label keys."""

    __slots__ = ("name", "kind", "labels", "doc")

    def __init__(self, name: str, kind: str, labels: Tuple[str, ...], doc: str) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError("kind must be counter/gauge/histogram, got {!r}".format(kind))
        self.name = name
        self.kind = kind
        self.labels = labels
        self.doc = doc

    def __repr__(self) -> str:
        return "MetricSpec({!r}, {}, labels={})".format(self.name, self.kind, self.labels)


# ======================================================================
# trace vocabulary (the schema in repro.metrics.trace validates these)
# ======================================================================
#: canonical per-request span/stage names a trace span may carry
SPAN_STAGES: Tuple[str, ...] = (
    "match",
    "cache_lookup",
    "origin_fetch",
    "learn",
    "learn_drain",
    "instantiate",
    "prefetch_issue",
    "store",
)

#: every legal ``outcome`` tag of a ``cache_lookup`` span
LOOKUP_OUTCOMES: Tuple[str, ...] = (
    "hit",
    "miss_expired",
    "miss_absent",
    "wildcard_pending",
    "disabled",
    "unmatched",
    "not_successor",
    "passthrough",
)

#: the miss causes reported per request class (everything but a hit)
MISS_CAUSES: Tuple[str, ...] = tuple(o for o in LOOKUP_OUTCOMES if o != "hit")

#: trace record kinds (client requests, background prefetches, §5
#: refreshes, run-level spanless summaries, SLO burn-rate alerts)
TRACE_KINDS: Tuple[str, ...] = ("request", "prefetch", "refresh", "summary", "alert")

#: wall-clock stages accumulated by ``PERF.stage`` on the serving path
PERF_STAGES: Tuple[str, ...] = (
    "pass",
    "proxy.dispatch",
    "proxy.cache_lookup",
    "proxy.learn",
    "proxy.learn_drain",
)


# ======================================================================
# labeled registry series
# ======================================================================
#: histogram of per-stage wall seconds fed by ``PERF.stage``
STAGE_SECONDS = "stage_seconds"
#: histogram of sampled trace-span wall seconds fed by the tracer
SPAN_WALL_SECONDS = "span_wall_seconds"
#: counter of span outcomes (cache_lookup hits/miss causes, issue gates)
SPAN_OUTCOMES = "span_outcomes"
#: counter of trace records by kind (the stats rebuild path)
TRACES = "traces"
#: per-signature prefetch-cache hits
PREFETCH_HITS = "prefetch_hits"
#: per-signature prefetch issues
PREFETCH_ISSUED = "prefetch_issued"
#: per-signature entries that left the cache without serving a hit
PREFETCH_WASTED = "prefetch_wasted"

METRICS: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        MetricSpec(STAGE_SECONDS, "histogram", ("stage",),
                   "wall seconds per serving stage (PERF.stage)"),
        MetricSpec(SPAN_WALL_SECONDS, "histogram", ("stage",),
                   "wall seconds per sampled trace span"),
        MetricSpec(SPAN_OUTCOMES, "counter", ("stage", "outcome"),
                   "span outcome tags (hit / miss causes / issue gates)"),
        MetricSpec(TRACES, "counter", ("kind",),
                   "trace records by kind"),
        MetricSpec(PREFETCH_HITS, "counter", ("signature",),
                   "prefetch-cache hits per signature site"),
        MetricSpec(PREFETCH_ISSUED, "counter", ("signature",),
                   "prefetches issued per signature site"),
        MetricSpec(PREFETCH_WASTED, "counter", ("signature",),
                   "prefetched entries evicted/expired unserved, per site"),
    )
}


# ======================================================================
# unlabeled PERF counters (dotted hot-path names)
# ======================================================================
COUNTERS: Dict[str, str] = {
    "analysis_cache.hits": "artifact-cache hits in prepare_app",
    "analysis_cache.misses": "artifact-cache misses in prepare_app",
    "analysis_cache.writes": "artifact-cache writes",
    "analysis_cache.invalidated": "artifact-cache entries dropped",
    "cache.stores": "prefetch-cache inserts",
    "cache.lookups": "per-user exact-match cache probes",
    "cache.lookup_hits": "cache probes answered from a prefetched entry",
    "cache.expired_on_lookup": "entries found expired at probe time",
    "cache.lru_evictions": "entries evicted by per-user/global LRU bounds",
    "cache.wheel_purged": "entries removed by timer-wheel expiry sweeps",
    "experiments.cells": "sweep cells planned by the parallel engine",
    "experiments.parallel_cells": "cells dispatched to the process pool",
    "experiments.fallback_serial": "sweeps where the pool lost break-even",
    "experiments.pool_reuse": "warm shared-pool reuses across sweeps",
    "expiration.probes": "§4.3 expiration-estimator probe fetches",
    "expiration.disabled": "signatures disabled by probe errors",
    "history.issued": "prefetches issued by the PALOMA-style baseline",
    "learn.deferred_drained": "observations processed by the deferred learn drain",
    "learn.queue_depth_peak": "high-water mark of the deferred learn queue",
    "learn.queue_overflow": "observations dropped by a full deferred learn queue",
    "learner.enqueued": "pending successor instances enqueued",
    "learner.wake_retries": "pending-instance wake-index retries",
    "matcher.requests": "signature-dispatch attempts",
    "matcher.memo_hits": "dispatch answers served from the exact-key memo",
    "matcher.candidates": "candidate signatures examined (indexed path)",
    "matcher.candidate_checks": "candidate pre-check evaluations",
    "matcher.anchor_rejects": "candidates rejected by anchor pre-checks",
    "matcher.regex_attempts": "full regex matches attempted (indexed path)",
    "matcher.naive_regex_attempts": "regex attempts in the naive oracle scan",
    "prefetch.submitted": "ready instances submitted to the prefetcher",
    "prefetch.issued": "prefetch fetches actually issued",
    "prefetch.queue_peak": "high-water mark of the waiting prefetch queue",
    "prefetch.stale_heap_entries": "lazy-drain heap entries skipped as stale",
    "prefetch.wasted": "prefetched entries that never served a hit",
    "sim.events": "simulator events processed",
    "sim.inline_starts": "zero-delay child processes started inline",
    "backpressure.budget_grow": "deferred-drain budget growths by the backpressure loop",
    "backpressure.budget_shrink": "deferred-drain budget decays back toward base",
    "backpressure.admission_tighten": "admission-threshold raises under sustained burn",
    "backpressure.admission_relax": "admission-threshold relaxations after burn clears",
    "slo.alerts": "burn-rate alerts raised by the SLO engine",
    "slo.evaluations": "SLO evaluation passes over the live windows",
    "telemetry.ticks": "live-telemetry sampling ticks",
    "heartbeat.sent": "windowed telemetry heartbeats shipped to the supervisor",
}

#: the prefix of every per-cause cache-miss counter
CACHE_MISS_PREFIX = "cache.miss."

#: dynamically-suffixed counter families: prefix -> the bounded value
#: set the suffix is drawn from (unbounded suffixes are a cardinality
#: leak and the lint gate refuses them)
COUNTER_PREFIXES: Dict[str, Tuple[str, ...]] = {
    CACHE_MISS_PREFIX: MISS_CAUSES,
}


# ======================================================================
# rolling-window series (the live telemetry plane, repro.metrics.live)
# ======================================================================
#: sliding-window histogram of served request latency (seconds)
W_REQUEST = "proxy.request"
#: sliding-window histogram of deferred learn-drain wall seconds
W_LEARN = "proxy.learn"
#: requests answered (hit + forwarded), sampled per telemetry tick
W_ANSWERED = "proxy.answered"
#: requests slower than the latency objective's good_under threshold
W_REQUEST_SLOW = "proxy.request_slow"
#: requests served from a prefetched entry
W_HITS = "cache.hits"
#: observations dropped by a full deferred learn queue
W_OVERFLOW = "learn.queue_overflow"
#: prefetched entries that left the cache unserved
W_WASTED = "prefetch.wasted"

#: every declared rolling-window series name -> its kind; the live
#: plane refuses undeclared names at runtime and the ``met-*`` lint
#: family checks ``windows.inc/observe`` call sites against this map
WINDOWS: Dict[str, str] = {
    W_REQUEST: "histogram",
    W_LEARN: "histogram",
    W_ANSWERED: "counter",
    W_REQUEST_SLOW: "counter",
    W_HITS: "counter",
    W_OVERFLOW: "counter",
    W_WASTED: "counter",
}


# ======================================================================
# lookup helpers (used by repro.qa.rules.metrics_hygiene)
# ======================================================================
def is_declared_counter(name: str) -> bool:
    """Is ``name`` a declared unlabeled counter (exact or prefix form)?"""
    if name in COUNTERS:
        return True
    for prefix, values in COUNTER_PREFIXES.items():
        if name.startswith(prefix) and name[len(prefix):] in values:
            return True
    return False


def declared_prefix_of(name: str) -> Optional[str]:
    """The declared dynamic prefix ``name`` starts with, if any."""
    for prefix in COUNTER_PREFIXES:
        if name.startswith(prefix):
            return prefix
    return None


def is_declared_name(name: str) -> bool:
    """Is ``name`` any declared metric (labeled series or counter)?"""
    return name in METRICS or is_declared_counter(name)


def is_declared_window(name: str) -> bool:
    """Is ``name`` a declared rolling-window series?"""
    return name in WINDOWS


def labels_for(name: str) -> Optional[Tuple[str, ...]]:
    """Allowed label keys of a labeled metric (None if undeclared)."""
    spec = METRICS.get(name)
    return spec.labels if spec is not None else None
