"""Live telemetry plane: deterministic rolling windows + heartbeats.

The registry (:mod:`repro.metrics.registry`) accumulates *run-total*
series: perfect for a post-run report, useless for answering "what is
the p99 **right now**" while a 100k-user fleet cell is still serving.
This module adds the missing time dimension as **ring-of-buckets
sliding windows** driven entirely by the simulator clock:

* :class:`RollingCounter` / :class:`RollingHistogram` — a fixed number
  of ``bucket_width``-second buckets addressed by the *absolute* bucket
  index ``int(now // bucket_width)``.  Advancing the window is just
  pruning indices older than the horizon; no wall clock, no timers, so
  a seeded run produces byte-identical windows every time, and two
  shards replaying the same virtual-time horizon produce *aligned*
  buckets that merge bucket-wise (commutative and associative — the
  same contract :meth:`MetricRegistry.merge` keeps for run totals).
* :class:`LiveWindows` — the named collection of windows declared in
  :data:`repro.metrics.catalog.WINDOWS` (undeclared names are refused
  at runtime, mirroring the ``met-*`` lint family), with snapshot /
  merge for the fleet heartbeat protocol.
* :class:`LiveTelemetry` — the per-process plane: samples cumulative
  proxy/learner counters into per-tick window deltas, feeds per-request
  latency observations, runs the SLO engine and backpressure controller
  each tick, and ships compact heartbeat payloads to a sink (the fleet
  worker's results queue) every ``heartbeat_interval`` virtual seconds.

Overhead when disabled is literally zero: the scale harness only
constructs a plane when ``--slo`` / ``--telemetry`` /
``--heartbeat-interval`` ask for one, and the per-request hook is a
single ``is None`` branch (CI gates the enabled cost at <5%).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics import catalog
from repro.metrics.perf import PERF
from repro.metrics.registry import DEFAULT_BUCKETS, Histogram
from repro.metrics.trace import TRACER

#: default sliding-window horizon (virtual seconds) and resolution
DEFAULT_WINDOW_S = 10.0
DEFAULT_NUM_BUCKETS = 20
#: default telemetry tick / heartbeat cadence (virtual seconds)
DEFAULT_TICK_S = 0.5
DEFAULT_HEARTBEAT_S = 1.0


class RollingCounter:
    """A sliding-window sum over ``num_buckets`` fixed-width buckets.

    Buckets are keyed by the absolute index ``int(now // width)`` so
    the mapping from virtual time to bucket never depends on when the
    window was created — the property that makes cross-shard merges
    alignment-safe.  Reads prune lazily; writes prune on bucket roll.
    """

    __slots__ = ("bucket_width", "num_buckets", "buckets", "_head")

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if window_s <= 0 or num_buckets <= 0:
            raise ValueError("window_s and num_buckets must be positive")
        self.bucket_width = window_s / num_buckets
        self.num_buckets = num_buckets
        self.buckets: Dict[int, float] = {}
        self._head = 0

    # -- writing --------------------------------------------------------
    def inc(self, now: float, amount: float = 1) -> None:
        index = int(now // self.bucket_width)
        if index > self._head:
            self._head = index
            self._prune()
        self.buckets[index] = self.buckets.get(index, 0) + amount

    def _prune(self) -> None:
        floor = self._head - self.num_buckets + 1
        for index in [i for i in self.buckets if i < floor]:
            del self.buckets[index]

    # -- reading --------------------------------------------------------
    def _live_indices(self, now: float, horizon_s: Optional[float]) -> range:
        head = int(now // self.bucket_width)
        span = self.num_buckets
        if horizon_s is not None:
            span = min(span, max(1, int(round(horizon_s / self.bucket_width))))
        return range(head - span + 1, head + 1)

    def total(self, now: float, horizon_s: Optional[float] = None) -> float:
        """Windowed sum ending at ``now`` (optionally a shorter horizon)."""
        return sum(
            self.buckets.get(i, 0) for i in self._live_indices(now, horizon_s)
        )

    def rate(self, now: float, horizon_s: Optional[float] = None) -> float:
        """Windowed per-second rate ending at ``now``."""
        indices = self._live_indices(now, horizon_s)
        return self.total(now, horizon_s) / (len(indices) * self.bucket_width)

    # -- fleet fold-back ------------------------------------------------
    def snapshot(self) -> List[List[float]]:
        return [[index, self.buckets[index]] for index in sorted(self.buckets)]

    def merge(self, snapshot: Sequence[Sequence[float]]) -> None:
        for index, value in snapshot:
            index = int(index)
            self.buckets[index] = self.buckets.get(index, 0) + value
            if index > self._head:
                self._head = index
        self._prune()


class RollingHistogram:
    """A sliding window of per-bucket :class:`Histogram` states.

    Each time bucket holds a full fixed-bound histogram; windowed
    percentiles fold the live time buckets into one histogram and read
    it the same way the registry does, so windowed p99 and run-total
    p99 share one estimator.
    """

    __slots__ = ("bucket_width", "num_buckets", "bounds", "buckets", "_head")

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if window_s <= 0 or num_buckets <= 0:
            raise ValueError("window_s and num_buckets must be positive")
        self.bucket_width = window_s / num_buckets
        self.num_buckets = num_buckets
        self.bounds = tuple(bounds)
        self.buckets: Dict[int, Histogram] = {}
        self._head = 0

    # -- writing --------------------------------------------------------
    def _bucket(self, now: float) -> Histogram:
        index = int(now // self.bucket_width)
        if index > self._head:
            self._head = index
            self._prune()
        histogram = self.buckets.get(index)
        if histogram is None:
            histogram = self.buckets[index] = Histogram(self.bounds)
        return histogram

    def observe(self, now: float, value: float) -> None:
        self._bucket(now).observe(value)

    def add_counts(
        self,
        now: float,
        bucket_counts: Sequence[int],
        count: int,
        total: float,
    ) -> None:
        """Fold a histogram *delta* (e.g. a per-tick registry diff) in."""
        if not count:
            return
        self._bucket(now).merge(
            {
                "bounds": self.bounds,
                "bucket_counts": list(bucket_counts),
                "count": count,
                "sum": total,
            }
        )

    def _prune(self) -> None:
        floor = self._head - self.num_buckets + 1
        for index in [i for i in self.buckets if i < floor]:
            del self.buckets[index]

    # -- reading --------------------------------------------------------
    def _live_indices(self, now: float, horizon_s: Optional[float]) -> range:
        head = int(now // self.bucket_width)
        span = self.num_buckets
        if horizon_s is not None:
            span = min(span, max(1, int(round(horizon_s / self.bucket_width))))
        return range(head - span + 1, head + 1)

    def fold(self, now: float, horizon_s: Optional[float] = None) -> Histogram:
        """One combined histogram over the live window ending at ``now``."""
        combined = Histogram(self.bounds)
        for index in self._live_indices(now, horizon_s):
            histogram = self.buckets.get(index)
            if histogram is not None:
                combined.merge(histogram.snapshot())
        return combined

    def count(self, now: float, horizon_s: Optional[float] = None) -> int:
        return sum(
            self.buckets[i].count
            for i in self._live_indices(now, horizon_s)
            if i in self.buckets
        )

    def percentile(
        self, now: float, q: float, horizon_s: Optional[float] = None
    ) -> float:
        return self.fold(now, horizon_s).percentile(q)

    # -- fleet fold-back ------------------------------------------------
    def snapshot(self) -> List[List[object]]:
        return [
            [index, list(h.bucket_counts), h.count, h.sum]
            for index, h in sorted(self.buckets.items())
        ]

    def merge(self, snapshot: Sequence[Sequence[object]]) -> None:
        for index, counts, count, total in snapshot:
            index = int(index)
            self._bucket(index * self.bucket_width).merge(
                {
                    "bounds": self.bounds,
                    "bucket_counts": list(counts),
                    "count": count,
                    "sum": total,
                }
            )
            if index > self._head:
                self._head = index
        self._prune()


class LiveWindows:
    """The catalog-declared set of rolling windows for one process."""

    __slots__ = ("window_s", "num_buckets", "counters", "histograms")

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.window_s = float(window_s)
        self.num_buckets = int(num_buckets)
        self.counters: Dict[str, RollingCounter] = {}
        self.histograms: Dict[str, RollingHistogram] = {}
        for name, kind in catalog.WINDOWS.items():
            if kind == "histogram":
                self.histograms[name] = RollingHistogram(
                    window_s, num_buckets, bounds
                )
            else:
                self.counters[name] = RollingCounter(window_s, num_buckets)

    # -- writing --------------------------------------------------------
    def inc(self, name: str, now: float, amount: float = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            raise KeyError(
                "undeclared rolling-window counter {!r}; declare it in "
                "repro.metrics.catalog.WINDOWS".format(name)
            )
        counter.inc(now, amount)

    def observe(self, name: str, now: float, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            raise KeyError(
                "undeclared rolling-window histogram {!r}; declare it in "
                "repro.metrics.catalog.WINDOWS".format(name)
            )
        histogram.observe(now, value)

    def add_histogram_counts(
        self,
        name: str,
        now: float,
        bucket_counts: Sequence[int],
        count: int,
        total: float,
    ) -> None:
        self.histograms[name].add_counts(now, bucket_counts, count, total)

    # -- reading --------------------------------------------------------
    def total(
        self, name: str, now: float, horizon_s: Optional[float] = None
    ) -> float:
        if name in self.counters:
            return self.counters[name].total(now, horizon_s)
        return float(self.histograms[name].count(now, horizon_s))

    def rate(
        self, name: str, now: float, horizon_s: Optional[float] = None
    ) -> float:
        counter = self.counters.get(name)
        if counter is not None:
            return counter.rate(now, horizon_s)
        histogram = self.histograms[name]
        indices = histogram._live_indices(now, horizon_s)
        return histogram.count(now, horizon_s) / (
            len(indices) * histogram.bucket_width
        )

    def percentile(
        self, name: str, now: float, q: float, horizon_s: Optional[float] = None
    ) -> float:
        return self.histograms[name].percentile(now, q, horizon_s)

    # -- fleet fold-back ------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Compact picklable window state (the heartbeat payload body)."""
        return {
            "window_s": self.window_s,
            "num_buckets": self.num_buckets,
            "counters": {n: c.snapshot() for n, c in self.counters.items()},
            "histograms": {
                n: {"bounds": list(h.bounds), "buckets": h.snapshot()}
                for n, h in self.histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another process's :meth:`snapshot` in (bucket-aligned).

        Raises :class:`ValueError` on geometry or bound mismatches —
        silently merging misaligned windows would corrupt every
        windowed rate the supervisor reports.
        """
        if (
            snapshot.get("window_s") != self.window_s
            or snapshot.get("num_buckets") != self.num_buckets
        ):
            raise ValueError(
                "cannot merge live windows with different geometry: "
                "local window_s={} num_buckets={}, snapshot window_s={} "
                "num_buckets={}".format(
                    self.window_s,
                    self.num_buckets,
                    snapshot.get("window_s"),
                    snapshot.get("num_buckets"),
                )
            )
        for name, data in (snapshot.get("counters") or {}).items():
            if name in self.counters:
                self.counters[name].merge(data)
        for name, data in (snapshot.get("histograms") or {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                continue
            if tuple(data["bounds"]) != histogram.bounds:
                raise ValueError(
                    "cannot merge rolling histogram {!r}: local bounds "
                    "{} != snapshot bounds {}".format(
                        name, histogram.bounds, tuple(data["bounds"])
                    )
                )
            histogram.merge(data["buckets"])

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "LiveWindows":
        bounds: Sequence[float] = DEFAULT_BUCKETS
        for data in (snapshot.get("histograms") or {}).values():
            bounds = tuple(data["bounds"])
            break
        windows = cls(
            window_s=float(snapshot["window_s"]),
            num_buckets=int(snapshot["num_buckets"]),
            bounds=bounds,
        )
        windows.merge(snapshot)
        return windows


def standard_readings(windows: LiveWindows, now: float) -> Dict[str, object]:
    """The canonical windowed readout: rates, ratios, percentiles."""
    answered = windows.total(catalog.W_ANSWERED, now)
    hits = windows.total(catalog.W_HITS, now)
    request = windows.histograms[catalog.W_REQUEST].fold(now)
    learn = windows.histograms[catalog.W_LEARN].fold(now)
    return {
        "sim_now": now,
        "window_s": windows.window_s,
        "request_rate": windows.rate(catalog.W_REQUEST, now),
        "requests": request.count,
        "request_p50_ms": request.percentile(50) * 1e3,
        "request_p95_ms": request.percentile(95) * 1e3,
        "request_p99_ms": request.percentile(99) * 1e3,
        "learn_events": learn.count,
        "learn_p99_us": learn.percentile(99) * 1e6,
        "hit_rate": hits / answered if answered else 0.0,
        "overflow": windows.total(catalog.W_OVERFLOW, now),
        "wasted": windows.total(catalog.W_WASTED, now),
    }


class LiveTelemetry:
    """One process's live plane: sampling, SLO, backpressure, heartbeat.

    ``proxies`` is the list of :class:`AccelerationProxy` instances this
    process serves (one per app).  Each :meth:`tick` diffs their
    cumulative counters (hits, answered, learner overflows, wasted
    prefetches) into the current window bucket, folds the per-tick
    delta of the registry's ``stage_seconds{stage=proxy.learn}``
    histogram into the learn window (zero extra hot-path work), then
    lets the SLO engine and backpressure controller read the windows.
    """

    def __init__(
        self,
        proxies: Sequence[object],
        windows: Optional[LiveWindows] = None,
        slo: Optional[object] = None,
        backpressure: Optional[object] = None,
        interval_s: float = DEFAULT_TICK_S,
        heartbeat_interval: Optional[float] = None,
        heartbeat_sink: Optional[Callable[[Dict[str, object]], None]] = None,
        shard: Optional[int] = None,
        requests_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        self.proxies = list(proxies)
        self.windows = windows if windows is not None else LiveWindows()
        self.slo = slo
        self.backpressure = backpressure
        self.interval_s = float(interval_s)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_sink = heartbeat_sink
        self.shard = shard
        self.requests_fn = requests_fn
        self.alerts: List[Dict[str, object]] = []
        self.heartbeats_sent = 0
        self.ticks = 0
        #: the last virtual instant the plane observed serving work.
        #: End-of-run reads anchor here instead of the simulator's
        #: final clock: terminal events (in-flight prefetch chains,
        #: estimator probes) can run the clock far past ``duration``,
        #: and a window read there would have slid past the whole run.
        self.last_now = 0.0
        #: latency threshold (seconds) above which a request is "slow";
        #: wired from the SLO latency objective when one is configured
        self.slow_threshold_s: Optional[float] = None
        if slo is not None:
            self.slow_threshold_s = getattr(slo, "slow_threshold_s", None)
        self._next_heartbeat = (
            heartbeat_interval if heartbeat_interval is not None else None
        )
        self._prev: Dict[str, float] = {}
        self._prev_learn: Optional[Dict[str, object]] = None

    # -- per-request hook (the only hot-path touch) ---------------------
    def on_request(self, latency_s: float, now: float) -> None:
        if now > self.last_now:
            self.last_now = now
        self.windows.observe(catalog.W_REQUEST, now, latency_s)
        if self.slow_threshold_s is not None and latency_s > self.slow_threshold_s:
            self.windows.inc(catalog.W_REQUEST_SLOW, now)

    # -- periodic tick --------------------------------------------------
    def _cumulative(self) -> Dict[str, float]:
        served = forwarded = overflow = wasted = 0.0
        for proxy in self.proxies:
            served += proxy.served_prefetched
            forwarded += proxy.forwarded
            learner = getattr(proxy, "learner", None)
            if learner is not None:
                overflow += getattr(learner, "queue_overflows", 0)
            cache = getattr(proxy, "cache", None)
            if cache is not None:
                wasted += getattr(cache, "wasted", 0)
        return {
            "hits": served,
            "answered": served + forwarded,
            "overflow": overflow,
            "wasted": wasted,
        }

    def _sample_deltas(self, now: float) -> None:
        current = self._cumulative()
        deltas = {
            key: current[key] - self._prev.get(key, 0.0) for key in current
        }
        self._prev = current
        if deltas["hits"]:
            self.windows.inc(catalog.W_HITS, now, deltas["hits"])
        if deltas["answered"]:
            self.windows.inc(catalog.W_ANSWERED, now, deltas["answered"])
        if deltas["overflow"]:
            self.windows.inc(catalog.W_OVERFLOW, now, deltas["overflow"])
        if deltas["wasted"]:
            self.windows.inc(catalog.W_WASTED, now, deltas["wasted"])
        # fold the per-tick delta of the registry's learn-stage
        # histogram into the learn window: the deferred drain already
        # observes every batch there, so the live plane costs the
        # serving path nothing extra
        histogram = PERF.registry.histogram(
            catalog.STAGE_SECONDS, {"stage": "proxy.learn"}
        )
        if histogram is not None and tuple(histogram.bounds) == tuple(
            self.windows.histograms[catalog.W_LEARN].bounds
        ):
            snap = histogram.snapshot()
            prev = self._prev_learn
            if prev is None:
                delta_counts = list(snap["bucket_counts"])
                delta_count = int(snap["count"])
                delta_sum = float(snap["sum"])
            else:
                delta_counts = [
                    a - b
                    for a, b in zip(snap["bucket_counts"], prev["bucket_counts"])
                ]
                delta_count = int(snap["count"]) - int(prev["count"])
                delta_sum = float(snap["sum"]) - float(prev["sum"])
            self._prev_learn = snap
            if delta_count > 0:
                self.windows.add_histogram_counts(
                    catalog.W_LEARN, now, delta_counts, delta_count, delta_sum
                )

    def tick(self, now: float) -> None:
        """One telemetry pass: sample, evaluate SLOs, actuate, heartbeat."""
        self.ticks += 1
        if now > self.last_now:
            self.last_now = now
        PERF.incr("telemetry.ticks")
        self._sample_deltas(now)
        burning: Dict[str, bool] = {}
        if self.slo is not None:
            new_alerts, burning = self.slo.evaluate(self.windows, now)
            for alert in new_alerts:
                self.alerts.append(alert)
                PERF.incr("slo.alerts")
                TRACER.append_record(_alert_record(alert, self.shard))
        if self.backpressure is not None:
            self.backpressure.tick(now, burning)
        if self._next_heartbeat is not None and now >= self._next_heartbeat:
            self.send_heartbeat(now)
            interval = self.heartbeat_interval or DEFAULT_HEARTBEAT_S
            while self._next_heartbeat <= now:
                self._next_heartbeat += interval

    def finalize(self) -> None:
        """Last sample at run end so trailing deltas land in a window.

        Anchored at :attr:`last_now` — counter increments from
        terminal events are attributed to the final serving instant,
        keeping them inside the window the end-of-run verdict reads.
        """
        self._sample_deltas(self.last_now)

    # -- heartbeat protocol ---------------------------------------------
    def heartbeat_payload(self, now: float) -> Dict[str, object]:
        queue_depth = 0
        for proxy in self.proxies:
            learner = getattr(proxy, "learner", None)
            if learner is not None:
                queue_depth += getattr(learner, "learn_queue_depth", 0)
        return {
            "shard": self.shard,
            "sim_now": now,
            "requests": self.requests_fn() if self.requests_fn else None,
            "queue_depth": queue_depth,
            "alerts": len(self.alerts),
            "readings": standard_readings(self.windows, now),
            "windows": self.windows.snapshot(),
        }

    def send_heartbeat(self, now: float) -> None:
        if self.heartbeat_sink is None:
            return
        self.heartbeat_sink(self.heartbeat_payload(now))
        self.heartbeats_sent += 1
        PERF.incr("heartbeat.sent")

    # -- end-of-run summary ---------------------------------------------
    def summary(self, now: float) -> Dict[str, object]:
        return {
            "ticks": self.ticks,
            "heartbeats_sent": self.heartbeats_sent,
            "alerts": len(self.alerts),
            "readings": standard_readings(self.windows, now),
            "snapshot": self.windows.snapshot(),
        }


def _alert_record(alert: Dict[str, object], shard: Optional[int]) -> Dict[str, object]:
    """An SLO alert as a spanless trace record (``kind=alert``)."""
    tags = {str(k): v for k, v in alert.items()}
    if shard is not None:
        tags["shard"] = shard
    return {
        "trace_id": "alert:{}:{:06d}".format(
            alert.get("objective", "?"), int(alert.get("seq", 0))
        ),
        "user": "-",
        "kind": "alert",
        "spans": [],
        "tags": tags,
    }
