"""Per-request lifecycle tracing for the serving core.

The proxy decides per request whether to serve from the prefetch
cache, instantiate successors, or fall through to the origin (§4.5,
Fig. 10).  Aggregate counters say *how often* each happened; traces
say *which stage* of *which signature* a given request spent its time
in, and *why* a cache lookup missed.  One :class:`TraceContext` is
threaded through ``MultiAppProxy.handle_request`` →
``AccelerationProxy.handle_request`` → ``DynamicLearner`` →
``Prefetcher``/``Refresher``, collecting one :class:`Span` per stage:

========================  ====================================================
stage                     meaning
========================  ====================================================
``match``                 signature dispatch (indexed matcher)
``cache_lookup``          per-user exact-match cache probe
``origin_fetch``          proxy → origin round trip (misses, passthrough)
``learn``                 run-time value learning from the transaction
``instantiate``           successor spawning + pending-instance drain
``prefetch_issue``        prefetcher policy gates for one ready request
``store``                 cache insert of a fetched response
========================  ====================================================

``cache_lookup`` spans carry the per-request **outcome** tag — one of
:data:`LOOKUP_OUTCOMES` (``hit``, ``miss_expired``, ``miss_absent``,
``wildcard_pending``, ``disabled``, ``unmatched``, ``not_successor``,
``passthrough``) — plus the signature id and the user shard, which is
exactly the attribution a prefetcher postmortem needs.

Overhead discipline mirrors :data:`~repro.metrics.perf.PERF`: with the
global :data:`TRACER` disabled the cost at every call site is one
attribute load and a branch (``if TRACER.enabled:``); spans record
both host wall time (``time.perf_counter``) and, when a simulator
clock is configured, virtual time.  Sampling is decided per request by
a seeded PRNG, so a fixed seed yields a deterministic sample set, and
finished traces land in a bounded ring buffer (oldest dropped first)
exportable as JSONL — one record per line, validated by
:func:`validate_record`.
"""

from __future__ import annotations

import json
import random
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.metrics import catalog
from repro.metrics.registry import MetricRegistry

#: canonical stage names a span may carry (declared in the catalog,
#: the single source of truth for every observable name)
STAGES = catalog.SPAN_STAGES

#: every legal ``outcome`` tag of a ``cache_lookup`` span
LOOKUP_OUTCOMES = catalog.LOOKUP_OUTCOMES

#: the miss causes reported per request class (everything but a hit)
MISS_CAUSES = catalog.MISS_CAUSES

#: trace kinds: client requests, background prefetches, §5 refreshes,
#: plus run-level "summary" records (spanless, tags-only — e.g. the
#: scale harness's per-signature issued/hit/wasted table)
KINDS = catalog.TRACE_KINDS


class Span:
    """One stage of one traced request."""

    __slots__ = ("name", "wall_started_s", "wall_s", "sim_started", "sim_s", "tags")

    def __init__(self, name: str, wall_started_s: float, sim_started) -> None:
        self.name = name
        self.wall_started_s = wall_started_s
        self.wall_s = 0.0
        self.sim_started = sim_started
        self.sim_s: Optional[float] = None
        self.tags: Dict[str, object] = {}


class TraceContext:
    """Span collector for one request's trip through the proxy."""

    __slots__ = ("trace_id", "user", "app", "kind", "tags", "spans", "_sim_clock")

    def __init__(
        self,
        trace_id: str,
        user: str,
        kind: str = "request",
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.user = user
        self.app: Optional[str] = None
        self.kind = kind
        self.tags: Dict[str, object] = {}
        self.spans: List[Span] = []
        self._sim_clock = sim_clock

    def tag(self, key: str, value) -> None:
        self.tags[key] = value

    # ------------------------------------------------------------------
    def start_span(self, name: str, **tags) -> Span:
        span = Span(
            name,
            time.perf_counter(),
            self._sim_clock() if self._sim_clock is not None else None,
        )
        if tags:
            span.tags.update(tags)
        return span

    def end_span(self, span: Span, **tags) -> Span:
        span.wall_s = time.perf_counter() - span.wall_started_s
        if span.sim_started is not None:
            span.sim_s = self._sim_clock() - span.sim_started
        if tags:
            span.tags.update(tags)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **tags) -> Iterator[Span]:
        started = self.start_span(name, **tags)
        try:
            yield started
        finally:
            self.end_span(started)

    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, object]:
        spans = []
        for span in self.spans:
            row: Dict[str, object] = {
                "name": span.name,
                "wall_us": round(1e6 * span.wall_s, 3),
            }
            if span.sim_s is not None:
                row["sim_ms"] = round(1e3 * span.sim_s, 6)
            if span.tags:
                row["tags"] = dict(span.tags)
            spans.append(row)
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "user": self.user,
            "kind": self.kind,
            "spans": spans,
        }
        if self.app is not None:
            record["app"] = self.app
        if self.tags:
            record["tags"] = dict(self.tags)
        return record


class Tracer:
    """Sampling trace sink with a bounded ring buffer.

    The global :data:`TRACER` is shared by every proxy in the process,
    exactly like :data:`~repro.metrics.perf.PERF`.  ``configure()``
    then ``enable()`` (or the ``capture()`` context manager) arm it;
    call sites guard with ``if TRACER.enabled:`` so the disabled path
    costs one branch.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.sample_rate = 1.0
        self.capacity = 4096
        self.registry: Optional[MetricRegistry] = None
        self.sim_clock: Optional[Callable[[], float]] = None
        self._rng = random.Random(0)
        self._ring: deque = deque(maxlen=self.capacity)
        self._next_id = 0
        self.started = 0
        self.sampled = 0
        self.finished = 0
        self.dropped = 0

    # -- lifecycle ------------------------------------------------------
    def configure(
        self,
        sample_rate: float = 1.0,
        capacity: int = 4096,
        seed: int = 0,
        registry: Optional[MetricRegistry] = None,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> "Tracer":
        """(Re)arm the sink; resets the ring, the PRNG, and the stats."""
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sample_rate = sample_rate
        self.capacity = capacity
        self.registry = registry
        self.sim_clock = sim_clock
        self._rng = random.Random(seed)
        self._ring = deque(maxlen=capacity)
        self._next_id = 0
        self.started = 0
        self.sampled = 0
        self.finished = 0
        self.dropped = 0
        return self

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def capture(self, **configure_kwargs) -> Iterator["Tracer"]:
        """Configure + enable inside the block; restore state after."""
        previous = self.enabled
        self.configure(**configure_kwargs)
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous

    # -- recording ------------------------------------------------------
    def begin(
        self, user: str, app: Optional[str] = None, kind: str = "request"
    ) -> Optional[TraceContext]:
        """Start a trace for one request, or ``None`` if not sampled."""
        if not self.enabled:
            return None
        self.started += 1
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        self.sampled += 1
        self._next_id += 1
        context = TraceContext(
            "t{:08d}".format(self._next_id), user, kind=kind,
            sim_clock=self.sim_clock,
        )
        context.app = app
        return context

    def finish(self, context: Optional[TraceContext]) -> None:
        """File a finished trace; feeds the registry when one is set."""
        if context is None:
            return
        self.finished += 1
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(context.to_record())
        registry = self.registry
        if registry is not None:
            for span in context.spans:
                labels = {"stage": span.name}
                registry.observe(
                    catalog.SPAN_WALL_SECONDS, span.wall_s, labels=labels
                )
                outcome = span.tags.get("outcome")
                if outcome is not None:
                    registry.inc(
                        catalog.SPAN_OUTCOMES,
                        labels={"stage": span.name, "outcome": outcome},
                    )

    def append_record(self, record: Dict[str, object]) -> None:
        """File a pre-built record (e.g. a run-level ``summary``).

        Validated against the export schema so a bad producer fails at
        the source, not in a downstream ``repro stats`` run.
        """
        errors = validate_record(record)
        if errors:
            raise ValueError("invalid record: {}".format("; ".join(errors)))
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(record)

    def absorb(
        self,
        records,
        prefix: Optional[str] = None,
        skip_kinds=(),
    ) -> int:
        """Fold another tracer's record batch into this ring.

        The sharded proxy fleet's workers each trace into their own
        process-local ring; the supervisor absorbs every worker's batch
        in one call per worker — the IPC-amortizing counterpart of a
        per-record stream.  ``prefix`` (typically ``"w<shard>"``)
        namespaces worker-local trace ids so ``w0:t00000001`` and
        ``w1:t00000001`` stay distinct in the merged export;
        ``skip_kinds`` filters records the supervisor rebuilds itself
        (the per-run ``summary``, which must be aggregated, not
        repeated per shard).  Every record is schema-validated; returns
        how many were absorbed.
        """
        absorbed = 0
        for record in records:
            if record.get("kind") in skip_kinds:
                continue
            if prefix is not None:
                record = dict(
                    record,
                    trace_id="{}:{}".format(prefix, record.get("trace_id")),
                )
            self.append_record(record)
            absorbed += 1
        return absorbed

    # -- reading / export ----------------------------------------------
    def records(self) -> List[Dict[str, object]]:
        return list(self._ring)

    def export_jsonl(self, path: str) -> int:
        """Write every buffered record, one JSON object per line."""
        records = self.records()
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(records)

    def stats(self) -> Dict[str, object]:
        return {
            "started": self.started,
            "sampled": self.sampled,
            "finished": self.finished,
            "dropped": self.dropped,
            "buffered": len(self._ring),
            "sample_rate": self.sample_rate,
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:
        return "Tracer(enabled={}, sampled={}, buffered={})".format(
            self.enabled, self.sampled, len(self._ring)
        )


#: process-global trace sink used by the proxy pipeline
TRACER = Tracer()


# ======================================================================
# span-record schema
# ======================================================================
def validate_record(record) -> List[str]:
    """Schema-check one exported trace record; returns the errors."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    for field, kind in (("trace_id", str), ("user", str), ("kind", str)):
        value = record.get(field)
        if not isinstance(value, kind):
            errors.append("{}: expected {}".format(field, kind.__name__))
    if isinstance(record.get("kind"), str) and record["kind"] not in KINDS:
        errors.append("kind: {!r} not in {}".format(record["kind"], KINDS))
    if "app" in record and not isinstance(record["app"], str):
        errors.append("app: expected str")
    if "tags" in record and not isinstance(record["tags"], dict):
        errors.append("tags: expected object")
    spans = record.get("spans")
    if not isinstance(spans, list):
        return errors + ["spans: expected array"]
    for index, span in enumerate(spans):
        where = "spans[{}]".format(index)
        if not isinstance(span, dict):
            errors.append("{}: expected object".format(where))
            continue
        name = span.get("name")
        if name not in STAGES:
            errors.append("{}.name: {!r} not in {}".format(where, name, STAGES))
        wall = span.get("wall_us")
        if not isinstance(wall, (int, float)) or wall < 0:
            errors.append("{}.wall_us: expected non-negative number".format(where))
        if "sim_ms" in span and (
            not isinstance(span["sim_ms"], (int, float)) or span["sim_ms"] < 0
        ):
            errors.append("{}.sim_ms: expected non-negative number".format(where))
        tags = span.get("tags", {})
        if not isinstance(tags, dict):
            errors.append("{}.tags: expected object".format(where))
            continue
        if name == "cache_lookup":
            outcome = tags.get("outcome")
            if outcome not in LOOKUP_OUTCOMES:
                errors.append(
                    "{}.tags.outcome: {!r} not in {}".format(
                        where, outcome, LOOKUP_OUTCOMES
                    )
                )
    return errors


def read_jsonl(path: str, validate: bool = True) -> List[Dict[str, object]]:
    """Load a JSONL trace export; raises ``ValueError`` on bad records."""
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError("line {}: invalid JSON: {}".format(line_number, error))
            if validate:
                errors = validate_record(record)
                if errors:
                    raise ValueError(
                        "line {}: {}".format(line_number, "; ".join(errors))
                    )
            records.append(record)
    return records


def aggregate_records(records) -> Dict[str, object]:
    """Roll trace records up into the per-stage / per-cause summary.

    Percentiles here are exact (computed from the raw span samples,
    not histogram buckets) since an offline aggregation has all the
    data in hand.
    """
    from repro.metrics.stats import percentile

    wall_by_stage: Dict[str, List[float]] = {}
    sim_by_stage: Dict[str, List[float]] = {}
    miss_causes: Dict[str, int] = {}
    outcome_counts: Dict[str, Dict[str, int]] = {}
    kinds: Dict[str, int] = {}
    by_signature: Dict[str, Dict[str, int]] = {}
    prefetch_by_signature: Dict[str, Dict[str, int]] = {}
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        if record["kind"] == "summary":
            table = record.get("tags", {}).get("prefetch_by_signature")
            if isinstance(table, dict):
                for site, cell in table.items():
                    merged = prefetch_by_signature.setdefault(
                        site, {"issued": 0, "hits": 0, "wasted": 0}
                    )
                    for key in merged:
                        merged[key] += int(cell.get(key, 0))
        for span in record["spans"]:
            name = span["name"]
            wall_by_stage.setdefault(name, []).append(span["wall_us"])
            if "sim_ms" in span:
                sim_by_stage.setdefault(name, []).append(span["sim_ms"])
            tags = span.get("tags", {})
            outcome = tags.get("outcome")
            if outcome is not None:
                per_stage = outcome_counts.setdefault(name, {})
                per_stage[outcome] = per_stage.get(outcome, 0) + 1
            if name == "cache_lookup":
                signature = tags.get("signature") or "(unmatched)"
                row = by_signature.setdefault(
                    signature, {"hits": 0, "misses": 0}
                )
                if outcome == "hit":
                    row["hits"] += 1
                else:
                    row["misses"] += 1
                    if outcome is not None:
                        miss_causes[outcome] = miss_causes.get(outcome, 0) + 1
    stages: Dict[str, Dict[str, float]] = {}
    for name, samples in wall_by_stage.items():
        row = {
            "count": len(samples),
            "wall_us_p50": percentile(samples, 50),
            "wall_us_p95": percentile(samples, 95),
            "wall_us_p99": percentile(samples, 99),
            "wall_us_mean": sum(samples) / len(samples),
        }
        sims = sim_by_stage.get(name)
        if sims:
            row["sim_ms_p50"] = percentile(sims, 50)
            row["sim_ms_p95"] = percentile(sims, 95)
            row["sim_ms_p99"] = percentile(sims, 99)
        stages[name] = row
    return {
        "records": sum(kinds.values()),
        "kinds": kinds,
        "stages": stages,
        "miss_causes": miss_causes,
        "span_outcomes": outcome_counts,
        "by_signature": by_signature,
        "prefetch_by_signature": prefetch_by_signature,
    }


def registry_from_records(records) -> MetricRegistry:
    """Rebuild a registry (for a Prometheus dump) from trace records."""
    registry = MetricRegistry()
    for record in records:
        registry.inc(catalog.TRACES, labels={"kind": record["kind"]})
        for span in record["spans"]:
            labels = {"stage": span["name"]}
            registry.observe(
                catalog.SPAN_WALL_SECONDS, span["wall_us"] / 1e6, labels=labels
            )
            outcome = span.get("tags", {}).get("outcome")
            if outcome is not None:
                registry.inc(
                    catalog.SPAN_OUTCOMES,
                    labels={"stage": span["name"], "outcome": outcome},
                )
    return registry
