"""Common structure describing one evaluated app."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.apk.program import ApkFile
from repro.device.profile import DeviceProfile
from repro.netsim.link import Link
from repro.netsim.sim import Simulator
from repro.netsim.transport import OriginMap
from repro.server.content import Catalog
from repro.server.origin import OriginServer


class OriginSpec:
    """One origin server an app talks to: address, RTT, and factory."""

    def __init__(
        self,
        origin: str,
        rtt: float,
        build: Callable[[Simulator, Catalog], OriginServer],
        label: str = "",
    ) -> None:
        self.origin = origin
        self.rtt = rtt
        self.build = build
        self.label = label or origin


class AppSpec:
    """Everything the experiment harness needs to run one app.

    ``main_flow`` is the scripted path from launch to the paper's "main
    interaction" (Table 1): a list of ``(event_name, index)`` steps on
    the current screen; the *last* step is the measured interaction.
    ``transactions_of_main`` reproduces Table 2's rows: per-transaction
    label plus the RTT (seconds) to the origin that serves it.
    """

    def __init__(
        self,
        name: str,
        label: str,
        category: str,
        main_interaction: str,
        build_apk: Callable[[], ApkFile],
        origins: List[OriginSpec],
        main_flow: List[Tuple[str, Optional[int]]],
        transactions_of_main: List[Tuple[str, float]],
        processing: Dict[str, float],
        flags: Optional[Dict[str, bool]] = None,
        main_site_classes: Optional[List[str]] = None,
        launch_site_classes: Optional[List[str]] = None,
    ) -> None:
        self.name = name
        self.label = label
        self.category = category
        self.main_interaction = main_interaction
        self.build_apk = build_apk
        self.origins = origins
        self.main_flow = main_flow
        self.transactions_of_main = transactions_of_main
        self.processing = processing
        self.flags = dict(flags or {})
        #: classes whose transaction sites form the main interaction
        #: (the paper configures the proxy to target it, §6)
        self.main_site_classes = list(main_site_classes or [])
        #: classes whose sites fire during app launch
        self.launch_site_classes = list(launch_site_classes or [])

    @property
    def main_event(self) -> str:
        """Name of the measured main-interaction event."""
        return self.main_flow[-1][0]

    # ------------------------------------------------------------------
    def default_profile(self, user: str = "user-1") -> DeviceProfile:
        return DeviceProfile(
            user=user,
            device_id="device-{}".format(user),
            processing=dict(self.processing),
            flags=dict(self.flags),
        )

    def build_origin_map(
        self, sim: Simulator, catalog: Catalog, bandwidth_bps: float = 25e6,
        rtt_override: Optional[float] = None,
    ) -> Tuple[OriginMap, Dict[str, OriginServer]]:
        """Build this app's origins wired with their per-origin links.

        ``rtt_override`` replaces every origin RTT (used by the Fig. 15
        / Fig. 16 proxy-to-server RTT sweeps).
        """
        origin_map = OriginMap()
        servers: Dict[str, OriginServer] = {}
        for spec in self.origins:
            server = spec.build(sim, catalog)
            rtt = spec.rtt if rtt_override is None else rtt_override
            origin_map.register(
                spec.origin, server, Link(rtt=rtt, bandwidth_bps=bandwidth_bps, name=spec.origin)
            )
            servers[spec.origin] = server
        return origin_map, servers

    def __repr__(self) -> str:
        return "AppSpec({})".format(self.name)
