"""Registry of the five evaluated apps (Table 1)."""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import AppSpec


def all_apps() -> Dict[str, AppSpec]:
    """Name → spec for every evaluated app, in the paper's order."""
    from repro.apps.wish import SPEC as wish
    from repro.apps.geek import SPEC as geek
    from repro.apps.doordash import SPEC as doordash
    from repro.apps.purple_ocean import SPEC as purple_ocean
    from repro.apps.postmates import SPEC as postmates

    specs = [wish, geek, doordash, purple_ocean, postmates]
    return {spec.name: spec for spec in specs}


def app_names() -> List[str]:
    return list(all_apps())


def get_app(name: str) -> AppSpec:
    apps = all_apps()
    try:
        return apps[name]
    except KeyError:
        raise KeyError(
            "unknown app {!r}; available: {}".format(name, ", ".join(apps))
        )
