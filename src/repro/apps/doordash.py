"""DoorDash — food delivery (the Fig. 11 successive-dependency chain).

``store list → store menu → menu detail → suggestions``: each page's id
feeds the next request, partially through URI *path segments*
(``/v2/store/<id>/menu``), the case where the dependency lives inside
the URI rather than in a body field.
"""

from __future__ import annotations

from repro.apk.builder import AppBuilder, Lit, MethodBuilder
from repro.apk.program import ApkFile
from repro.apps.base import AppSpec, OriginSpec
from repro.server.backends.doordash import build_doordash_api

API = "https://api.doordash.com"


def build_apk() -> ApkFile:
    app = AppBuilder("com.dd.doordash", "DoorDash")
    app.config_default("api_host", API)
    app.config_default("region", "sf")
    app.config_default("client", "android")

    _store_list_activity(app)
    _store_activity(app)
    _menu_item_activity(app)
    _offers_service(app)

    app.component("stores", "StoreListActivity", screen="stores", main=True)
    app.component("offers", "OffersService", kind="service")
    app.component("store", "StoreActivity", screen="store")
    app.component("menuitem", "MenuItemActivity", screen="menuitem")

    app.screen("stores")
    app.event(
        "stores", "select_store", "StoreListActivity.onStoreClick",
        takes_index=True, weight=5.0, description="open a restaurant page",
    )
    app.event("stores", "refresh", "StoreListActivity.onRefresh", weight=1.0)
    app.screen("store")
    app.event(
        "store", "select_menu_item", "StoreActivity.onMenuItemClick",
        takes_index=True, weight=4.0, description="open a menu item",
    )
    app.screen("menuitem")
    app.event(
        "menuitem", "select_suggestion", "MenuItemActivity.onSuggestionClick",
        takes_index=True, weight=1.5, description="open a suggested item",
    )
    app.event(
        "menuitem", "add_to_cart", "MenuItemActivity.onAddToCart",
        weight=1.0, side_effect=True, description="add item to cart (side effect)",
    )
    return app.build()


def _store_list_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    m.call("StoreListActivity.loadStores", "this")
    app.method("StoreListActivity", m)

    m = MethodBuilder("onRefresh", params=["this"])
    m.call("StoreListActivity.loadStores", "this")
    app.method("StoreListActivity", m)

    m = MethodBuilder("loadStores", params=["this"])
    url = m.concat(
        m.config("api_host"), m.const("/v2/stores?region="), m.config("region")
    )
    req = m.new_request("GET", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    body = m.body_json(resp)
    stores = m.json_get(body, "stores")
    m.put_field("this", "stores", stores)
    with m.foreach(stores, parallel=True) as store:
        sid = m.json_get(store, "id")
        iurl = m.concat(m.config("api_host"), m.const("/store-img/"), sid, m.const(".jpg"))
        ireq = m.new_request("GET", iurl)
        iresp = m.execute(ireq)
        m.body_blob(iresp)
    m.render(body)
    app.method("StoreListActivity", m)

    m = MethodBuilder("onStoreClick", params=["this", "index"])
    stores = m.get_field("this", "stores")
    store = m.invoke("Json.index", stores, "index")
    sid = m.json_get(store, "id")
    intent = m.intent_new()
    m.intent_put(intent, "store_id", sid)
    m.start_component(intent, "store")
    app.method("StoreListActivity", m)


def _store_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    sid = m.intent_get("intent", "store_id")
    # menu: the store id is a URI *path segment*
    murl = m.concat(
        m.config("api_host"), m.const("/v2/store/"), sid, m.const("/menu")
    )
    mreq = m.new_request("GET", murl)
    m.add_header(mreq, "Cookie", m.cookie())
    mresp = m.execute(mreq)
    menu = m.json_get(m.body_json(mresp), "menu")
    # restaurant schedule (second transaction of the main interaction)
    surl = m.concat(
        m.config("api_host"), m.const("/v2/store/"), sid, m.const("/schedule")
    )
    sreq = m.new_request("GET", surl)
    m.add_header(sreq, "Cookie", m.cookie())
    sresp = m.execute(sreq)
    m.body_json(sresp)
    # flatten category items for the click handler
    flat = m.invoke("List.new")
    categories = m.json_get(menu, "categories")
    with m.foreach(categories) as category:
        items = m.json_get(category, "items")
        with m.foreach(items) as item:
            m.invoke("List.add", flat, item)
    m.put_field("this", "menu_items", flat)
    m.render(menu)
    app.method("StoreActivity", m)

    m = MethodBuilder("onMenuItemClick", params=["this", "index"])
    items = m.get_field("this", "menu_items")
    item = m.invoke("Json.index", items, "index")
    iid = m.json_get(item, "id")
    intent = m.intent_new()
    m.intent_put(intent, "item_id", iid)
    m.start_component(intent, "menuitem")
    app.method("StoreActivity", m)


def _menu_item_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    iid = m.intent_get("intent", "item_id")
    m.put_field("this", "item_id", iid)
    durl = m.concat(m.config("api_host"), m.const("/v2/menu-item"))
    dreq = m.new_request("POST", durl)
    m.add_header(dreq, "Cookie", m.cookie())
    m.add_form_field(dreq, "item_id", iid)
    m.add_form_field(dreq, "client", m.config("client"))
    dresp = m.execute(dreq)
    item = m.json_get(m.body_json(dresp), "item")
    # options for the item's option group (chain hop 4)
    gid = m.json_get(item, "option_group")
    ourl = m.concat(m.config("api_host"), m.const("/v2/options?gid="), gid)
    oreq = m.new_request("GET", ourl)
    m.add_header(oreq, "Cookie", m.cookie())
    oresp = m.execute(oreq)
    m.body_json(oresp)
    # suggestions keyed by the item id from the detail response
    item_id = m.json_get(item, "id")
    u = m.concat(
        m.config("api_host"), m.const("/v2/suggestions?menu_item_id="), item_id
    )
    sreq = m.new_request("GET", u)
    m.add_header(sreq, "Cookie", m.cookie())
    sresp = m.execute(sreq)
    suggestions = m.json_get(m.body_json(sresp), "suggestions")
    m.put_field("this", "suggestions", suggestions)
    m.render(item)
    app.method("MenuItemActivity", m)

    m = MethodBuilder("onSuggestionClick", params=["this", "index"])
    suggestions = m.get_field("this", "suggestions")
    suggestion = m.invoke("Json.index", suggestions, "index")
    sid = m.json_get(suggestion, "id")
    intent = m.intent_new()
    m.intent_put(intent, "item_id", sid)
    m.start_component(intent, "menuitem")
    app.method("MenuItemActivity", m)

    m = MethodBuilder("onAddToCart", params=["this"])
    iid = m.get_field("this", "item_id")
    url = m.concat(m.config("api_host"), m.const("/v2/menu-item"))
    req = m.new_request("POST", url)
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "item_id", iid)
    m.add_form_field(req, "client", m.config("client"))
    m.add_form_field(req, "cart", Lit("1"))
    resp = m.execute(req)
    m.render(m.body_json(resp))
    app.method("MenuItemActivity", m)


def _offers_service(app: AppBuilder) -> None:
    # promotional offers pushed in the background (not UI-reachable)
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/v2/offers"))
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    offers = m.json_get(m.body_json(resp), "offers")
    with m.foreach(offers) as offer:
        oid = m.json_get(offer, "id")
        ourl = m.concat(m.config("api_host"), m.const("/v2/offer?oid="), oid)
        oreq = m.new_request("GET", ourl)
        m.add_header(oreq, "Cookie", m.cookie())
        m.body_json(m.execute(oreq))
    app.method("OffersService", m)


SPEC = AppSpec(
    name="doordash",
    label="DoorDash",
    category="Food delivery",
    main_interaction="Loads a restaurant info.",
    build_apk=build_apk,
    origins=[
        OriginSpec(API, rtt=0.145, build=build_doordash_api, label="Menu / schedule"),
    ],
    main_flow=[("select_store", 2)],
    transactions_of_main=[("Menu", 0.145), ("Restaurant schedule", 0.145)],
    processing={"launch": 3.2, "interaction": 0.6},
    main_site_classes=["StoreActivity"],
    launch_site_classes=["StoreListActivity"],
)
