"""The five evaluated apps (Table 1) as synthetic programs.

Each module builds an :class:`~repro.apk.ApkFile` whose transaction
structure mirrors the corresponding commercial app as described in the
paper (§2, Figs. 1–3, 5, 11, 12 and Tables 1–2), plus the matching
origin-server backends.
"""

from repro.apps.base import AppSpec, OriginSpec
from repro.apps.registry import all_apps, app_names, get_app

__all__ = ["AppSpec", "OriginSpec", "all_apps", "app_names", "get_app"]
