"""Geek — shopping app by the same operator as Wish.

Same overall transaction structure as Wish (feed → item detail →
related items, large ~315 KB product images) but the item-detail page
combines the product fetch and the review fetch through an ``Rx.zip``
chain, exercising the analyzer's multi-upstream Rx semantics.
"""

from __future__ import annotations

from repro.apk.builder import AppBuilder, Lit, MethodBuilder
from repro.apk.program import ApkFile
from repro.apps.base import AppSpec, OriginSpec
from repro.server.backends.geek import build_geek_api, build_geek_images

API = "https://api.geek.com"
IMG = "https://img.geek.com"


def build_apk() -> ApkFile:
    app = AppBuilder("com.contextlogic.geek", "Geek")
    app.config_default("api_host", API)
    app.config_default("img_host", IMG)
    app.config_default("client", "android")
    app.config_default("version", "2.7.1")
    app.config_default("locale", "en-US")
    app.config_default("vip_tier", "")

    _feed_activity(app)
    _detail_activity(app)
    _push_service(app)

    app.component("feed", "FeedActivity", screen="feed", main=True)
    app.component("detail", "DetailActivity", screen="detail")
    app.component("push", "PushService", kind="service")

    app.screen("feed")
    app.event(
        "feed", "select_item", "FeedActivity.onItemClick",
        takes_index=True, weight=5.0, description="open an item's detail page",
    )
    app.event("feed", "refresh", "FeedActivity.onRefresh", weight=1.0)
    app.screen("detail")
    app.event(
        "detail", "select_related", "DetailActivity.onRelatedClick",
        takes_index=True, weight=2.5, description="open a related item",
    )
    app.event(
        "detail", "add_wishlist", "DetailActivity.onWishlistClick",
        weight=0.5, side_effect=True, description="add to wishlist (side effect)",
    )
    return app.build()


def _feed_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    m.call("FeedActivity.loadFeed", "this")
    app.method("FeedActivity", m)

    m = MethodBuilder("onRefresh", params=["this"])
    m.call("FeedActivity.loadFeed", "this")
    app.method("FeedActivity", m)

    m = MethodBuilder("loadFeed", params=["this"])
    url = m.concat(m.config("api_host"), m.const("/api/feed"))
    req = m.new_request("POST", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "_ver", m.config("version"))
    m.add_form_field(req, "locale", m.config("locale"))
    m.add_form_field(req, "currency", Lit("USD"))
    resp = m.execute(req)
    feed = m.body_json(resp)
    items = m.json_path(feed, "feed", "items")
    m.put_field("this", "items", items)
    with m.foreach(items, parallel=True) as item:
        pid = m.json_get(item, "id")
        iurl = m.concat(m.config("img_host"), m.const("/t?pid="), pid)
        ireq = m.new_request("GET", iurl)
        iresp = m.execute(ireq)
        m.body_blob(iresp)
    m.render(feed)
    app.method("FeedActivity", m)

    m = MethodBuilder("onItemClick", params=["this", "index"])
    items = m.get_field("this", "items")
    item = m.invoke("Json.index", items, "index")
    pid = m.json_get(item, "id")
    intent = m.intent_new()
    m.intent_put(intent, "pid", pid)
    m.start_component(intent, "detail")
    app.method("FeedActivity", m)


def _detail_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    pid = m.intent_get("intent", "pid")
    m.put_field("this", "pid", pid)
    # product detail and reviews fetched concurrently, joined by Rx.zip
    product_obs = m.rx_defer("DetailActivity.fetchProduct")
    review_obs = m.rx_defer("DetailActivity.fetchReviews")
    joined = m.invoke(
        "Rx.zip", product_obs, review_obs, Lit("DetailActivity.combine")
    )
    m.rx_subscribe(joined, "DetailActivity.renderDetail")
    # related items
    rurl = m.concat(m.config("api_host"), m.const("/api/related"))
    rreq = m.new_request("POST", rurl)
    m.add_header(rreq, "Cookie", m.cookie())
    m.add_form_field(rreq, "pid", pid)
    rresp = m.execute(rreq)
    related = m.json_get(m.body_json(rresp), "related")
    m.put_field("this", "related", related)
    # full-size product image (~315 KB)
    iurl = m.concat(m.config("img_host"), m.const("/p?pid="), pid)
    ireq = m.new_request("GET", iurl)
    iresp = m.execute(ireq)
    m.body_blob(iresp)
    app.method("DetailActivity", m)

    m = MethodBuilder("fetchProduct", params=["this"])
    pid = m.get_field("this", "pid")
    url = m.concat(m.config("api_host"), m.const("/api/product"))
    req = m.new_request("POST", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "pid", pid)
    m.add_form_field(req, "_client", m.config("client"))
    m.add_form_field(req, "_app", Lit("geek"))
    vip = m.flag("vip")
    with m.if_(vip):
        m.add_form_field(req, "vip_tier", m.config("vip_tier"))
    resp = m.execute(req)
    product = m.json_get(m.body_json(resp), "product")
    m.put_field("this", "detail", product)
    m.ret(product)
    app.method("DetailActivity", m)

    m = MethodBuilder("fetchReviews", params=["this"])
    pid = m.get_field("this", "pid")
    url = m.concat(m.config("api_host"), m.const("/api/reviews?pid="), pid)
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    reviews = m.body_json(resp)
    m.ret(reviews)
    app.method("DetailActivity", m)

    m = MethodBuilder("combine", params=["this", "product", "reviews"])
    page = m.json_new()
    m.json_put(page, "product", "product")
    m.json_put(page, "reviews", "reviews")
    m.ret(page)
    app.method("DetailActivity", m)

    m = MethodBuilder("renderDetail", params=["this", "page"])
    m.render("page")
    app.method("DetailActivity", m)

    m = MethodBuilder("onRelatedClick", params=["this", "index"])
    related = m.get_field("this", "related")
    item = m.invoke("Json.index", related, "index")
    rid = m.json_get(item, "id")
    intent = m.intent_new()
    m.intent_put(intent, "pid", rid)
    m.start_component(intent, "detail")
    app.method("DetailActivity", m)

    m = MethodBuilder("onWishlistClick", params=["this"])
    pid = m.get_field("this", "pid")
    url = m.concat(m.config("api_host"), m.const("/api/wishlist/add"))
    req = m.new_request("POST", url)
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "pid", pid)
    resp = m.execute(req)
    m.render(m.body_json(resp))
    app.method("DetailActivity", m)


def _push_service(app: AppBuilder) -> None:
    # background push registration: never reachable from the UI
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/api/push-config"))
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    channel = m.json_get(m.body_json(resp), "channel")
    surl = m.concat(m.config("api_host"), m.const("/api/push/subscribe?ch="), channel)
    sreq = m.new_request("GET", surl)
    m.add_header(sreq, "Cookie", m.cookie())
    m.body_json(m.execute(sreq))
    app.method("PushService", m)


SPEC = AppSpec(
    name="geek",
    label="Geek",
    category="Shopping",
    main_interaction="Loads an item detail",
    build_apk=build_apk,
    origins=[
        OriginSpec(API, rtt=0.165, build=build_geek_api, label="Product detail"),
        OriginSpec(IMG, rtt=0.006, build=build_geek_images, label="Product image"),
    ],
    main_flow=[("select_item", 5)],
    transactions_of_main=[("Product detail", 0.165), ("Product image", 0.006)],
    processing={"launch": 1.6, "interaction": 0.4},
    flags={"vip": False},
    main_site_classes=["DetailActivity"],
    launch_site_classes=["FeedActivity"],
)
