"""Purple Ocean — psychic reading.

The advisor page (main interaction) issues three transactions (Table
2): advisor info from the far-away API origin (230 ms RTT), then the
profile image and the video still frame from a nearby media origin.
Purple Ocean has the largest processing delay of the five apps
(≈0.8 s), which is why its *relative* latency reduction looks small in
Fig. 16 despite large absolute savings.
"""

from __future__ import annotations

from repro.apk.builder import AppBuilder, MethodBuilder
from repro.apk.program import ApkFile
from repro.apps.base import AppSpec, OriginSpec
from repro.server.backends.purpleocean import (
    build_purpleocean_api,
    build_purpleocean_media,
)

API = "https://api.purpleocean.com"
MEDIA = "https://media.purpleocean.com"


def build_apk() -> ApkFile:
    app = AppBuilder("com.purpleocean.android", "Purple Ocean")
    app.config_default("api_host", API)
    app.config_default("media_host", MEDIA)
    app.config_default("client", "android")

    _list_activity(app)
    _advisor_activity(app)
    _horoscope_service(app)

    app.component("advisors", "AdvisorListActivity", screen="advisors", main=True)
    app.component("horoscope", "HoroscopeService", kind="service")
    app.component("advisor", "AdvisorActivity", screen="advisor")

    app.screen("advisors")
    app.event(
        "advisors", "select_advisor", "AdvisorListActivity.onAdvisorClick",
        takes_index=True, weight=5.0, description="open an advisor page",
    )
    app.event("advisors", "refresh", "AdvisorListActivity.onRefresh", weight=1.0)
    app.screen("advisor")
    app.event(
        "advisor", "start_reading", "AdvisorActivity.onStartReading",
        weight=1.0, side_effect=True, description="start a paid reading (side effect)",
    )
    return app.build()


def _list_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    m.call("AdvisorListActivity.loadAdvisors", "this")
    app.method("AdvisorListActivity", m)

    m = MethodBuilder("onRefresh", params=["this"])
    m.call("AdvisorListActivity.loadAdvisors", "this")
    app.method("AdvisorListActivity", m)

    m = MethodBuilder("loadAdvisors", params=["this"])
    url = m.concat(m.config("api_host"), m.const("/api/advisors"))
    req = m.new_request("GET", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    body = m.body_json(resp)
    advisors = m.json_get(body, "advisors")
    m.put_field("this", "advisors", advisors)
    with m.foreach(advisors, parallel=True) as advisor:
        aid = m.json_get(advisor, "id")
        turl = m.concat(m.config("media_host"), m.const("/media/thumb?aid="), aid)
        treq = m.new_request("GET", turl)
        tresp = m.execute(treq)
        m.body_blob(tresp)
    m.render(body)
    app.method("AdvisorListActivity", m)

    m = MethodBuilder("onAdvisorClick", params=["this", "index"])
    advisors = m.get_field("this", "advisors")
    advisor = m.invoke("Json.index", advisors, "index")
    aid = m.json_get(advisor, "id")
    intent = m.intent_new()
    m.intent_put(intent, "aid", aid)
    m.start_component(intent, "advisor")
    app.method("AdvisorListActivity", m)


def _advisor_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    aid = m.intent_get("intent", "aid")
    m.put_field("this", "aid", aid)
    # advisor info from the far-away API origin
    url = m.concat(m.config("api_host"), m.const("/api/advisor?aid="), aid)
    req = m.new_request("GET", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    advisor = m.json_get(m.body_json(resp), "advisor")
    advisor_id = m.json_get(advisor, "id")
    # profile image + video still from the nearby media origin
    purl = m.concat(
        m.config("media_host"), m.const("/media/profile/"), advisor_id, m.const(".png")
    )
    preq = m.new_request("GET", purl)
    presp = m.execute(preq)
    m.body_blob(presp)
    vurl = m.concat(
        m.config("media_host"), m.const("/media/still/"), advisor_id, m.const(".jpg")
    )
    vreq = m.new_request("GET", vurl)
    vresp = m.execute(vreq)
    m.body_blob(vresp)
    m.render(advisor)
    app.method("AdvisorActivity", m)

    m = MethodBuilder("onStartReading", params=["this"])
    aid = m.get_field("this", "aid")
    url = m.concat(m.config("api_host"), m.const("/api/reading/start"))
    req = m.new_request("POST", url)
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "aid", aid)
    m.add_form_field(req, "client", m.config("client"))
    resp = m.execute(req)
    m.render(m.body_json(resp))
    app.method("AdvisorActivity", m)


def _horoscope_service(app: AppBuilder) -> None:
    # daily horoscope push (not reachable through any screen)
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/api/horoscope"))
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    sign = m.json_get(m.body_json(resp), "sign")
    durl = m.concat(m.config("api_host"), m.const("/api/horoscope/detail?sign="), sign)
    dreq = m.new_request("GET", durl)
    m.add_header(dreq, "Cookie", m.cookie())
    m.body_json(m.execute(dreq))
    app.method("HoroscopeService", m)


SPEC = AppSpec(
    name="purple_ocean",
    label="Purple Ocean",
    category="Psychic reading",
    main_interaction="Loads an advisor page",
    build_apk=build_apk,
    origins=[
        OriginSpec(API, rtt=0.230, build=build_purpleocean_api, label="Advisor information"),
        OriginSpec(MEDIA, rtt=0.015, build=build_purpleocean_media, label="Profile image"),
    ],
    main_flow=[("select_advisor", 4)],
    transactions_of_main=[
        ("Advisor information", 0.230),
        ("Profile image", 0.015),
        ("Video still image", 0.015),
    ],
    processing={"launch": 2.2, "interaction": 0.8},
    main_site_classes=["AdvisorActivity"],
    launch_site_classes=["AdvisorListActivity"],
)
