"""Wish — #1 shopping app, the paper's working example (§2, Figs. 1–3, 5, 8, 12).

Transaction structure:

* **Launch** (Fig. 1a): ``POST /api/get-feed`` (body fields vary with a
  run-time branch, Fig. 8's shape) → 30 items → parallel thumbnail
  ``GET /img?cid=<id>`` fetches.
* **Select item** (Fig. 1b, the main interaction): Intent carries the
  item id to ``DetailActivity``; ``POST /product/get`` (built through
  an Rx chain and an aliased heap object — the analyzer extensions),
  ``POST /related/get``, and the ~315 KB product image.
* **Merchant page** (Fig. 2 / Fig. 12 fan-out): detail's
  ``merchant_name`` → ``GET /api/merchant?q=…`` → merchant id →
  ratings + profile image + the merchant's item thumbnails.
* **Buy** is a side-effecting transaction that must never be prefetched.
"""

from __future__ import annotations

from repro.apk.builder import AppBuilder, Lit, MethodBuilder
from repro.apk.program import ApkFile
from repro.apps.base import AppSpec, OriginSpec
from repro.server.backends.wish import build_wish_api, build_wish_images

API = "https://api.wish.com"
IMG = "https://img.wish.com"


def build_apk() -> ApkFile:
    app = AppBuilder("com.wish.android", "Wish")
    app.config_default("api_host", API)
    app.config_default("img_host", IMG)
    app.config_default("client", "android")
    app.config_default("version", "4.13.0")
    app.config_default("credit_id", "")

    _feed_activity(app)
    _detail_activity(app)
    _merchant_activity(app)
    _notification_service(app)

    app.component("feed", "FeedActivity", screen="feed", main=True)
    app.component("detail", "DetailActivity", screen="detail")
    app.component("merchant", "MerchantActivity", screen="merchant")
    app.component("notifications", "NotificationService", kind="service")

    app.screen("feed")
    app.event(
        "feed", "select_item", "FeedActivity.onItemClick",
        takes_index=True, weight=5.0, description="open an item's detail page",
    )
    app.event(
        "feed", "refresh", "FeedActivity.onRefresh",
        weight=1.0, description="reload the recommendation feed",
    )
    app.screen("detail")
    app.event(
        "detail", "view_merchant", "DetailActivity.onMerchantClick",
        weight=2.0, description="open the merchant page",
    )
    app.event(
        "detail", "select_related", "DetailActivity.onRelatedClick",
        takes_index=True, weight=2.0, description="open a related item",
    )
    app.event(
        "detail", "buy", "DetailActivity.onBuyClick",
        weight=0.5, side_effect=True, description="1-click purchase (side effect)",
    )
    app.screen("merchant")
    app.event(
        "merchant", "select_merchant_item", "MerchantActivity.onItemClick",
        takes_index=True, weight=1.5, description="open one of the merchant's items",
    )
    return app.build()


# ----------------------------------------------------------------------
def _feed_activity(app: AppBuilder) -> None:
    # onStart delegates to loadFeed so "refresh" re-uses the same
    # transaction sites (one signature, observed repeatedly)
    m = MethodBuilder("onStart", params=["this", "intent"])
    m.call("FeedActivity.loadFeed", "this")
    app.method("FeedActivity", m)

    m = MethodBuilder("onRefresh", params=["this"])
    m.call("FeedActivity.loadFeed", "this")
    app.method("FeedActivity", m)

    m = MethodBuilder("loadFeed", params=["this"])
    url = m.concat(m.config("api_host"), m.const("/api/get-feed"))
    req = m.new_request("POST", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "_ver", m.config("version"))
    m.add_form_field(req, "build", Lit("amazon"))
    m.add_form_field(req, "Category", Lit("true"))
    m.add_form_field(req, "_cap[]", Lit("2"))
    m.add_form_field(req, "_cap[]", Lit("4"))
    m.add_form_field(req, "_cap[]", Lit("6"))
    full = m.flag("full_feed")
    with m.if_(full):
        m.add_form_field(req, "offset", Lit("0"))
        m.add_form_field(req, "count", Lit("30"))
    with m.else_():
        m.add_form_field(req, "offset", Lit("-1"))
        m.add_form_field(req, "count", Lit("1"))
    resp = m.execute(req)
    feed = m.body_json(resp)
    products = m.json_path(feed, "data", "products")
    m.put_field("this", "items", products)
    with m.foreach(products, parallel=True) as item:
        info = m.json_get(item, "product_info")
        iid = m.json_get(info, "id")
        iurl = m.concat(m.config("img_host"), m.const("/img?cid="), iid)
        ireq = m.new_request("GET", iurl)
        iresp = m.execute(ireq)
        m.body_blob(iresp)
    m.render(feed)
    app.method("FeedActivity", m)

    m = MethodBuilder("onItemClick", params=["this", "index"])
    items = m.get_field("this", "items")
    item = m.invoke("Json.index", items, "index")
    info = m.json_get(item, "product_info")
    iid = m.json_get(info, "id")
    intent = m.intent_new()
    m.intent_put(intent, "cid", iid)
    m.start_component(intent, "detail")
    app.method("FeedActivity", m)


def _detail_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    cid = m.intent_get("intent", "cid")
    m.put_field("this", "cid", cid)
    # product detail: Rx chain (defer → map → subscribe), §4.1 ext. 2
    obs = m.rx_defer("DetailActivity.fetchDetail")
    stored = m.rx_map(obs, "DetailActivity.storeDetail")
    m.rx_subscribe(stored, "DetailActivity.renderDetail")
    # related items (Fig. 1b transaction ③)
    rurl = m.concat(m.config("api_host"), m.const("/related/get"))
    rreq = m.new_request("POST", rurl)
    m.add_header(rreq, "Cookie", m.cookie())
    m.add_form_field(rreq, "cid", cid)
    rresp = m.execute(rreq)
    related = m.json_get(m.body_json(rresp), "related")
    m.put_field("this", "related", related)
    # full-size product image (~315 KB)
    iurl = m.concat(m.config("img_host"), m.const("/product-img?cid="), cid)
    ireq = m.new_request("GET", iurl)
    iresp = m.execute(ireq)
    m.body_blob(iresp)
    app.method("DetailActivity", m)

    # fetchDetail routes `cid` through an aliased heap object — the
    # complex-heap case the paper's alias-analysis extension targets
    m = MethodBuilder("fetchDetail", params=["this"])
    holder = m.new("RequestContext")
    cid = m.get_field("this", "cid")
    m.put_field(holder, "cid", cid)
    alias = m.move(holder)
    resp = m.call("DetailActivity.postDetail", "this", alias)
    body = m.body_json(resp)
    m.ret(body)
    app.method("DetailActivity", m)

    m = MethodBuilder("postDetail", params=["this", "ctx"])
    cid = m.get_field("ctx", "cid")  # reads through the alias
    url = m.concat(m.config("api_host"), m.const("/product/get"))
    req = m.new_request("POST", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "cid", cid)
    m.add_form_field(req, "_client", m.config("client"))
    m.add_form_field(req, "_ver", m.config("version"))
    m.add_form_field(req, "_build", Lit("amazon"))
    m.add_form_field(req, "_xsrf", Lit("1"))
    m.add_form_field(req, "_cap[]", Lit("2"))
    m.add_form_field(req, "_cap[]", Lit("4"))
    has_credit = m.flag("has_credit")
    with m.if_(has_credit):
        m.add_form_field(req, "credit_id", m.config("credit_id"))
    resp = m.execute(req)
    m.ret(resp)
    app.method("DetailActivity", m)

    m = MethodBuilder("storeDetail", params=["this", "body"])
    contest = m.json_path(body_reg(m, "body"), "data", "contest")
    m.put_field("this", "detail", contest)
    m.ret(contest)
    app.method("DetailActivity", m)

    m = MethodBuilder("renderDetail", params=["this", "detail"])
    m.render("detail")
    app.method("DetailActivity", m)

    m = MethodBuilder("onMerchantClick", params=["this"])
    detail = m.get_field("this", "detail")
    name = m.json_get(detail, "merchant_name")
    intent = m.intent_new()
    m.intent_put(intent, "m", name)
    m.start_component(intent, "merchant")
    app.method("DetailActivity", m)

    m = MethodBuilder("onRelatedClick", params=["this", "index"])
    related = m.get_field("this", "related")
    item = m.invoke("Json.index", related, "index")
    rid = m.json_get(item, "id")
    intent = m.intent_new()
    m.intent_put(intent, "cid", rid)
    m.start_component(intent, "detail")
    app.method("DetailActivity", m)

    m = MethodBuilder("onBuyClick", params=["this"])
    cid = m.get_field("this", "cid")
    url = m.concat(m.config("api_host"), m.const("/cart/add"))
    req = m.new_request("POST", url)
    m.add_header(req, "Cookie", m.cookie())
    m.add_form_field(req, "cid", cid)
    m.add_form_field(req, "qty", Lit("1"))
    resp = m.execute(req)
    m.render(m.body_json(resp))
    app.method("DetailActivity", m)


def _merchant_activity(app: AppBuilder) -> None:
    # Fig. 3c: merchant info → (ratings, profile image, item thumbnails)
    m = MethodBuilder("onStart", params=["this", "intent"])
    name = m.intent_get("intent", "m")
    murl = m.concat(m.config("api_host"), m.const("/api/merchant?q="), name)
    mreq = m.new_request("GET", murl)
    m.add_header(mreq, "Cookie", m.cookie())
    mresp = m.execute(mreq)
    merchant = m.json_get(m.body_json(mresp), "merchant")
    mid = m.json_get(merchant, "id")
    # ratings
    rurl = m.concat(m.config("api_host"), m.const("/api/ratings/get?id="), mid)
    rreq = m.new_request("GET", rurl)
    m.add_header(rreq, "Cookie", m.cookie())
    rresp = m.execute(rreq)
    m.body_json(rresp)
    # profile image (path built from the merchant id)
    purl = m.concat(m.config("img_host"), m.const("/merchant-img/"), mid, m.const(".png"))
    preq = m.new_request("GET", purl)
    presp = m.execute(preq)
    m.body_blob(presp)
    # the merchant's other items
    item_ids = m.json_get(merchant, "item_ids")
    m.put_field("this", "merchant_items", item_ids)
    with m.foreach(item_ids, parallel=True) as iid:
        iurl = m.concat(m.config("img_host"), m.const("/img?cid="), iid)
        ireq = m.new_request("GET", iurl)
        iresp = m.execute(ireq)
        m.body_blob(iresp)
    m.render(merchant)
    app.method("MerchantActivity", m)

    m = MethodBuilder("onItemClick", params=["this", "index"])
    items = m.get_field("this", "merchant_items")
    iid = m.invoke("Json.index", items, "index")
    intent = m.intent_new()
    m.intent_put(intent, "cid", iid)
    m.start_component(intent, "detail")
    app.method("MerchantActivity", m)


def _notification_service(app: AppBuilder) -> None:
    # push-notification traffic: no UI event ever triggers it, so UI
    # fuzzing and user traces never observe these signatures (§6.1)
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/api/notifications"))
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    notes = m.json_get(m.body_json(resp), "notes")
    with m.foreach(notes) as note:
        pid = m.json_get(note, "promo_id")
        purl = m.concat(m.config("api_host"), m.const("/api/promo?pid="), pid)
        preq = m.new_request("GET", purl)
        m.add_header(preq, "Cookie", m.cookie())
        presp = m.execute(preq)
        m.body_json(presp)
        iurl = m.concat(m.config("img_host"), m.const("/promo-img?pid="), pid)
        ireq = m.new_request("GET", iurl)
        m.body_blob(m.execute(ireq))
    app.method("NotificationService", m)


def body_reg(m: MethodBuilder, name: str) -> str:
    """The parameter register named ``name`` (readability helper)."""
    return name


SPEC = AppSpec(
    name="wish",
    label="Wish",
    category="Shopping",
    main_interaction="Loads an item detail",
    build_apk=build_apk,
    origins=[
        OriginSpec(API, rtt=0.165, build=build_wish_api, label="Product detail"),
        OriginSpec(IMG, rtt=0.016, build=build_wish_images, label="Product image"),
    ],
    main_flow=[("select_item", 3)],
    transactions_of_main=[("Product detail", 0.165), ("Product image", 0.016)],
    processing={"launch": 2.0, "interaction": 0.4},
    flags={"full_feed": True, "has_credit": False},
    main_site_classes=["DetailActivity"],
    launch_site_classes=["FeedActivity"],
)
