"""Postmates — food delivery with a very close origin (5 ms RTT).

Large (~168 KB) restaurant images load at launch; the main interaction
fetches small (~7 KB) restaurant menu & info — which is why the paper
measures only 8% data-usage overhead for Postmates.  The drill-down
feed → restaurant → item → options → pairings produces the deepest
dependency chains of the five apps (Table 3: max length 15 with
repeated browsing).
"""

from __future__ import annotations

from repro.apk.builder import AppBuilder, Lit, MethodBuilder
from repro.apk.program import ApkFile
from repro.apps.base import AppSpec, OriginSpec
from repro.server.backends.postmates import build_postmates_api

API = "https://api.postmates.com"


def build_apk() -> ApkFile:
    app = AppBuilder("com.postmates.android", "Postmates")
    app.config_default("api_host", API)
    app.config_default("market", "sf")
    app.config_default("client", "android")

    _feed_activity(app)
    _restaurant_activity(app)
    _item_activity(app)
    _promo_service(app)

    app.component("feed", "FeedActivity", screen="feed", main=True)
    app.component("promos", "PromoService", kind="service")
    app.component("restaurant", "RestaurantActivity", screen="restaurant")
    app.component("item", "ItemActivity", screen="item")

    app.screen("feed")
    app.event(
        "feed", "select_restaurant", "FeedActivity.onRestaurantClick",
        takes_index=True, weight=5.0, description="open a restaurant page",
    )
    app.event("feed", "refresh", "FeedActivity.onRefresh", weight=1.0)
    app.screen("restaurant")
    app.event(
        "restaurant", "select_item", "RestaurantActivity.onItemClick",
        takes_index=True, weight=3.0, description="open a menu item",
    )
    app.screen("item")
    app.event(
        "item", "select_pairing", "ItemActivity.onPairingClick",
        takes_index=True, weight=1.5, description="open a paired item",
    )
    app.event(
        "item", "order", "ItemActivity.onOrder",
        weight=0.7, side_effect=True, description="place an order (side effect)",
    )
    return app.build()


def _feed_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    m.call("FeedActivity.loadFeed", "this")
    app.method("FeedActivity", m)

    m = MethodBuilder("onRefresh", params=["this"])
    m.call("FeedActivity.loadFeed", "this")
    app.method("FeedActivity", m)

    m = MethodBuilder("loadFeed", params=["this"])
    url = m.concat(m.config("api_host"), m.const("/v1/feed?market="), m.config("market"))
    req = m.new_request("GET", url)
    m.add_header(req, "User-Agent", m.user_agent())
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    body = m.body_json(resp)
    restaurants = m.json_get(body, "feed")
    m.put_field("this", "restaurants", restaurants)
    with m.foreach(restaurants, parallel=True) as restaurant:
        rid = m.json_get(restaurant, "id")
        iurl = m.concat(m.config("api_host"), m.const("/store-img/"), rid, m.const(".jpg"))
        ireq = m.new_request("GET", iurl)
        iresp = m.execute(ireq)
        m.body_blob(iresp)
    m.render(body)
    app.method("FeedActivity", m)

    m = MethodBuilder("onRestaurantClick", params=["this", "index"])
    restaurants = m.get_field("this", "restaurants")
    restaurant = m.invoke("Json.index", restaurants, "index")
    rid = m.json_get(restaurant, "id")
    intent = m.intent_new()
    m.intent_put(intent, "rid", rid)
    m.start_component(intent, "restaurant")
    app.method("FeedActivity", m)


def _restaurant_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    rid = m.intent_get("intent", "rid")
    url = m.concat(m.config("api_host"), m.const("/v1/restaurant?rid="), rid)
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    body = m.body_json(resp)
    # live delivery estimate for the restaurant
    eurl = m.concat(m.config("api_host"), m.const("/v1/eta?rid="), rid)
    ereq = m.new_request("GET", eurl)
    m.add_header(ereq, "Cookie", m.cookie())
    eresp = m.execute(ereq)
    m.body_json(eresp)
    # the large (~168 KB) header image of the restaurant page
    hurl = m.concat(m.config("api_host"), m.const("/store-img/"), rid, m.const(".jpg"))
    hreq = m.new_request("GET", hurl)
    hresp = m.execute(hreq)
    m.body_blob(hresp)
    menu = m.json_get(body, "menu")
    flat = m.invoke("List.new")
    categories = m.json_get(menu, "categories")
    with m.foreach(categories) as category:
        items = m.json_get(category, "items")
        with m.foreach(items) as item:
            m.invoke("List.add", flat, item)
    m.put_field("this", "items", flat)
    m.render(body)
    app.method("RestaurantActivity", m)

    m = MethodBuilder("onItemClick", params=["this", "index"])
    items = m.get_field("this", "items")
    item = m.invoke("Json.index", items, "index")
    iid = m.json_get(item, "id")
    intent = m.intent_new()
    m.intent_put(intent, "iid", iid)
    m.start_component(intent, "item")
    app.method("RestaurantActivity", m)


def _item_activity(app: AppBuilder) -> None:
    m = MethodBuilder("onStart", params=["this", "intent"])
    iid = m.intent_get("intent", "iid")
    m.put_field("this", "iid", iid)
    durl = m.concat(m.config("api_host"), m.const("/v1/item?iid="), iid)
    dreq = m.new_request("GET", durl)
    m.add_header(dreq, "Cookie", m.cookie())
    dresp = m.execute(dreq)
    item = m.json_get(m.body_json(dresp), "item")
    gid = m.json_get(item, "option_group")
    ourl = m.concat(m.config("api_host"), m.const("/v1/options?gid="), gid)
    oreq = m.new_request("GET", ourl)
    m.add_header(oreq, "Cookie", m.cookie())
    oresp = m.execute(oreq)
    m.body_json(oresp)
    item_id = m.json_get(item, "id")
    purl = m.concat(m.config("api_host"), m.const("/v1/pairings?iid="), item_id)
    preq = m.new_request("GET", purl)
    m.add_header(preq, "Cookie", m.cookie())
    presp = m.execute(preq)
    pairings = m.json_get(m.body_json(presp), "pairings")
    m.put_field("this", "pairings", pairings)
    m.render(item)
    app.method("ItemActivity", m)

    m = MethodBuilder("onPairingClick", params=["this", "index"])
    pairings = m.get_field("this", "pairings")
    pairing = m.invoke("Json.index", pairings, "index")
    pid = m.json_get(pairing, "id")
    intent = m.intent_new()
    m.intent_put(intent, "iid", pid)
    m.start_component(intent, "item")
    app.method("ItemActivity", m)

    m = MethodBuilder("onOrder", params=["this"])
    iid = m.get_field("this", "iid")
    url = m.concat(m.config("api_host"), m.const("/v1/item?iid="), iid)
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    m.add_query(req, "order", Lit("1"))
    resp = m.execute(req)
    m.render(m.body_json(resp))
    app.method("ItemActivity", m)


def _promo_service(app: AppBuilder) -> None:
    # background promo refresh (not reachable through any screen)
    m = MethodBuilder("onStart", params=["this", "intent"])
    url = m.concat(m.config("api_host"), m.const("/v1/promos"))
    req = m.new_request("GET", url)
    m.add_header(req, "Cookie", m.cookie())
    resp = m.execute(req)
    promos = m.json_get(m.body_json(resp), "promos")
    with m.foreach(promos) as promo:
        pid = m.json_get(promo, "id")
        purl = m.concat(m.config("api_host"), m.const("/v1/promo?pid="), pid)
        preq = m.new_request("GET", purl)
        m.add_header(preq, "Cookie", m.cookie())
        m.body_json(m.execute(preq))
    app.method("PromoService", m)


SPEC = AppSpec(
    name="postmates",
    label="Postmates",
    category="Food delivery",
    main_interaction="Loads a restaurant info.",
    build_apk=build_apk,
    origins=[
        OriginSpec(API, rtt=0.005, build=build_postmates_api, label="Restaurant menu & info"),
    ],
    main_flow=[("select_restaurant", 1)],
    transactions_of_main=[("Restaurant menu & info", 0.005)],
    processing={"launch": 2.0, "interaction": 0.35},
    main_site_classes=["RestaurantActivity"],
    launch_site_classes=["FeedActivity"],
)
