"""Path-scoped lint profiles: which contracts bind which trees.

The determinism contract is load-bearing only where replay must be
byte-equivalent — the simulator, the proxy serving pipeline, and the
experiment harnesses whose rows CI diffs (PR 7's fleet is correct
*because* ``--workers 1`` replays byte-identically).  ``benchmarks/``
measures wall time on purpose, and ``tests/`` may do anything.  A
profile is resolved by longest-prefix match on the posix relpath, so a
file's obligations follow from where it lives, not from opt-in
comments.
"""

from __future__ import annotations

from typing import Tuple

#: profile names
SIM = "sim"        # deterministic-replay paths: full contract
CORE = "core"      # library code: metrics + multiprocessing hygiene
BENCH = "bench"    # benchmarks: wall clocks allowed
TEST = "test"      # tests: only framework rules
DEFAULT = "default"

#: (path prefix, profile) — longest prefix wins
PROFILE_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("src/repro/netsim", SIM),
    ("src/repro/proxy", SIM),
    ("src/repro/experiments", SIM),
    ("src/repro", CORE),
    ("benchmarks", BENCH),
    ("tests", TEST),
)


def profile_for(relpath: str) -> str:
    """The lint profile of a file, by longest-prefix path match."""
    relpath = relpath.replace("\\", "/")
    best = DEFAULT
    best_length = -1
    for prefix, profile in PROFILE_PREFIXES:
        if relpath == prefix or relpath.startswith(prefix + "/"):
            if len(prefix) > best_length:
                best = profile
                best_length = len(prefix)
    return best
