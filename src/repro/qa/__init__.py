"""repro.qa — the repo's self-applied static-analysis gate.

``python -m repro lint [paths] [--strict] [--json]`` runs an AST-based
lint enforcing the invariants the rest of the system silently depends
on: deterministic replay (no wall clocks/entropy, provable PRNG seed
provenance), metric/trace name hygiene against
:mod:`repro.metrics.catalog`, and multiprocessing safety for the
fleet/pool worker entrypoints.  See DESIGN.md §14 for the rule catalog
and the suppression convention.
"""

from repro.qa.core import (
    Finding,
    LintReport,
    Rule,
    all_rules,
    lint_source,
    register,
    rule_catalog,
    run_lint,
)
from repro.qa.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_lint",
]
