"""The lint engine: rule registry, per-file walker, suppressions.

The same discipline APPx applies to app code — derive invariants by
static analysis instead of trusting the author — turned onto this
repo's own source.  The engine is deliberately small:

* every file is parsed **once** (``ast.parse``), and each rule
  registers the node types it wants so one tree walk dispatches to
  every active rule;
* rules are activated per file by **profile**
  (:mod:`repro.qa.profiles`): simulation/replay paths carry the full
  determinism contract, ``benchmarks/`` may use wall clocks;
* findings can be silenced line-by-line with
  ``# repro-lint: disable=<rule-id>[,<rule-id>] -- <why>`` — the
  reason is mandatory (``qa-suppression-missing-reason``) and a
  suppression that matches nothing is itself a finding in ``--strict``
  (``qa-unused-suppression``), so the suppression inventory cannot
  rot;
* output is deterministic: files are scanned in sorted posix-relpath
  order and findings sort by (path, line, col, rule), so two runs on
  the same tree are byte-identical — the property every other
  subsystem here is held to.

Exit codes: 0 clean, 1 findings, 2 usage error (bad path).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.qa.profiles import profile_for

# framework-level finding ids (not subject to profiles)
PARSE_ERROR = "qa-parse-error"
MISSING_REASON = "qa-suppression-missing-reason"
UNUSED_SUPPRESSION = "qa-unused-suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(.*\S))?\s*$"
)


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule_id", "path", "line", "col", "message")

    def __init__(self, rule_id: str, path: str, line: int, col: int, message: str) -> None:
        self.rule_id = rule_id
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __repr__(self) -> str:
        return "Finding({}:{}:{} {})".format(self.path, self.line, self.col, self.rule_id)


class Suppression:
    """One ``repro-lint: disable=`` comment, bound to a target line."""

    __slots__ = ("target_line", "comment_line", "rule_ids", "reason", "used")

    def __init__(self, target_line: int, comment_line: int,
                 rule_ids: Tuple[str, ...], reason: Optional[str]) -> None:
        self.target_line = target_line
        self.comment_line = comment_line
        self.rule_ids = rule_ids
        self.reason = reason
        self.used = False


class ModuleContext:
    """Everything rules may ask about the file being linted.

    Holds the parse tree, the import-alias map (so ``from time import
    time as now`` still resolves to ``time.time``), module-level
    assignments, and a lazily built parent map for enclosing-scope
    queries.
    """

    def __init__(self, relpath: str, source: str, tree: ast.Module, profile: str) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.profile = profile
        #: local name -> fully qualified dotted import target
        self.aliases: Dict[str, str] = {}
        #: module-level simple-Name assignment -> its value expression
        self.module_assigns: Dict[str, ast.expr] = {}
        #: names of functions defined at module top level
        self.module_functions: Dict[str, ast.AST] = {}
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._index_module()

    # -- construction ---------------------------------------------------
    def _index_module(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.asname:
                        self.aliases[name.asname] = name.name
                    else:
                        base = name.name.split(".", 1)[0]
                        self.aliases[base] = base
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    self.aliases[local] = "{}.{}".format(module, name.name) if module else name.name
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                self.module_assigns[stmt.targets[0].id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name) and stmt.value is not None:
                self.module_assigns[stmt.target.id] = stmt.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_functions[stmt.name] = stmt

    # -- queries --------------------------------------------------------
    def resolve_dotted(self, node: ast.expr) -> Optional[str]:
        """``node`` as a dotted name with import aliases resolved.

        ``Attribute(Name('dt'), 'now')`` with ``import datetime as dt``
        resolves to ``datetime.now``-with-prefix: ``datetime.datetime``
        aliasing works the same way.  Returns ``None`` for anything
        that is not a plain Name/Attribute chain.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest ``def`` the node sits inside (None at module level)."""
        parents = self.parent_map()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (or ``emits`` when one checker reports
    several finding kinds), ``profiles`` (the path profiles the rule is
    active in), and ``node_types`` (the AST classes routed to
    :meth:`visit` during the single tree walk).  Whole-module passes go
    in :meth:`end_module`.
    """

    rule_id: str = ""
    emits: Tuple[str, ...] = ()
    description: str = ""
    profiles: frozenset = frozenset()
    node_types: Tuple[Type[ast.AST], ...] = ()

    def emitted_ids(self) -> Tuple[str, ...]:
        return self.emits or (self.rule_id,)

    def start_module(self, ctx: ModuleContext) -> None:
        pass

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def end_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()


#: every registered rule class, in registration order
_RULE_CLASSES: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh rule instances (rules may hold per-run state)."""
    # the rule modules self-register on import
    from repro.qa import rules  # noqa: F401  (import-for-side-effect)

    return [cls() for cls in _RULE_CLASSES]


def rule_catalog() -> List[Dict[str, object]]:
    """Stable description of every registered rule (docs, --list-rules)."""
    catalog = []
    for rule in all_rules():
        catalog.append({
            "ids": list(rule.emitted_ids()),
            "description": rule.description,
            "profiles": sorted(rule.profiles),
        })
    return catalog


# ======================================================================
# suppression comments
# ======================================================================
def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``repro-lint: disable`` comment via the tokenizer.

    A trailing comment suppresses its own line; a comment-only line
    suppresses the next physical line (so multi-line calls can carry
    the suppression above them).
    """
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.match(token.string)
            if match is None:
                continue
            rule_ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            reason = match.group(2)
            line = token.start[0]
            prefix = token.line[: token.start[1]]
            target = line if prefix.strip() else line + 1
            suppressions.append(Suppression(target, line, rule_ids, reason))
    except tokenize.TokenError:
        pass  # the parse-error finding already covers broken files
    return suppressions


# ======================================================================
# per-file walk
# ======================================================================
def lint_source(relpath: str, source: str, profile: Optional[str] = None,
                strict: bool = False,
                rules: Optional[Sequence[Rule]] = None) -> Tuple[List[Finding], int]:
    """Lint one file's source; returns (findings, suppressed_count).

    Exposed separately from :func:`run_lint` so tests can feed fixture
    snippets without touching the filesystem.
    """
    if profile is None:
        profile = profile_for(relpath)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return (
            [Finding(PARSE_ERROR, relpath, error.lineno or 1, error.offset or 0,
                     "file does not parse: {}".format(error.msg))],
            0,
        )
    ctx = ModuleContext(relpath, source, tree, profile)
    active = [
        rule for rule in (all_rules() if rules is None else rules)
        if profile in rule.profiles
    ]
    by_type: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active:
        rule.start_module(ctx)
        for node_type in rule.node_types:
            by_type.setdefault(node_type, []).append(rule)

    raw: List[Finding] = []
    if by_type:
        for node in ast.walk(tree):
            for rule in by_type.get(type(node), ()):
                raw.extend(rule.visit(node, ctx))
    for rule in active:
        raw.extend(rule.end_module(ctx))

    suppressions = parse_suppressions(source)
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.target_line, []).append(suppression)

    findings: List[Finding] = []
    suppressed = 0
    known_ids = {
        rule_id for rule in active for rule_id in rule.emitted_ids()
    }
    for finding in raw:
        matched = None
        for suppression in by_line.get(finding.line, ()):
            if finding.rule_id in suppression.rule_ids:
                matched = suppression
                break
        if matched is not None:
            matched.used = True
            suppressed += 1
        else:
            findings.append(finding)

    for suppression in suppressions:
        if suppression.reason is None:
            findings.append(Finding(
                MISSING_REASON, relpath, suppression.comment_line, 0,
                "suppression of {} has no justification; append "
                "' -- <why this is safe>'".format(",".join(suppression.rule_ids)),
            ))
        if strict and not suppression.used:
            # a suppression for a rule this profile never runs, or for a
            # finding that no longer fires, is stale inventory
            stale = [
                rule_id for rule_id in suppression.rule_ids
                if rule_id not in known_ids
            ]
            detail = (
                " ({} not active in profile {!r})".format(",".join(stale), profile)
                if stale else ""
            )
            findings.append(Finding(
                UNUSED_SUPPRESSION, relpath, suppression.comment_line, 0,
                "suppression of {} matched no finding{}; remove it".format(
                    ",".join(suppression.rule_ids), detail),
            ))
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


# ======================================================================
# the runner
# ======================================================================
class LintReport:
    """Aggregate result of one lint run."""

    def __init__(self, root: str, strict: bool) -> None:
        self.root = root
        self.strict = strict
        self.files_scanned = 0
        self.findings: List[Finding] = []
        self.suppressed = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "strict": self.strict,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": self.suppressed,
            "counts": self.counts(),
            "exit_code": self.exit_code,
        }


def collect_files(paths: Sequence[str], root: Path) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted by posix relpath."""
    found = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            found.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" in candidate.parts:
                    continue
                if any(part.startswith(".") for part in candidate.parts):
                    continue
                found.add(candidate.resolve())
        else:
            raise FileNotFoundError("lint path does not exist: {}".format(raw))
    return sorted(found, key=lambda p: _relpath(p, root))


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(paths: Sequence[str], root: Optional[str] = None,
             strict: bool = False) -> LintReport:
    """Lint every python file under ``paths`` (relative to ``root``)."""
    base = Path(root).resolve() if root else Path.cwd().resolve()
    report = LintReport(str(base), strict)
    for path in collect_files(paths, base):
        relpath = _relpath(path, base)
        source = path.read_text(encoding="utf-8")
        findings, suppressed = lint_source(relpath, source, strict=strict)
        report.files_scanned += 1
        report.findings.extend(findings)
        report.suppressed += suppressed
    report.findings.sort(key=Finding.sort_key)
    return report
