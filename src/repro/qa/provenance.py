"""Seed-provenance classification: where did this PRNG seed come from?

The repo's determinism story hangs on one discipline: every
``random.Random(...)`` in a replay path is seeded from a *parameter*
(sweep cell, config, shard derivation) so the caller — and only the
caller — controls the stream.  A literal seed silently pins a stream
two sweeps will share; a clock seed destroys replay outright.

This is the same question :mod:`repro.analysis.defuse` answers for the
mini-IR (which definitions reach this use?), scaled down to what lint
needs: an intra-function reaching-definitions walk over simple-Name
assignments, classifying the seed expression's *ingredients*:

``param``
    derives from a function parameter, an attribute/subscript read
    (``config.seed``, ``spec["seed"]``), or an imported name — the
    caller can steer it; fine.
``literal``
    every ingredient is a compile-time constant — the stream is pinned
    in source, invisible to sweeps; flagged.
``clock``
    an ingredient calls a wall clock or entropy source — replay is
    gone; flagged hardest.
``unseeded``
    no argument, or a ``None`` argument — Python falls back to OS
    entropy; flagged like ``clock``.

Precedence when ingredients mix: ``clock`` > ``param`` > ``literal``
(``seed + 1`` with ``seed`` a parameter is fine; ``42 * 2`` is not).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Set

from repro.qa.core import ModuleContext

PARAM = "param"
LITERAL = "literal"
CLOCK = "clock"
UNSEEDED = "unseeded"

#: precedence when an expression mixes ingredient classes
_RANK = {LITERAL: 0, PARAM: 1, CLOCK: 2}


class FunctionEnv:
    """One function's (or the module's) name bindings for the walk."""

    __slots__ = ("params", "assigns")

    def __init__(self, params: Set[str], assigns: Dict[str, ast.expr]) -> None:
        self.params = params
        self.assigns = assigns

    @classmethod
    def for_function(cls, function: ast.AST) -> "FunctionEnv":
        params: Set[str] = set()
        arguments = function.args
        for group in (arguments.posonlyargs, arguments.args, arguments.kwonlyargs):
            params.update(arg.arg for arg in group)
        if arguments.vararg is not None:
            params.add(arguments.vararg.arg)
        if arguments.kwarg is not None:
            params.add(arguments.kwarg.arg)
        assigns: Dict[str, ast.expr] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                assigns[node.targets[0].id] = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) \
                    and node.value is not None:
                assigns[node.target.id] = node.value
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                # loop variables vary per iteration -> caller-steerable
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        params.add(name.id)
        return cls(params, assigns)

    @classmethod
    def for_module(cls, ctx: ModuleContext) -> "FunctionEnv":
        return cls(set(), dict(ctx.module_assigns))


def classify_seed(
    expr: Optional[ast.expr],
    env: FunctionEnv,
    ctx: ModuleContext,
    clocklike: FrozenSet[str],
    clocklike_prefixes: tuple = (),
) -> str:
    """Classify one seed expression (see module docstring)."""
    if expr is None:
        return UNSEEDED
    if isinstance(expr, ast.Constant) and expr.value is None:
        return UNSEEDED
    return _classify(expr, env, ctx, clocklike, clocklike_prefixes, set())


def _classify(expr, env, ctx, clocklike, prefixes, visiting) -> str:
    if isinstance(expr, ast.Constant):
        return LITERAL
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in env.params:
            return PARAM
        if name in visiting:  # self-referential chain: give up, allow
            return PARAM
        if name in env.assigns:
            return _classify(env.assigns[name], env, ctx, clocklike,
                             prefixes, visiting | {name})
        if name in ctx.module_assigns:
            return _classify(ctx.module_assigns[name], env, ctx, clocklike,
                             prefixes, visiting | {name})
        # imported / builtin / nonlocal: the caller (or config) owns it
        return PARAM
    if isinstance(expr, (ast.Attribute, ast.Subscript)):
        # config.seed, spec["seed"] — reads of caller-provided state
        return PARAM
    if isinstance(expr, ast.Call):
        dotted = ctx.resolve_dotted(expr.func)
        if dotted is not None:
            if dotted in clocklike or any(dotted.startswith(p) for p in prefixes):
                return CLOCK
        verdicts = [
            _classify(arg, env, ctx, clocklike, prefixes, visiting)
            for arg in expr.args
        ] or [PARAM]
        # hash("...") / _hash64(42): a pure function of literals is
        # still a pinned stream — keep the strongest ingredient
        return max(verdicts, key=_RANK.__getitem__)
    children = []
    if isinstance(expr, ast.BinOp):
        children = [expr.left, expr.right]
    elif isinstance(expr, ast.UnaryOp):
        children = [expr.operand]
    elif isinstance(expr, ast.BoolOp):
        children = list(expr.values)
    elif isinstance(expr, (ast.Tuple, ast.List)):
        children = list(expr.elts)
    elif isinstance(expr, ast.JoinedStr):
        children = [
            value.value for value in expr.values
            if isinstance(value, ast.FormattedValue)
        ]
        if not children:
            return LITERAL
    elif isinstance(expr, ast.IfExp):
        children = [expr.body, expr.orelse]
    if children:
        verdicts = [
            _classify(child, env, ctx, clocklike, prefixes, visiting)
            for child in children
        ]
        return max(verdicts, key=_RANK.__getitem__)
    # anything exotic (lambda, comprehension, await): assume steerable
    return PARAM
