"""Determinism rules: no wall clocks, no entropy, provable seeds.

Replay in the sim/proxy/experiments tree must be byte-equivalent —
PR 7's sharded fleet asserts ``--workers 1`` equals serial byte for
byte, and the parallel engine asserts pool output equals the serial
oracle.  Both proofs evaporate the moment a wall clock or an OS
entropy source leaks into a replay path, so these rules ban them at
the source level:

``det-wall-clock``
    ``time.time``/``time.sleep``/``datetime.now``-family calls.
    ``time.perf_counter`` is deliberately **allowed**: it measures
    host cost (stage timings, break-even projection) and never feeds
    simulated state.
``det-entropy``
    ``uuid.uuid1``/``uuid4``, ``os.urandom``, ``secrets.*``,
    ``random.SystemRandom`` — irreproducible by construction.
``det-global-random``
    calls through the module-level ``random.*`` API, whose hidden
    global stream couples every call site; sim paths must thread an
    explicit ``random.Random`` instance instead.
``det-seed-provenance``
    every ``random.Random(...)`` seed must derive from a parameter or
    config (see :mod:`repro.qa.provenance`) — a literal pins a stream
    sweeps silently share; a clock or missing seed kills replay.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.qa import provenance
from repro.qa.core import Finding, ModuleContext, Rule, register
from repro.qa.profiles import SIM

#: banned wall-clock calls (perf_counter intentionally absent)
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.sleep",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: banned entropy sources
ENTROPY_CALLS = frozenset({
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "random.SystemRandom",
})
ENTROPY_PREFIXES = ("secrets.",)

#: everything that disqualifies a *seed expression* outright
CLOCKLIKE_CALLS = WALL_CLOCK_CALLS | ENTROPY_CALLS


@register
class WallClockRule(Rule):
    rule_id = "det-wall-clock"
    description = (
        "wall-clock call in a deterministic-replay path "
        "(time.perf_counter is allowed for host-cost measurement)"
    )
    profiles = frozenset({SIM})
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        dotted = ctx.resolve_dotted(node.func)
        if dotted in WALL_CLOCK_CALLS:
            yield Finding(
                self.rule_id, ctx.relpath, node.lineno, node.col_offset,
                "{}() reads the wall clock; sim/replay paths must use the "
                "simulator clock or time.perf_counter (host-cost only)".format(dotted),
            )


@register
class EntropyRule(Rule):
    rule_id = "det-entropy"
    description = "OS entropy source in a deterministic-replay path"
    profiles = frozenset({SIM})
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        dotted = ctx.resolve_dotted(node.func)
        if dotted is None:
            return
        if dotted in ENTROPY_CALLS or dotted.startswith(ENTROPY_PREFIXES):
            yield Finding(
                self.rule_id, ctx.relpath, node.lineno, node.col_offset,
                "{}() draws OS entropy and can never replay; derive ids/"
                "values from seeded state instead".format(dotted),
            )


@register
class GlobalRandomRule(Rule):
    rule_id = "det-global-random"
    description = "module-level random.* call (hidden shared stream)"
    profiles = frozenset({SIM})
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        dotted = ctx.resolve_dotted(node.func)
        if dotted is None or not dotted.startswith("random."):
            return
        tail = dotted[len("random."):]
        if tail in ("Random", "SystemRandom") or "." in tail:
            return  # constructors handled by det-seed-provenance / det-entropy
        yield Finding(
            self.rule_id, ctx.relpath, node.lineno, node.col_offset,
            "random.{}() uses the interpreter-global stream, coupling every "
            "call site; thread an explicit seeded random.Random".format(tail),
        )


@register
class SeedProvenanceRule(Rule):
    rule_id = "det-seed-provenance"
    description = (
        "random.Random(...) seed must derive from a parameter/config, "
        "not a literal or clock (intra-function def-use walk)"
    )
    profiles = frozenset({SIM})
    # whole-module pass: needs enclosing-function environments
    node_types = ()

    def end_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        env_cache = {}
        module_env = provenance.FunctionEnv.for_module(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve_dotted(node.func) != "random.Random":
                continue
            function = ctx.enclosing_function(node)
            if function is None:
                env = module_env
            else:
                env = env_cache.get(function)
                if env is None:
                    env = provenance.FunctionEnv.for_function(function)
                    env_cache[function] = env
            seed = node.args[0] if node.args else None
            verdict = provenance.classify_seed(
                seed, env, ctx, CLOCKLIKE_CALLS, ENTROPY_PREFIXES,
            )
            if verdict == provenance.UNSEEDED:
                findings.append(Finding(
                    self.rule_id, ctx.relpath, node.lineno, node.col_offset,
                    "random.Random() without a seed falls back to OS entropy; "
                    "pass a seed derived from a parameter or config",
                ))
            elif verdict == provenance.LITERAL:
                findings.append(Finding(
                    self.rule_id, ctx.relpath, node.lineno, node.col_offset,
                    "random.Random seed is a compile-time literal — the "
                    "stream is pinned in source and invisible to sweeps; "
                    "derive it from a parameter or config",
                ))
            elif verdict == provenance.CLOCK:
                findings.append(Finding(
                    self.rule_id, ctx.relpath, node.lineno, node.col_offset,
                    "random.Random seed derives from a wall clock or entropy "
                    "source, which destroys replay; seed from a parameter "
                    "or config",
                ))
        return findings
