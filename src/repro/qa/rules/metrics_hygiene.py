"""Metrics/trace hygiene: every observable name must be declared.

The registry merge that folds fleet-worker snapshots back into the
supervisor (PR 7) matches series by *string name*; a typo'd name
doesn't crash, it silently forks a series nothing ever reads.  These
rules statically extract the name at every ``PERF``/``REGISTRY``/
tracer call site and check it against
:mod:`repro.metrics.catalog`:

``met-undeclared-name``
    a metric/stage/span/kind string not declared in the catalog
    (typos land here).
``met-dynamic-name``
    a name built at runtime that the linter cannot resolve — unless
    it is a parameter of the enclosing function (the facade-forwarding
    pattern: the *caller's* literal is checked at the caller's site)
    or a declared dynamic prefix (``"cache.miss." + cause``).
``met-undeclared-label``
    a label key outside the metric's declared label set.
``met-unbounded-label``
    a label value built by f-string/``format``/concatenation — the
    classic cardinality leak (per-request ids as labels).

Sink detection is by receiver-name heuristics (``PERF.incr``,
``*.registry.inc``, ``trace.start_span``, ``TRACER.begin``,
``*.windows.inc``/``observe`` for the live rolling-window plane), so
renaming a local ``registry`` to ``r`` opts a call site out — the
meta-test pins the heuristics against the real tree to keep that
honest.  (The live plane also refuses undeclared names at runtime —
:meth:`LiveWindows.inc` raises ``KeyError`` — so the static check is
the early warning, not the only fence.)
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.metrics import catalog
from repro.qa.core import Finding, ModuleContext, Rule, register
from repro.qa.profiles import CORE, SIM

#: resolution outcomes of a name expression
_STR = "str"          # fully resolved literal
_PREFIX = "prefix"    # literal head + dynamic tail ("cache.miss." + x)
_PARAM = "param"      # enclosing-function parameter (facade forwarding)
_DYNAMIC = "dynamic"  # unresolvable

_CATALOG_MODULE = "repro.metrics.catalog"


def _last_segment(dotted: Optional[str]) -> str:
    if not dotted:
        return ""
    return dotted.rsplit(".", 1)[-1].lower()


def _function_params(ctx: ModuleContext, node: ast.AST) -> frozenset:
    function = ctx.enclosing_function(node)
    if function is None:
        return frozenset()
    names = set()
    arguments = function.args
    for group in (arguments.posonlyargs, arguments.args, arguments.kwonlyargs):
        names.update(arg.arg for arg in group)
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    return frozenset(names)


def _catalog_value(dotted: str) -> Optional[str]:
    """``repro.metrics.catalog.NAME`` -> its actual string value."""
    if not dotted.startswith(_CATALOG_MODULE + "."):
        return None
    attr = dotted[len(_CATALOG_MODULE) + 1:]
    value = getattr(catalog, attr, None)
    return value if isinstance(value, str) else None


def resolve_static_string(
    node: ast.expr, ctx: ModuleContext, at: ast.AST,
    _depth: int = 0,
) -> Tuple[str, Optional[str]]:
    """Resolve a name expression to (kind, value) — see module doc."""
    if _depth > 8:
        return (_DYNAMIC, None)
    if isinstance(node, ast.Constant):
        return (_STR, node.value) if isinstance(node.value, str) else (_DYNAMIC, None)
    if isinstance(node, ast.Name):
        if node.id in _function_params(ctx, at):
            return (_PARAM, None)
        dotted = ctx.resolve_dotted(node)
        if dotted is not None:
            value = _catalog_value(dotted)
            if value is not None:
                return (_STR, value)
        if node.id in ctx.module_assigns:
            return resolve_static_string(
                ctx.module_assigns[node.id], ctx, at, _depth + 1)
        return (_DYNAMIC, None)
    if isinstance(node, ast.Attribute):
        dotted = ctx.resolve_dotted(node)
        if dotted is not None:
            value = _catalog_value(dotted)
            if value is not None:
                return (_STR, value)
        return (_DYNAMIC, None)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left_kind, left = resolve_static_string(node.left, ctx, at, _depth + 1)
        if left_kind != _STR:
            return (_DYNAMIC, None)
        right_kind, right = resolve_static_string(node.right, ctx, at, _depth + 1)
        if right_kind == _STR:
            return (_STR, left + right)
        return (_PREFIX, left)
    if isinstance(node, ast.JoinedStr):
        head = ""
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                head += value.value
            else:
                return (_PREFIX, head) if head else (_DYNAMIC, None)
        return (_STR, head)
    return (_DYNAMIC, None)


def _kwarg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _resolve_labels_dict(node: ast.expr, ctx: ModuleContext,
                         at: ast.AST) -> Optional[ast.Dict]:
    """The label expression as a dict literal, chasing one local assign."""
    if isinstance(node, ast.Dict):
        return node
    if isinstance(node, ast.Name):
        function = ctx.enclosing_function(at)
        scope = ast.walk(function) if function is not None else iter(ctx.tree.body)
        found: Optional[ast.Dict] = None
        for stmt in scope:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == node.id \
                    and isinstance(stmt.value, ast.Dict):
                found = stmt.value
        return found
    return None


def _value_is_unbounded(value: ast.expr) -> bool:
    """Does this label value bake per-request data into the series key?"""
    if isinstance(value, ast.JoinedStr):
        return any(isinstance(part, ast.FormattedValue) for part in value.values)
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr == "format":
            return True
        if isinstance(func, ast.Name) and func.id in ("str", "repr"):
            return True
    if isinstance(value, ast.BinOp):
        return True  # "u" + user / "%s" % x — concatenated identity
    return False


@register
class MetricsHygieneRule(Rule):
    emits = (
        "met-undeclared-name",
        "met-dynamic-name",
        "met-undeclared-label",
        "met-unbounded-label",
    )
    description = (
        "metric/span/label names at PERF/registry/tracer call sites must "
        "match repro.metrics.catalog; label cardinality must be bounded"
    )
    profiles = frozenset({SIM, CORE})
    node_types = (ast.Call,)

    # -- dispatch -------------------------------------------------------
    def visit(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return ()
        receiver = _last_segment(ctx.resolve_dotted(func.value))
        receiver_dotted = (ctx.resolve_dotted(func.value) or "").lower()
        attr = func.attr
        if attr in ("incr", "peak", "get") and receiver == "perf":
            return self._check_counter(node, ctx)
        if attr == "stage" and receiver == "perf":
            return self._check_vocab(
                node, ctx, catalog.PERF_STAGES, "PERF.stage name")
        if attr in ("inc", "observe", "set_gauge") and "registry" in receiver_dotted:
            return self._check_registry(node, ctx)
        if attr in ("inc", "observe") and (
                "windows" in receiver_dotted or receiver == "windows"):
            return self._check_window(node, ctx)
        if attr in ("start_span", "span") and (
                "trace" in receiver or receiver in ("ctx", "context")):
            return self._check_vocab(
                node, ctx, catalog.SPAN_STAGES, "span stage")
        if attr == "begin" and "tracer" in receiver:
            return self._check_kind(node, ctx)
        return ()

    # -- checks ---------------------------------------------------------
    def _name_arg(self, node: ast.Call) -> Optional[ast.expr]:
        return node.args[0] if node.args else _kwarg(node, "name")

    def _check_counter(self, node: ast.Call, ctx: ModuleContext) -> List[Finding]:
        arg = self._name_arg(node)
        if arg is None:
            return []
        kind, value = resolve_static_string(arg, ctx, node)
        if kind == _PARAM:
            return []
        if kind == _STR:
            if catalog.is_declared_counter(value):
                return []
            return [Finding(
                "met-undeclared-name", ctx.relpath, node.lineno, node.col_offset,
                "counter {!r} is not declared in repro.metrics.catalog "
                "(typo, or add it to COUNTERS)".format(value),
            )]
        if kind == _PREFIX:
            if catalog.declared_prefix_of(value) == value:
                return []
            return [Finding(
                "met-dynamic-name", ctx.relpath, node.lineno, node.col_offset,
                "counter name built from undeclared prefix {!r}; declare the "
                "family in catalog.COUNTER_PREFIXES with its bounded value "
                "set".format(value),
            )]
        return [Finding(
            "met-dynamic-name", ctx.relpath, node.lineno, node.col_offset,
            "counter name is not statically resolvable; use a catalog "
            "constant (or forward a caller-checked parameter)",
        )]

    def _check_vocab(self, node: ast.Call, ctx: ModuleContext,
                     vocabulary: Tuple[str, ...], what: str) -> List[Finding]:
        arg = self._name_arg(node)
        if arg is None:
            return []
        kind, value = resolve_static_string(arg, ctx, node)
        if kind == _PARAM:
            return []
        if kind == _STR:
            if value in vocabulary:
                return []
            return [Finding(
                "met-undeclared-name", ctx.relpath, node.lineno, node.col_offset,
                "{} {!r} is not in the declared vocabulary {}".format(
                    what, value, vocabulary),
            )]
        return [Finding(
            "met-dynamic-name", ctx.relpath, node.lineno, node.col_offset,
            "{} is not statically resolvable; use a catalog constant".format(what),
        )]

    def _check_window(self, node: ast.Call, ctx: ModuleContext) -> List[Finding]:
        arg = self._name_arg(node)
        if arg is None:
            return []
        kind, value = resolve_static_string(arg, ctx, node)
        if kind == _PARAM:
            return []
        if kind == _STR:
            if catalog.is_declared_window(value):
                return []
            return [Finding(
                "met-undeclared-name", ctx.relpath, node.lineno, node.col_offset,
                "rolling-window series {!r} is not declared in "
                "repro.metrics.catalog.WINDOWS (typo, or declare it with "
                "its kind)".format(value),
            )]
        return [Finding(
            "met-dynamic-name", ctx.relpath, node.lineno, node.col_offset,
            "rolling-window series name is not statically resolvable; use "
            "a catalog constant (or forward a caller-checked parameter)",
        )]

    def _check_kind(self, node: ast.Call, ctx: ModuleContext) -> List[Finding]:
        arg = _kwarg(node, "kind")
        if arg is None:
            return []
        kind, value = resolve_static_string(arg, ctx, node)
        if kind in (_PARAM, _DYNAMIC, _PREFIX):
            # kinds flow through facades; the literal producers are checked
            return []
        if value in catalog.TRACE_KINDS:
            return []
        return [Finding(
            "met-undeclared-name", ctx.relpath, node.lineno, node.col_offset,
            "trace kind {!r} is not in catalog.TRACE_KINDS {}".format(
                value, catalog.TRACE_KINDS),
        )]

    def _check_registry(self, node: ast.Call, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        arg = self._name_arg(node)
        if arg is None:
            return findings
        kind, value = resolve_static_string(arg, ctx, node)
        metric_name: Optional[str] = None
        if kind == _STR:
            metric_name = value
            if not catalog.is_declared_name(value):
                findings.append(Finding(
                    "met-undeclared-name", ctx.relpath, node.lineno, node.col_offset,
                    "registry metric {!r} is not declared in "
                    "repro.metrics.catalog (typo, or add a MetricSpec)".format(value),
                ))
        elif kind == _PREFIX:
            if catalog.declared_prefix_of(value) != value:
                findings.append(Finding(
                    "met-dynamic-name", ctx.relpath, node.lineno, node.col_offset,
                    "registry metric name built from undeclared prefix "
                    "{!r}".format(value),
                ))
        elif kind == _DYNAMIC:
            findings.append(Finding(
                "met-dynamic-name", ctx.relpath, node.lineno, node.col_offset,
                "registry metric name is not statically resolvable; use a "
                "catalog constant (or forward a caller-checked parameter)",
            ))
        findings.extend(self._check_labels(node, ctx, metric_name))
        return findings

    def _check_labels(self, node: ast.Call, ctx: ModuleContext,
                      metric_name: Optional[str]) -> List[Finding]:
        labels_expr = _kwarg(node, "labels")
        if labels_expr is None:
            return []
        findings: List[Finding] = []
        labels = _resolve_labels_dict(labels_expr, ctx, node)
        if labels is None:
            return []
        allowed = catalog.labels_for(metric_name) if metric_name else None
        for key, value in zip(labels.keys, labels.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if allowed is not None and key.value not in allowed:
                    findings.append(Finding(
                        "met-undeclared-label", ctx.relpath,
                        key.lineno, key.col_offset,
                        "label {!r} is not declared for metric {!r} "
                        "(allowed: {})".format(key.value, metric_name, allowed),
                    ))
            if value is not None and _value_is_unbounded(value):
                findings.append(Finding(
                    "met-unbounded-label", ctx.relpath,
                    value.lineno, value.col_offset,
                    "label value is string-built per call — an unbounded-"
                    "cardinality series key; label with a bounded dimension "
                    "and put the identity in trace tags instead",
                ))
        return findings
