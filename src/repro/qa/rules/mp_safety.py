"""Multiprocessing safety: what worker entrypoints may touch.

The fleet (:mod:`repro.experiments.fleet`) and the parallel engine
(:mod:`repro.experiments.parallel`) both hand functions to other
processes.  Two failure modes have bitten real code like this:

``mp-global-mutation``
    a function reachable from a worker entrypoint mutates module-global
    state (rebinding via ``global``, or writing through a module-level
    name such as ``os.environ[...] = ...`` or ``CACHE.update(...)``).
    Under the *fork* start method that mutation silently diverges from
    the parent; under *spawn* it never happens at all — either way the
    two sides disagree.  Worker-global setup is sometimes the point
    (a pool initializer exists to mutate the worker's environment), so
    the escape hatch is an explicit suppression with a justification.
``mp-unpicklable-callable``
    a ``lambda`` or nested function handed to a pool/``Process``.
    These fail to pickle under spawn — but only at runtime, on the
    platform that defaults to spawn (macOS/Windows), long after the
    code worked under fork on Linux CI.

Entrypoints are found per module: ``target=``/``initializer=`` keyword
values on ``Process``/executor constructors, and the callable argument
of ``pool.submit/map/apply_async``.  Reachability is the transitive
closure over same-module calls (cross-module flow is out of scope for
a per-file lint; each module's own entrypoints are checked where they
live).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.qa.core import Finding, ModuleContext, Rule, register
from repro.qa.profiles import CORE, SIM

#: container-mutator method names treated as writes
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert",
    "add", "update", "setdefault",
    "pop", "popitem", "popleft", "remove", "discard", "clear",
})

#: pool-ish receiver names for submit/map/apply_async
_POOL_HINTS = ("pool", "executor")


def _root_name(node: ast.expr) -> Optional[str]:
    """The base Name of an attribute/subscript chain (``os`` in
    ``os.environ[k]``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _bound_names(target: ast.expr):
    """Names *bound* by an assignment target.

    ``x = ...`` binds ``x``; ``os.environ[k] = ...`` binds nothing — it
    writes *through* ``os``, which is exactly the case the rule must
    not mistake for a local.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_names(function: ast.AST) -> Set[str]:
    """Parameters plus every name bound inside the function."""
    names: Set[str] = set()
    arguments = function.args
    for group in (arguments.posonlyargs, arguments.args, arguments.kwonlyargs):
        names.update(arg.arg for arg in group)
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_bound_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.For, ast.comprehension)):
            names.update(_bound_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            names.update(_bound_names(node.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


@register
class MultiprocessingSafetyRule(Rule):
    emits = ("mp-global-mutation", "mp-unpicklable-callable")
    description = (
        "no module-global mutation reachable from pool/Process worker "
        "entrypoints; no lambdas/closures handed to pools"
    )
    profiles = frozenset({SIM, CORE})
    node_types = ()  # whole-module pass

    # -- entrypoint discovery -------------------------------------------
    def _spawn_sites(self, ctx: ModuleContext):
        """Yield (callable-expr, how) for every cross-process handoff."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func_dotted = ctx.resolve_dotted(node.func) or ""
            func_tail = func_dotted.rsplit(".", 1)[-1]
            if func_tail in ("Process", "ProcessPoolExecutor", "Pool"):
                for keyword in node.keywords:
                    if keyword.arg in ("target", "initializer"):
                        yield keyword.value, "{}({}=...)".format(
                            func_tail, keyword.arg)
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("submit", "map", "apply_async"):
                receiver = (ctx.resolve_dotted(node.func.value) or "").lower()
                if any(hint in receiver for hint in _POOL_HINTS):
                    if node.args:
                        yield node.args[0], "{}.{}(...)".format(
                            receiver, node.func.attr)

    def _nested_function_names(self, ctx: ModuleContext) -> Set[str]:
        nested: Set[str] = set()
        for function in ctx.module_functions.values():
            for node in ast.walk(function):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and node is not function:
                    nested.add(node.name)
        return nested

    # -- the pass -------------------------------------------------------
    def end_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        nested_names = self._nested_function_names(ctx)
        entry_names: Set[str] = set()
        for expr, how in self._spawn_sites(ctx):
            if isinstance(expr, ast.Lambda):
                findings.append(Finding(
                    "mp-unpicklable-callable", ctx.relpath,
                    expr.lineno, expr.col_offset,
                    "lambda handed to {} cannot pickle under the spawn "
                    "start method; use a module-level function".format(how),
                ))
                continue
            if isinstance(expr, ast.Name):
                name = ctx.aliases.get(expr.id, expr.id)
                if expr.id in ctx.module_functions:
                    entry_names.add(expr.id)
                elif name in ctx.module_functions:
                    entry_names.add(name)
                elif expr.id in nested_names:
                    findings.append(Finding(
                        "mp-unpicklable-callable", ctx.relpath,
                        expr.lineno, expr.col_offset,
                        "nested function {!r} handed to {} cannot pickle "
                        "under spawn; hoist it to module level".format(
                            expr.id, how),
                    ))

        # transitive closure over same-module calls
        reachable: Set[str] = set()
        worklist = sorted(entry_names)
        while worklist:
            name = worklist.pop()
            if name in reachable:
                continue
            reachable.add(name)
            function = ctx.module_functions[name]
            for node in ast.walk(function):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    callee = node.func.id
                    if callee in ctx.module_functions and callee not in reachable:
                        worklist.append(callee)

        for name in sorted(reachable):
            findings.extend(self._check_function(
                name, ctx.module_functions[name], ctx))
        return findings

    def _check_function(self, name: str, function: ast.AST,
                        ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        locals_ = _local_names(function)
        declared_global: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        module_scope = set(ctx.module_assigns) | set(ctx.aliases)

        def is_module_state(root: Optional[str]) -> bool:
            if root is None:
                return False
            if root in declared_global:
                return True
            if root in locals_:
                return False
            return root in module_scope

        for node in ast.walk(function):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        findings.append(Finding(
                            "mp-global-mutation", ctx.relpath,
                            node.lineno, node.col_offset,
                            "worker-reachable {}() rebinds module global "
                            "{!r}; under fork this diverges from the "
                            "parent, under spawn it never happens".format(
                                name, target.id),
                        ))
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if is_module_state(root):
                            findings.append(Finding(
                                "mp-global-mutation", ctx.relpath,
                                node.lineno, node.col_offset,
                                "worker-reachable {}() writes through "
                                "module-level {!r}; cross-process state "
                                "must flow through the task payload or an "
                                "initializer".format(name, root),
                            ))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                root = _root_name(node.func.value)
                if is_module_state(root):
                    findings.append(Finding(
                        "mp-global-mutation", ctx.relpath,
                        node.lineno, node.col_offset,
                        "worker-reachable {}() calls .{}() on module-level "
                        "{!r} — a cross-process mutation that fork hides "
                        "and spawn drops".format(name, node.func.attr, root),
                    ))
        return findings
