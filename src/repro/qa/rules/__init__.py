"""Rule modules self-register on import (see ``repro.qa.core.register``)."""

from repro.qa.rules import determinism, metrics_hygiene, mp_safety

__all__ = ["determinism", "metrics_hygiene", "mp_safety"]
