"""Lint output: a terminal text report and a machine-readable JSON one.

Both are deterministic functions of the (already sorted)
:class:`~repro.qa.core.LintReport`, so CI can diff reports across runs
and the JSON artifact uploaded next to the BENCH trajectories is
stable byte-for-byte for a given tree.
"""

from __future__ import annotations

import json

from repro.qa.core import LintReport


def render_text(report: LintReport) -> str:
    """``path:line:col: rule-id: message`` lines plus a summary."""
    lines = [
        "{}:{}:{}: {}: {}".format(
            finding.path, finding.line, finding.col,
            finding.rule_id, finding.message)
        for finding in report.findings
    ]
    counts = report.counts()
    if counts:
        breakdown = ", ".join(
            "{} {}".format(count, rule_id) for rule_id, count in counts.items()
        )
        lines.append("")
        lines.append(
            "{} finding(s) in {} file(s) ({}); {} suppressed".format(
                len(report.findings), report.files_scanned,
                breakdown, report.suppressed)
        )
    else:
        lines.append(
            "clean: {} file(s), 0 findings, {} suppressed".format(
                report.files_scanned, report.suppressed)
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The report as stable (sorted-key, indented) JSON."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
