"""Proxy configuration (§4.4, Fig. 9).

Per-signature policies carry the seven fields of the paper's example —
``hash``, ``uri`` (readability), ``expiration_time``, ``prefetch``,
``probability``, ``add_header`` (may repeat), and ``condition`` — plus
framework-level knobs: a global probability, a data-usage budget (C4),
and the prefetch chain-depth bound.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.analysis.model import AnalysisResult

DEFAULT_EXPIRATION = 600.0  # seconds
DEFAULT_CHAIN_DEPTH = 2
#: observed-hit-probability admission defaults (§4.4 extension): a
#: signature needs this many completed prefetches before its observed
#: hit probability is trusted, and a below-threshold signature is
#: still re-tried with this probability so it can recover
DEFAULT_ADMISSION_MIN_ISSUED = 20
DEFAULT_ADMISSION_EXPLORE = 0.1

_OPS = {
    "gt": lambda a, b: _as_number(a) > _as_number(b),
    "lt": lambda a, b: _as_number(a) < _as_number(b),
    "eq": lambda a, b: str(a) == str(b),
    "ne": lambda a, b: str(a) != str(b),
}


def _as_number(value) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


class Condition:
    """Field-specific prefetch condition on the *predecessor* response,
    e.g. prefetch only when ``price gt 1000`` (Fig. 9)."""

    def __init__(self, field: str, op: str, value: str) -> None:
        if op not in _OPS:
            raise ValueError("unknown condition op {!r}".format(op))
        self.field = field
        self.op = op
        self.value = value

    def evaluate(self, predecessor_fields: Dict[str, object]) -> bool:
        if self.field not in predecessor_fields:
            return False
        return bool(_OPS[self.op](predecessor_fields[self.field], self.value))

    def to_dict(self) -> Dict[str, str]:
        return {"field": self.field, "op": self.op, "value": self.value}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Condition":
        return cls(data["field"], data["op"], data["value"])


class SignaturePolicy:
    """Per-signature prefetching policy."""

    def __init__(
        self,
        hash: str,
        uri: str = "",
        expiration_time: float = DEFAULT_EXPIRATION,
        prefetch: bool = True,
        probability: float = 1.0,
        add_header: Optional[List[Tuple[str, str]]] = None,
        condition: Optional[Condition] = None,
        disabled_reason: str = "",
        popularity_top_k: Optional[int] = None,
        min_hit_probability: Optional[float] = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if popularity_top_k is not None and popularity_top_k < 1:
            raise ValueError("popularity_top_k must be >= 1")
        if min_hit_probability is not None and not 0.0 <= min_hit_probability <= 1.0:
            raise ValueError("min_hit_probability must be in [0, 1]")
        self.hash = hash
        self.uri = uri
        self.expiration_time = expiration_time
        self.prefetch = prefetch
        self.probability = probability
        self.add_header: List[Tuple[str, str]] = list(add_header or [])
        self.condition = condition
        self.disabled_reason = disabled_reason
        #: §6.3 extension: restrict prefetching to the K most popular
        #: items of this signature (None = no restriction)
        self.popularity_top_k = popularity_top_k
        #: observed-hit-probability admission floor for this signature;
        #: ``None`` defers to the config-level ``admission_threshold``
        self.min_hit_probability = min_hit_probability

    def to_dict(self) -> Dict:
        data: Dict = {
            "hash": self.hash,
            "uri": self.uri,
            "expiration_time": self.expiration_time,
            "prefetch": self.prefetch,
            "probability": self.probability,
        }
        if self.add_header:
            data["add_header"] = [list(pair) for pair in self.add_header]
        if self.condition is not None:
            data["condition"] = self.condition.to_dict()
        if self.disabled_reason:
            data["disabled_reason"] = self.disabled_reason
        if self.popularity_top_k is not None:
            data["popularity_top_k"] = self.popularity_top_k
        if self.min_hit_probability is not None:
            data["min_hit_probability"] = self.min_hit_probability
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SignaturePolicy":
        condition = None
        if "condition" in data:
            condition = Condition.from_dict(data["condition"])
        return cls(
            hash=data["hash"],
            uri=data.get("uri", ""),
            expiration_time=float(data.get("expiration_time", DEFAULT_EXPIRATION)),
            prefetch=bool(data.get("prefetch", True)),
            probability=float(data.get("probability", 1.0)),
            add_header=[tuple(pair) for pair in data.get("add_header", [])],
            condition=condition,
            disabled_reason=data.get("disabled_reason", ""),
            popularity_top_k=data.get("popularity_top_k"),
            min_hit_probability=data.get("min_hit_probability"),
        )


class ProxyConfig:
    """The whole configuration the proxy loads at start-up (Fig. 10)."""

    def __init__(
        self,
        policies: Optional[Dict[str, SignaturePolicy]] = None,
        global_probability: float = 1.0,
        data_budget_bytes: Optional[int] = None,
        max_chain_depth: int = DEFAULT_CHAIN_DEPTH,
        default_expiration: float = DEFAULT_EXPIRATION,
        admission_threshold: Optional[float] = None,
        admission_min_issued: int = DEFAULT_ADMISSION_MIN_ISSUED,
        admission_explore: float = DEFAULT_ADMISSION_EXPLORE,
    ) -> None:
        if admission_threshold is not None and not 0.0 <= admission_threshold <= 1.0:
            raise ValueError("admission_threshold must be in [0, 1]")
        if not 0.0 <= admission_explore <= 1.0:
            raise ValueError("admission_explore must be in [0, 1]")
        #: keyed by signature *site* (the stable analysis-time id)
        self.policies: Dict[str, SignaturePolicy] = dict(policies or {})
        self.global_probability = global_probability
        self.data_budget_bytes = data_budget_bytes
        self.max_chain_depth = max_chain_depth
        self.default_expiration = default_expiration
        #: observed-hit-probability admission: signatures whose measured
        #: hits/issued falls below this are no longer prefetched (None
        #: disables the gate); per-policy ``min_hit_probability``
        #: overrides it for one signature
        self.admission_threshold = admission_threshold
        self.admission_min_issued = admission_min_issued
        self.admission_explore = admission_explore

    def policy(self, site: str) -> SignaturePolicy:
        if site not in self.policies:
            self.policies[site] = SignaturePolicy(
                hash=site, expiration_time=self.default_expiration
            )
        return self.policies[site]

    def disable(self, site: str, reason: str = "") -> None:
        policy = self.policy(site)
        policy.prefetch = False
        policy.disabled_reason = reason

    def effective_probability(self, site: str) -> float:
        return self.policy(site).probability * self.global_probability

    def admission_threshold_for(self, site: str) -> Optional[float]:
        """The hit-probability floor governing ``site`` (None = no gate)."""
        override = self.policy(site).min_hit_probability
        return override if override is not None else self.admission_threshold

    # -- (de)serialization -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "global_probability": self.global_probability,
                "data_budget_bytes": self.data_budget_bytes,
                "max_chain_depth": self.max_chain_depth,
                "default_expiration": self.default_expiration,
                "admission_threshold": self.admission_threshold,
                "admission_min_issued": self.admission_min_issued,
                "admission_explore": self.admission_explore,
                "policies": {
                    site: policy.to_dict() for site, policy in self.policies.items()
                },
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ProxyConfig":
        data = json.loads(text)
        return cls(
            policies={
                site: SignaturePolicy.from_dict(policy)
                for site, policy in data.get("policies", {}).items()
            },
            global_probability=float(data.get("global_probability", 1.0)),
            data_budget_bytes=data.get("data_budget_bytes"),
            max_chain_depth=int(data.get("max_chain_depth", DEFAULT_CHAIN_DEPTH)),
            default_expiration=float(data.get("default_expiration", DEFAULT_EXPIRATION)),
            admission_threshold=data.get("admission_threshold"),
            admission_min_issued=int(
                data.get("admission_min_issued", DEFAULT_ADMISSION_MIN_ISSUED)
            ),
            admission_explore=float(
                data.get("admission_explore", DEFAULT_ADMISSION_EXPLORE)
            ),
        )


def default_config(analysis: AnalysisResult) -> ProxyConfig:
    """Initial configuration straight from static analysis.

    Side-effecting signatures are disabled outright (challenge C3);
    everything else prefetches with probability 1 and the default
    expiration until verification (§4.3) refines it.
    """
    config = ProxyConfig()
    for signature in analysis.signatures:
        policy = SignaturePolicy(
            hash=signature.hash,
            uri=signature.request.uri.regex(),
            prefetch=not signature.side_effect,
            disabled_reason="side-effecting transaction" if signature.side_effect else "",
        )
        config.policies[signature.site] = policy
    return config
