"""Testing & verification phase (§4.3, Fig. 4 phase 2).

Before deployment:

1. **Fuzz-driven validation** — a Monkey event stream drives the app
   through the proxy against the (sandbox) origin servers.  Signatures
   whose reconstructed prefetch requests only ever produced errors or
   timeouts, and signatures whose instances never resolved all
   run-time values, are disabled in the configuration.
2. **Expiration estimation** — per prefetchable signature, the probe
   re-fetches a sample request with doubling gaps until the response
   differs; the last stable period becomes the signature's default
   ``expiration_time``.

The output is the *initial configuration* a service provider would then
customize (§4.4).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from repro.analysis.model import AnalysisResult
from repro.apk.program import ApkFile
from repro.device.fuzzing import MonkeyFuzzer
from repro.device.profile import DeviceProfile
from repro.device.runtime import AppRuntime
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.config import ProxyConfig, default_config
from repro.proxy.prefetcher import origin_fetch
from repro.proxy.proxy import AccelerationProxy, ProxiedTransport

INITIAL_PROBE_PERIOD = 60.0
MAX_PROBE_PERIOD = 7200.0


class VerificationReport:
    """What the verification phase found."""

    def __init__(self) -> None:
        self.disabled: Dict[str, str] = {}
        self.expiry_estimates: Dict[str, float] = {}
        self.fuzz_interactions = 0
        self.prefetch_successes: Dict[str, int] = {}
        self.prefetch_errors: Dict[str, int] = {}
        self.unresolved_sites: Dict[str, int] = {}
        #: app-level learned values to seed the deployed proxy with
        self.seed_store = None

    def __repr__(self) -> str:
        return "VerificationReport({} disabled, {} expiry estimates)".format(
            len(self.disabled), len(self.expiry_estimates)
        )


def run_verification(
    apk: ApkFile,
    analysis: AnalysisResult,
    build_origin_map: Callable[[Simulator], OriginMap],
    profile: Optional[DeviceProfile] = None,
    fuzz_duration: float = 120.0,
    seed: int = 1,
    access_rtt: float = 0.055,
    config: Optional[ProxyConfig] = None,
    estimate_expiry: bool = True,
) -> Tuple[ProxyConfig, VerificationReport]:
    """Run phase 2 in a sandbox simulation; returns (config, report)."""
    report = VerificationReport()
    config = config if config is not None else default_config(analysis)
    sim = Simulator()
    origins = build_origin_map(sim)
    proxy = AccelerationProxy(sim, origins, analysis, config=config, seed=seed)
    transport = ProxiedTransport(sim, Link(rtt=access_rtt, shared=True), proxy)
    runtime = AppRuntime(
        apk,
        transport,
        sim,
        profile if profile is not None else DeviceProfile(user="verify-user"),
    )
    fuzzer = MonkeyFuzzer(runtime, seed=seed)
    results = sim.run_process(fuzzer.run(fuzz_duration))
    report.fuzz_interactions = len(results)
    report.prefetch_successes = dict(proxy.prefetcher.success_by_site)
    report.prefetch_errors = dict(proxy.prefetcher.error_by_site)
    report.seed_store = proxy.learner.store.global_snapshot()

    # disable signatures whose reconstructions only ever failed
    for signature in analysis.prefetchable():
        site = signature.site
        successes = proxy.prefetcher.success_by_site.get(site, 0)
        errors = proxy.prefetcher.error_by_site.get(site, 0)
        if errors and not successes:
            reason = "verification: {} failed prefetches, none succeeded".format(errors)
            config.disable(site, reason)
            report.disabled[site] = reason
    # signatures whose instances never resolved all run-time values
    for instance in proxy.learner._pending:
        site = instance.signature.site
        report.unresolved_sites[site] = report.unresolved_sites.get(site, 0) + 1

    if estimate_expiry:
        for site, request in sorted(proxy.prefetcher.sample_requests.items()):
            if not config.policy(site).prefetch:
                continue
            estimate = sim.run_process(
                _estimate_expiry(sim, origins, request, user="verify-user")
            )
            report.expiry_estimates[site] = estimate
            config.policy(site).expiration_time = estimate
    return config, report


def _estimate_expiry(
    sim: Simulator, origins: OriginMap, request, user: str
) -> Generator:
    """Doubling probe: the last period with an unchanged response."""
    baseline, _ = yield sim.spawn(origin_fetch(sim, origins, request, user))
    period = INITIAL_PROBE_PERIOD
    while period < MAX_PROBE_PERIOD:
        yield Delay(period)
        probe, _ = yield sim.spawn(origin_fetch(sim, origins, request, user))
        if _body_differs(baseline, probe):
            return period
        baseline = probe
        period *= 2.0
    return MAX_PROBE_PERIOD


def _body_differs(a, b) -> bool:
    return a.body.to_wire() != b.body.to_wire()
