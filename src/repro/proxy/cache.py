"""Prefetched-response cache (§4.5).

Keyed by the *exact* request (method + URI + headers + body digest) and
isolated per user — §2: "the proxy keeps track of user contexts and
manages prefetched response per user separately"; §4.5: "the proxy
sends the response only when the prefetch request is identical to the
client's request".  Entries carry an expiration time (§4.4 policy) and
per-signature hit statistics feed the prefetch priority (§5).

Serving-scale layout
--------------------
The default (``indexed=True``) store is *sharded by user*: one inner
dict per user keyed by ``exact_key``, so lookup, insert, and
``entries_for_user`` touch only that user's shard, and a hierarchical
:class:`~repro.proxy.timerwheel.TimerWheel` files every entry by
expiry tick so ``purge_expired(now)`` visits only buckets the clock
passed — per-request cost stays flat as the user population grows.
Optional bounds (``max_entries_per_user``, byte-accounted
``max_bytes``) evict least-recently-used entries when a deployment
must cap memory.  ``PrefetchCache(indexed=False)`` retains the seed's
flat dict with full-scan purge/lookup as the differential oracle:
both modes must agree on every observable result
(``tests/test_proxy_cache_scale.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.httpmsg.message import Request, Response
from repro.metrics.perf import PERF
from repro.proxy.timerwheel import TimerWheel


class CacheEntry:
    __slots__ = ("response", "site", "fetched_at", "expires_at", "served", "size_bytes")

    def __init__(
        self, response: Response, site: str, fetched_at: float, expires_at: float
    ) -> None:
        self.response = response
        self.site = site
        self.fetched_at = fetched_at
        self.expires_at = expires_at
        self.served = False
        self.size_bytes = 0

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def __repr__(self) -> str:
        return "CacheEntry({}, expires_at={:.1f})".format(self.site, self.expires_at)


class PrefetchCache:
    """Per-user exact-match response cache with expiry.

    ``indexed=False`` selects the seed's flat-table implementation
    (linear purge and per-user scans), kept as the oracle the sharded
    path is differentially tested against.  ``max_entries_per_user``
    and ``max_bytes`` (both indexed-only) bound the store with LRU
    eviction; unbounded is the default and preserves the oracle's
    insertion-order observables exactly.
    """

    def __init__(
        self,
        indexed: bool = True,
        max_entries_per_user: Optional[int] = None,
        max_bytes: Optional[int] = None,
        wheel_tick: float = 0.5,
    ) -> None:
        if not indexed and (max_entries_per_user or max_bytes):
            raise ValueError("LRU bounds require the indexed cache")
        self.indexed = indexed
        self.max_entries_per_user = max_entries_per_user
        self.max_bytes = max_bytes
        self._bounded = bool(max_entries_per_user or max_bytes)
        #: naive mode: one flat (user, exact_key) table
        self._entries: Dict[Tuple[str, str], CacheEntry] = {}
        #: indexed mode: user -> {exact_key -> entry}; dict insertion
        #: order doubles as per-user LRU order (touched on bounded gets)
        self._shards: Dict[str, Dict[str, CacheEntry]] = {}
        self._wheel: Optional[TimerWheel] = (
            TimerWheel(tick=wheel_tick) if indexed else None
        )
        #: global LRU order across users, maintained only when bounded
        self._lru: Dict[Tuple[str, str], None] = {}
        self._count = 0  # live entries across all shards (indexed mode)
        self.total_bytes = 0
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.expired_evictions = 0
        self.lru_evictions = 0
        self.wheel_purged = 0
        self.stored = 0
        self._stats_listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    def add_stats_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(site)`` whenever a hit/miss moves a site's
        hit rate — the prefetcher uses this to re-rank its queue
        lazily instead of rebuilding it."""
        self._stats_listeners.append(listener)

    # ------------------------------------------------------------------
    def put(
        self,
        user: str,
        request: Request,
        response: Response,
        site: str,
        now: float,
        ttl: float,
    ) -> None:
        entry = CacheEntry(response, site, now, now + ttl)
        exact = request.exact_key()
        if self.indexed:
            shard = self._shards.get(user)
            if shard is None:
                shard = self._shards[user] = {}
            previous = shard.get(exact)
            shard[exact] = entry
            if previous is None:
                self._count += 1
            self._wheel.schedule(entry.expires_at, (user, exact, entry))
            if self._bounded:
                entry.size_bytes = response.wire_size()
                self.total_bytes += entry.size_bytes
                if previous is not None:
                    self.total_bytes -= previous.size_bytes
                self._lru.pop((user, exact), None)
                self._lru[(user, exact)] = None
                self._enforce_bounds(user)
        else:
            self._entries[(user, exact)] = entry
        self.stored += 1
        if PERF.enabled:
            PERF.incr("cache.stores")

    def _enforce_bounds(self, user: str) -> None:
        if self.max_entries_per_user is not None:
            shard = self._shards.get(user)
            while shard and len(shard) > self.max_entries_per_user:
                # shard dict order is per-user LRU order
                oldest = next(iter(shard))
                self._evict(user, oldest, shard[oldest])
        if self.max_bytes is not None:
            while self.total_bytes > self.max_bytes and self._lru:
                victim_user, victim_key = next(iter(self._lru))
                shard = self._shards.get(victim_user, {})
                entry = shard.get(victim_key)
                if entry is None:  # stale LRU slot
                    del self._lru[(victim_user, victim_key)]
                    continue
                self._evict(victim_user, victim_key, entry)

    def _evict(self, user: str, exact: str, entry: CacheEntry) -> None:
        shard = self._shards.get(user)
        if shard is not None and shard.pop(exact, None) is not None:
            self._count -= 1
            if not shard:
                del self._shards[user]
        self.total_bytes -= entry.size_bytes
        self._lru.pop((user, exact), None)
        self.lru_evictions += 1
        if PERF.enabled:
            PERF.incr("cache.lru_evictions")

    def _remove(self, user: str, exact: str) -> None:
        """Drop one entry (expiry path) from whichever store is live."""
        if self.indexed:
            shard = self._shards.get(user)
            if shard is None:
                return
            entry = shard.pop(exact, None)
            if entry is None:
                return
            self._count -= 1
            if not shard:
                del self._shards[user]
            if self._bounded:
                self.total_bytes -= entry.size_bytes
                self._lru.pop((user, exact), None)
        else:
            self._entries.pop((user, exact), None)

    # ------------------------------------------------------------------
    def _lookup(self, user: str, exact: str) -> Optional[CacheEntry]:
        if self.indexed:
            shard = self._shards.get(user)
            return None if shard is None else shard.get(exact)
        return self._entries.get((user, exact))

    def lookup(
        self, user: str, request: Request, now: float
    ) -> Tuple[Optional[CacheEntry], str]:
        """Exact-match lookup with its outcome: ``(entry, outcome)``.

        ``outcome`` is ``"hit"``, ``"miss_expired"`` (an entry was
        present but past its TTL — evicted, not served), or
        ``"miss_absent"`` (nothing prefetched for this exact request).
        The distinction feeds per-cause miss attribution in traces and
        the metric registry; :meth:`get` is the outcome-blind facade.
        """
        if PERF.enabled:
            PERF.incr("cache.lookups")
        exact = request.exact_key()
        entry = self._lookup(user, exact)
        if entry is None:
            return None, "miss_absent"
        if entry.expired(now):
            self._remove(user, exact)
            self.expired_evictions += 1
            if PERF.enabled:
                PERF.incr("cache.expired_on_lookup")
            return None, "miss_expired"
        if self._bounded:
            # touch: re-file at the recent end of both LRU orders
            shard = self._shards[user]
            del shard[exact]
            shard[exact] = entry
            del self._lru[(user, exact)]
            self._lru[(user, exact)] = None
        if PERF.enabled:
            PERF.incr("cache.lookup_hits")
        return entry, "hit"

    def get(self, user: str, request: Request, now: float) -> Optional[CacheEntry]:
        """Exact-match lookup; expired entries are evicted, not served."""
        return self.lookup(user, request, now)[0]

    def record_hit(self, site: str) -> None:
        self.hits[site] = self.hits.get(site, 0) + 1
        for listener in self._stats_listeners:
            listener(site)

    def record_miss(self, site: str) -> None:
        self.misses[site] = self.misses.get(site, 0) + 1
        for listener in self._stats_listeners:
            listener(site)

    def contains_fresh(self, user: str, request: Request, now: float) -> bool:
        entry = self._lookup(user, request.exact_key())
        return entry is not None and not entry.expired(now)

    def hit_rate(self, site: str) -> float:
        hits = self.hits.get(site, 0)
        misses = self.misses.get(site, 0)
        if hits + misses == 0:
            return 0.0
        return hits / float(hits + misses)

    def purge_expired(self, now: float) -> int:
        """Evict every expired entry; returns how many went.

        Indexed: the timer wheel surfaces only buckets the clock
        passed; each candidate is revalidated against its shard (it
        may have been overwritten or evicted since scheduling), so
        cost tracks expirations, not population.  Naive: the seed's
        full-table scan.
        """
        if not self.indexed:
            stale = [key for key, entry in self._entries.items() if entry.expired(now)]
            for key in stale:
                del self._entries[key]
            self.expired_evictions += len(stale)
            return len(stale)
        purged = 0
        for user, exact, entry in self._wheel.advance(now):
            live = self._lookup(user, exact)
            if live is not entry or not entry.expired(now):
                continue  # overwritten, already evicted, or refreshed
            self._remove(user, exact)
            purged += 1
        self.expired_evictions += purged
        self.wheel_purged += purged
        if PERF.enabled and purged:
            PERF.incr("cache.wheel_purged", purged)
        return purged

    def entries_for_user(self, user: str) -> List[CacheEntry]:
        """This user's entries, oldest-stored first (deterministic)."""
        if self.indexed:
            shard = self._shards.get(user)
            return [] if shard is None else list(shard.values())
        return [entry for (u, _), entry in self._entries.items() if u == user]

    @property
    def user_count(self) -> int:
        if self.indexed:
            return len(self._shards)
        return len({user for user, _ in self._entries})

    def __len__(self) -> int:
        if self.indexed:
            return self._count
        return len(self._entries)
