"""Prefetched-response cache (§4.5).

Keyed by the *exact* request (method + URI + headers + body digest) and
isolated per user — §2: "the proxy keeps track of user contexts and
manages prefetched response per user separately"; §4.5: "the proxy
sends the response only when the prefetch request is identical to the
client's request".  Entries carry an expiration time (§4.4 policy) and
per-signature hit statistics feed the prefetch priority (§5).

Serving-scale layout
--------------------
The default (``indexed=True``) store is *sharded by user*: one inner
dict per user keyed by ``exact_key``, so lookup, insert, and
``entries_for_user`` touch only that user's shard, and a hierarchical
:class:`~repro.proxy.timerwheel.TimerWheel` files every entry by
expiry tick so ``purge_expired(now)`` visits only buckets the clock
passed — per-request cost stays flat as the user population grows.
Optional bounds (``max_entries_per_user``, byte-accounted
``max_bytes``) evict least-recently-used entries when a deployment
must cap memory.  ``PrefetchCache(indexed=False)`` retains the seed's
flat dict with full-scan purge/lookup as the differential oracle:
both modes must agree on every observable result
(``tests/test_proxy_cache_scale.py``).

Adaptive per-user budgets
-------------------------
A flat per-user cap thrashes: every user gets the same shard size no
matter whether their prefetches are ever consumed.  With
``max_entries_total`` + ``adaptive=True`` the store instead carries a
*global* entry budget apportioned by recent per-user hit mass (two
rotating count windows — O(1) per hit, no decay sweeps): half the
budget splits equally across active shards, half follows the hit
mass, with a small floor so new users can bootstrap.  Users whose
prefetched entries get consumed keep larger shards; users that only
ever fill and evict stop stealing space from them.  Entries evicted
or expired *before their first hit* are counted as ``wasted``
(per-site in ``wasted_by_site``) — the signal the prefetcher's
admission gate and offline audits run on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.httpmsg.message import Request, Response
from repro.metrics.perf import PERF
from repro.proxy.timerwheel import TimerWheel


class CacheEntry:
    __slots__ = ("response", "site", "fetched_at", "expires_at", "served", "size_bytes")

    def __init__(
        self, response: Response, site: str, fetched_at: float, expires_at: float
    ) -> None:
        self.response = response
        self.site = site
        self.fetched_at = fetched_at
        self.expires_at = expires_at
        self.served = False
        self.size_bytes = 0

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def __repr__(self) -> str:
        return "CacheEntry({}, expires_at={:.1f})".format(self.site, self.expires_at)


class PrefetchCache:
    """Per-user exact-match response cache with expiry.

    ``indexed=False`` selects the seed's flat-table implementation
    (linear purge and per-user scans), kept as the oracle the sharded
    path is differentially tested against.  ``max_entries_per_user``
    and ``max_bytes`` (both indexed-only) bound the store with LRU
    eviction; unbounded is the default and preserves the oracle's
    insertion-order observables exactly.

    ``max_entries_total`` bounds the whole store; with
    ``adaptive=True`` that global budget is additionally apportioned
    per user by recent hit mass (see the module docstring), so the
    flat per-user cap can be dropped entirely.
    """

    def __init__(
        self,
        indexed: bool = True,
        max_entries_per_user: Optional[int] = None,
        max_bytes: Optional[int] = None,
        wheel_tick: float = 0.5,
        max_entries_total: Optional[int] = None,
        adaptive: bool = False,
        min_entries_per_user: int = 4,
        hit_mass_window: float = 30.0,
    ) -> None:
        if not indexed and (max_entries_per_user or max_bytes or max_entries_total):
            raise ValueError("LRU bounds require the indexed cache")
        if adaptive and not max_entries_total:
            raise ValueError("adaptive budgets require max_entries_total")
        self.indexed = indexed
        self.max_entries_per_user = max_entries_per_user
        self.max_bytes = max_bytes
        self.max_entries_total = max_entries_total
        self.adaptive = adaptive
        self.min_entries_per_user = min_entries_per_user
        self.hit_mass_window = hit_mass_window
        self._bounded = bool(max_entries_per_user or max_bytes or max_entries_total)
        #: naive mode: one flat (user, exact_key) table
        self._entries: Dict[Tuple[str, str], CacheEntry] = {}
        #: indexed mode: user -> {exact_key -> entry}; dict insertion
        #: order doubles as per-user LRU order (touched on bounded gets)
        self._shards: Dict[str, Dict[str, CacheEntry]] = {}
        self._wheel: Optional[TimerWheel] = (
            TimerWheel(tick=wheel_tick) if indexed else None
        )
        #: global LRU order across users, maintained only when bounded
        self._lru: Dict[Tuple[str, str], None] = {}
        self._count = 0  # live entries across all shards (indexed mode)
        self.total_bytes = 0
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.expired_evictions = 0
        self.lru_evictions = 0
        self.wheel_purged = 0
        self.stored = 0
        #: entries that left the cache (evicted or expired) having
        #: never served a hit — the prefetch-waste signal
        self.wasted = 0
        self.wasted_by_site: Dict[str, int] = {}
        #: rotating per-user hit-count windows (adaptive budgets): two
        #: epochs of ``hit_mass_window`` seconds; mass = cur + prev
        self._mass_epoch = 0
        self._mass_cur: Dict[str, int] = {}
        self._mass_prev: Dict[str, int] = {}
        self._mass_cur_total = 0
        self._mass_prev_total = 0
        self._stats_listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    def add_stats_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(site)`` whenever a hit/miss moves a site's
        hit rate — the prefetcher uses this to re-rank its queue
        lazily instead of rebuilding it."""
        self._stats_listeners.append(listener)

    # ------------------------------------------------------------------
    def put(
        self,
        user: str,
        request: Request,
        response: Response,
        site: str,
        now: float,
        ttl: float,
    ) -> None:
        entry = CacheEntry(response, site, now, now + ttl)
        exact = request.exact_key()
        if self.indexed:
            shard = self._shards.get(user)
            if shard is None:
                shard = self._shards[user] = {}
            previous = shard.get(exact)
            shard[exact] = entry
            if previous is None:
                self._count += 1
            self._wheel.schedule(entry.expires_at, (user, exact, entry))
            if self._bounded:
                entry.size_bytes = response.wire_size()
                self.total_bytes += entry.size_bytes
                if previous is not None:
                    self.total_bytes -= previous.size_bytes
                self._lru.pop((user, exact), None)
                self._lru[(user, exact)] = None
                self._enforce_bounds(user)
        else:
            self._entries[(user, exact)] = entry
        self.stored += 1
        if PERF.enabled:
            PERF.incr("cache.stores")

    def _enforce_bounds(self, user: str) -> None:
        if self.max_entries_per_user is not None:
            shard = self._shards.get(user)
            while shard and len(shard) > self.max_entries_per_user:
                # shard dict order is per-user LRU order
                oldest = next(iter(shard))
                self._evict(user, oldest, shard[oldest])
        if self.adaptive:
            shard = self._shards.get(user)
            allowance = self._allowance(user)
            while shard and len(shard) > allowance:
                oldest = next(iter(shard))
                self._evict(user, oldest, shard[oldest])
        if self.max_entries_total is not None:
            while self._count > self.max_entries_total and self._lru:
                victim_user, victim_key = next(iter(self._lru))
                shard = self._shards.get(victim_user, {})
                entry = shard.get(victim_key)
                if entry is None:  # stale LRU slot
                    del self._lru[(victim_user, victim_key)]
                    continue
                self._evict(victim_user, victim_key, entry)
        if self.max_bytes is not None:
            while self.total_bytes > self.max_bytes and self._lru:
                victim_user, victim_key = next(iter(self._lru))
                shard = self._shards.get(victim_user, {})
                entry = shard.get(victim_key)
                if entry is None:  # stale LRU slot
                    del self._lru[(victim_user, victim_key)]
                    continue
                self._evict(victim_user, victim_key, entry)

    # -- adaptive budget apportionment ---------------------------------
    def _note_user_hit(self, user: str, now: float) -> None:
        epoch = int(now // self.hit_mass_window)
        if epoch != self._mass_epoch:
            if epoch == self._mass_epoch + 1:
                self._mass_prev = self._mass_cur
                self._mass_prev_total = self._mass_cur_total
            else:  # clock jumped: both windows are stale
                self._mass_prev = {}
                self._mass_prev_total = 0
            self._mass_cur = {}
            self._mass_cur_total = 0
            self._mass_epoch = epoch
        self._mass_cur[user] = self._mass_cur.get(user, 0) + 1
        self._mass_cur_total += 1

    def hit_mass(self, user: str) -> int:
        """Hits ``user`` scored in the last two mass windows."""
        return self._mass_cur.get(user, 0) + self._mass_prev.get(user, 0)

    def _allowance(self, user: str) -> int:
        """This user's current entry allowance under the global budget.

        Half the budget splits equally across active shards; the other
        half follows recent hit mass (all-equal before any hits), with
        ``min_entries_per_user`` as a bootstrap floor.
        """
        active = max(1, len(self._shards))
        equal_share = self.max_entries_total / (2.0 * active)
        total_mass = self._mass_cur_total + self._mass_prev_total
        if total_mass > 0:
            mass_share = (
                self.max_entries_total * 0.5 * self.hit_mass(user) / total_mass
            )
        else:
            mass_share = equal_share
        return max(self.min_entries_per_user, int(equal_share + mass_share))

    def _note_wasted(self, entry: CacheEntry) -> None:
        """Count an entry leaving the cache without ever serving a hit."""
        if entry.served:
            return
        self.wasted += 1
        self.wasted_by_site[entry.site] = self.wasted_by_site.get(entry.site, 0) + 1
        if PERF.enabled:
            PERF.incr("prefetch.wasted")
            PERF.registry.inc(
                "prefetch_wasted", labels={"signature": entry.site}
            )

    def _evict(self, user: str, exact: str, entry: CacheEntry) -> None:
        shard = self._shards.get(user)
        if shard is not None and shard.pop(exact, None) is not None:
            self._count -= 1
            if not shard:
                del self._shards[user]
        self.total_bytes -= entry.size_bytes
        self._lru.pop((user, exact), None)
        self.lru_evictions += 1
        self._note_wasted(entry)
        if PERF.enabled:
            PERF.incr("cache.lru_evictions")

    def _remove(self, user: str, exact: str) -> None:
        """Drop one entry (expiry path) from whichever store is live."""
        if self.indexed:
            shard = self._shards.get(user)
            if shard is None:
                return
            entry = shard.pop(exact, None)
            if entry is None:
                return
            self._count -= 1
            if not shard:
                del self._shards[user]
            if self._bounded:
                self.total_bytes -= entry.size_bytes
                self._lru.pop((user, exact), None)
            self._note_wasted(entry)
        else:
            entry = self._entries.pop((user, exact), None)
            if entry is not None:
                self._note_wasted(entry)

    # ------------------------------------------------------------------
    def _lookup(self, user: str, exact: str) -> Optional[CacheEntry]:
        if self.indexed:
            shard = self._shards.get(user)
            return None if shard is None else shard.get(exact)
        return self._entries.get((user, exact))

    def lookup(
        self, user: str, request: Request, now: float
    ) -> Tuple[Optional[CacheEntry], str]:
        """Exact-match lookup with its outcome: ``(entry, outcome)``.

        ``outcome`` is ``"hit"``, ``"miss_expired"`` (an entry was
        present but past its TTL — evicted, not served), or
        ``"miss_absent"`` (nothing prefetched for this exact request).
        The distinction feeds per-cause miss attribution in traces and
        the metric registry; :meth:`get` is the outcome-blind facade.
        """
        if PERF.enabled:
            PERF.incr("cache.lookups")
        exact = request.exact_key()
        entry = self._lookup(user, exact)
        if entry is None:
            return None, "miss_absent"
        if entry.expired(now):
            self._remove(user, exact)
            self.expired_evictions += 1
            if PERF.enabled:
                PERF.incr("cache.expired_on_lookup")
            return None, "miss_expired"
        if self._bounded:
            # touch: re-file at the recent end of both LRU orders
            shard = self._shards[user]
            del shard[exact]
            shard[exact] = entry
            del self._lru[(user, exact)]
            self._lru[(user, exact)] = None
        if self.adaptive:
            self._note_user_hit(user, now)
        if PERF.enabled:
            PERF.incr("cache.lookup_hits")
        return entry, "hit"

    def get(self, user: str, request: Request, now: float) -> Optional[CacheEntry]:
        """Exact-match lookup; expired entries are evicted, not served."""
        return self.lookup(user, request, now)[0]

    def record_hit(self, site: str) -> None:
        self.hits[site] = self.hits.get(site, 0) + 1
        if PERF.enabled:
            PERF.registry.inc("prefetch_hits", labels={"signature": site})
        for listener in self._stats_listeners:
            listener(site)

    def record_miss(self, site: str) -> None:
        self.misses[site] = self.misses.get(site, 0) + 1
        for listener in self._stats_listeners:
            listener(site)

    def contains_fresh(self, user: str, request: Request, now: float) -> bool:
        entry = self._lookup(user, request.exact_key())
        return entry is not None and not entry.expired(now)

    def hit_rate(self, site: str) -> float:
        hits = self.hits.get(site, 0)
        misses = self.misses.get(site, 0)
        if hits + misses == 0:
            return 0.0
        return hits / float(hits + misses)

    def purge_expired(self, now: float) -> int:
        """Evict every expired entry; returns how many went.

        Indexed: the timer wheel surfaces only buckets the clock
        passed; each candidate is revalidated against its shard (it
        may have been overwritten or evicted since scheduling), so
        cost tracks expirations, not population.  Naive: the seed's
        full-table scan.
        """
        if not self.indexed:
            stale = [key for key, entry in self._entries.items() if entry.expired(now)]
            for key in stale:
                self._note_wasted(self._entries.pop(key))
            self.expired_evictions += len(stale)
            return len(stale)
        purged = 0
        for user, exact, entry in self._wheel.advance(now):
            live = self._lookup(user, exact)
            if live is not entry or not entry.expired(now):
                continue  # overwritten, already evicted, or refreshed
            self._remove(user, exact)
            purged += 1
        self.expired_evictions += purged
        self.wheel_purged += purged
        if PERF.enabled and purged:
            PERF.incr("cache.wheel_purged", purged)
        return purged

    def entries_for_user(self, user: str) -> List[CacheEntry]:
        """This user's entries, oldest-stored first (deterministic)."""
        if self.indexed:
            shard = self._shards.get(user)
            return [] if shard is None else list(shard.values())
        return [entry for (u, _), entry in self._entries.items() if u == user]

    @property
    def user_count(self) -> int:
        if self.indexed:
            return len(self._shards)
        return len({user for user, _ in self._entries})

    def __len__(self) -> int:
        if self.indexed:
            return self._count
        return len(self._entries)
