"""Prefetched-response cache (§4.5).

Keyed by the *exact* request (method + URI + headers + body digest) and
isolated per user — §2: "the proxy keeps track of user contexts and
manages prefetched response per user separately"; §4.5: "the proxy
sends the response only when the prefetch request is identical to the
client's request".  Entries carry an expiration time (§4.4 policy) and
per-signature hit statistics feed the prefetch priority (§5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.httpmsg.message import Request, Response
from repro.metrics.perf import PERF


class CacheEntry:
    __slots__ = ("response", "site", "fetched_at", "expires_at", "served")

    def __init__(
        self, response: Response, site: str, fetched_at: float, expires_at: float
    ) -> None:
        self.response = response
        self.site = site
        self.fetched_at = fetched_at
        self.expires_at = expires_at
        self.served = False

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def __repr__(self) -> str:
        return "CacheEntry({}, expires_at={:.1f})".format(self.site, self.expires_at)


class PrefetchCache:
    """Per-user exact-match response cache with expiry."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], CacheEntry] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.expired_evictions = 0
        self.stored = 0

    # ------------------------------------------------------------------
    def put(
        self,
        user: str,
        request: Request,
        response: Response,
        site: str,
        now: float,
        ttl: float,
    ) -> None:
        key = (user, request.exact_key())
        self._entries[key] = CacheEntry(response, site, now, now + ttl)
        self.stored += 1
        if PERF.enabled:
            PERF.incr("cache.stores")

    def get(self, user: str, request: Request, now: float) -> Optional[CacheEntry]:
        """Exact-match lookup; expired entries are evicted, not served."""
        if PERF.enabled:
            PERF.incr("cache.lookups")
        key = (user, request.exact_key())
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expired(now):
            del self._entries[key]
            self.expired_evictions += 1
            if PERF.enabled:
                PERF.incr("cache.expired_on_lookup")
            return None
        if PERF.enabled:
            PERF.incr("cache.lookup_hits")
        return entry

    def record_hit(self, site: str) -> None:
        self.hits[site] = self.hits.get(site, 0) + 1

    def record_miss(self, site: str) -> None:
        self.misses[site] = self.misses.get(site, 0) + 1

    def contains_fresh(self, user: str, request: Request, now: float) -> bool:
        key = (user, request.exact_key())
        entry = self._entries.get(key)
        return entry is not None and not entry.expired(now)

    def hit_rate(self, site: str) -> float:
        hits = self.hits.get(site, 0)
        misses = self.misses.get(site, 0)
        if hits + misses == 0:
            return 0.0
        return hits / float(hits + misses)

    def purge_expired(self, now: float) -> int:
        stale = [key for key, entry in self._entries.items() if entry.expired(now)]
        for key in stale:
            del self._entries[key]
        self.expired_evictions += len(stale)
        return len(stale)

    def entries_for_user(self, user: str) -> List[CacheEntry]:
        return [entry for (u, _), entry in self._entries.items() if u == user]

    def __len__(self) -> int:
        return len(self._entries)
