"""Multi-app proxy (§2: "the proxy can accelerate multiple target apps").

One deployment point accelerating several apps at once: requests are
routed to the per-app :class:`AccelerationProxy` whose signature set
claims the request's origin; unknown origins pass straight through to
the network.  Each app keeps its own learner, cache, configuration,
and statistics — exactly as if it had a dedicated proxy.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.httpmsg.message import Request
from repro.metrics.trace import TRACER
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap, Transport
from repro.proxy.prefetcher import origin_fetch
from repro.proxy.proxy import AccelerationProxy


class MultiAppProxy:
    """Routes traffic to per-app acceleration proxies by origin."""

    def __init__(self, sim: Simulator, origins: OriginMap) -> None:
        self.sim = sim
        self.origins = origins
        self._apps: List[Tuple[str, AccelerationProxy]] = []
        self._by_origin: Dict[str, AccelerationProxy] = {}
        self._name_by_origin: Dict[str, str] = {}
        self.passthrough = 0

    def register_app(self, name: str, proxy: AccelerationProxy) -> None:
        """Attach one app's generated proxy.

        The origins the app's signatures can match are claimed by
        probing each registered origin against the app's matcher, so
        routing needs no extra configuration.  Names starting with an
        underscore are reserved for aggregate rows in :meth:`stats`
        (``_passthrough``) and rejected.
        """
        if name.startswith("_"):
            raise ValueError(
                "app name {!r} is reserved: names starting with '_' collide "
                "with aggregate stats rows such as '_passthrough'".format(name)
            )
        if any(existing == name for existing, _ in self._apps):
            raise ValueError("app {!r} is already registered".format(name))
        self._apps.append((name, proxy))
        for origin in proxy.origins.origins():
            self._by_origin[origin] = proxy
            self._name_by_origin[origin] = name

    def app_for(self, request: Request) -> Optional[AccelerationProxy]:
        return self._by_origin.get(request.uri.origin())

    def handle_request(self, request: Request, user: str) -> Generator:
        # the routing boundary owns the request's trace: it is begun
        # here (sampling decided once per request) and handed down into
        # the per-app proxy, so one record holds the app tag plus every
        # inner stage span
        trace = TRACER.begin(user) if TRACER.enabled else None
        proxy = self.app_for(request)
        if proxy is not None:
            if trace is not None:
                trace.app = self._name_by_origin.get(request.uri.origin())
            response = yield self.sim.spawn(
                proxy.handle_request(request, user, trace=trace)
            )
            TRACER.finish(trace)
            return response
        # unknown app traffic: plain forwarding, no acceleration
        self.passthrough += 1
        span = None
        if trace is not None:
            trace.app = "_passthrough"
            span = trace.start_span("cache_lookup")
            trace.end_span(span, outcome="passthrough", shard=user)
            span = trace.start_span("origin_fetch")
        response, _ = yield self.sim.spawn(
            origin_fetch(self.sim, self.origins, request, user)
        )
        if span is not None:
            trace.end_span(span)
            TRACER.finish(trace)
        return response

    def purge_expired(self, now: float) -> int:
        """Purge every app cache's expired entries; returns the total."""
        return sum(proxy.cache.purge_expired(now) for _, proxy in self._apps)

    def cache_entries(self) -> int:
        """Live prefetched entries across every app cache."""
        return sum(len(proxy.cache) for _, proxy in self._apps)

    def stats(self) -> Dict[str, Dict]:
        per_app = {name: proxy.stats() for name, proxy in self._apps}
        per_app["_passthrough"] = {"requests": self.passthrough}
        return per_app


class MultiAppTransport(Transport):
    """Client transport through a shared multi-app proxy."""

    def __init__(self, sim: Simulator, access_link: Link, proxy: MultiAppProxy) -> None:
        self.sim = sim
        self.access_link = access_link
        self.proxy = proxy

    def send(self, request: Request, user: str) -> Generator:
        request_size = request.wire_size()
        yield Delay(self.access_link.transfer_delay(self.sim.now, request_size))
        response = yield self.sim.spawn(self.proxy.handle_request(request, user))
        response_size = response.wire_size()
        yield Delay(self.access_link.transfer_delay(self.sim.now, response_size))
        return response
