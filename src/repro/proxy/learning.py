"""Dynamic learning (§4.2, Figs. 6–8).

For every HTTP transaction the proxy observes it:

1. identifies the *learning target* by regex-matching the URI against
   the signature set;
2. when the target is a **successor**, learns run-time values from the
   actual message (wildcard captures → tag store, field values, which
   branch-variant the app used most recently) — Fig. 7 case 2;
3. when the target is a **predecessor**, extracts the dependency-source
   fields from the response and creates/fills successor request
   instances, replicated per list element — Fig. 7 case 1;
4. retries pending instances whose missing values may now be known.

Cookie state is tracked per user (the §2 "user context"): responses'
``Set-Cookie`` headers update a per-user jar, and the ``env:cookie``
wildcard resolves to the jar's current header for the target origin,
so a prefetch built *after* a session cookie was issued matches the
client's next request even though no client request carried the new
cookie yet.

Deferred learn pipeline
-----------------------
Stage timings showed run-time value learning + successor instantiation
dominating the request path (``proxy.learn`` p99 ≈ 4,900µs against
~30µs dispatch).  In ``learn_mode="deferred"`` (the default through
:class:`~repro.proxy.proxy.AccelerationProxy`), :meth:`observe` on the
request path does only the already-indexed signature match plus an O(1)
enqueue into a bounded learn queue; the full pipeline — value
learning, cookie tracking, successor spawning, the pending-instance
drain — runs inside :meth:`drain_learn_queue`, a *budgeted* drain
pumped by the proxy after the response is determined, by the
prefetcher after each background fetch, and by the refresher/scale
sweeper loops.  A full queue drops the observation (counted under
``learn.queue_overflow``) rather than ever blocking the request path.
``learn_mode="inline"`` retains the seed's learn-on-observe behavior
as the differential oracle: ``tests/test_learning_deferred.py``
asserts both modes produce the same ready-prefetch set once the queue
is drained.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    UnknownAtom,
)
from repro.httpmsg.cookies import CookieJar
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.message import Request, Response, Transaction
from repro.metrics.perf import PERF
from repro.metrics.trace import TraceContext
from repro.proxy.instances import (
    RequestInstance,
    RuntimeSignature,
    SignatureMatcher,
    ValueStore,
    build_runtime_signatures,
    is_per_user_tag,
)

MAX_PENDING = 10_000

#: legal values of :attr:`DynamicLearner.learn_mode`
LEARN_MODES = ("inline", "deferred")

#: default bound of the deferred learn queue (observations, not bytes)
DEFAULT_LEARN_QUEUE_CAPACITY = 4096

#: default observations processed per :meth:`drain_learn_queue` pump
DEFAULT_LEARN_DRAIN_BUDGET = 32


class _QueuedObservation:
    """One request-path observation parked for the deferred drain."""

    __slots__ = ("signature", "transaction", "user", "depth")

    def __init__(self, signature, transaction, user, depth) -> None:
        self.signature = signature
        self.transaction = transaction
        self.user = user
        self.depth = depth


class ReadyPrefetch:
    """A fully-resolved prefetch request handed to the prefetcher."""

    __slots__ = ("instance", "request")

    def __init__(self, instance: RequestInstance, request: Request) -> None:
        self.instance = instance
        self.request = request

    def __repr__(self) -> str:
        return "ReadyPrefetch({} {})".format(
            self.instance.signature.site, self.request.uri.to_string()
        )


class DynamicLearner:
    """Per-app learning state shared across users (with per-user
    isolation for user-bound values)."""

    def __init__(
        self,
        analysis: AnalysisResult,
        store: Optional[ValueStore] = None,
        max_depth: Optional[int] = None,
        static_only: bool = False,
        learn_mode: str = "inline",
        learn_queue_capacity: int = DEFAULT_LEARN_QUEUE_CAPACITY,
        learn_drain_budget: Optional[int] = DEFAULT_LEARN_DRAIN_BUDGET,
    ) -> None:
        if learn_mode not in LEARN_MODES:
            raise ValueError(
                "learn_mode must be one of {}, got {!r}".format(
                    LEARN_MODES, learn_mode
                )
            )
        self.analysis = analysis
        self.signatures = build_runtime_signatures(analysis)
        # Fig. 6 step 1: only signatures participating in a dependency
        # are interesting; the matcher still sees all of them so that
        # ambiguous URIs resolve to the most specific signature.
        self.matcher = SignatureMatcher(self.signatures)
        #: site → runtime signature, hoisted out of _spawn_successors
        #: (was rebuilt O(#signatures) per predecessor observation);
        #: anything that replaces ``self.signatures`` must rebuild it
        #: via :meth:`_index_signatures`
        self._by_site: Dict[str, RuntimeSignature] = {}
        self._index_signatures()
        #: ``"inline"`` learns on :meth:`observe` (the seed behavior,
        #: kept as the differential oracle); ``"deferred"`` parks the
        #: observation in the learn queue for :meth:`drain_learn_queue`
        self.learn_mode = learn_mode
        self.learn_queue_capacity = learn_queue_capacity
        #: observations processed per drain pump (None = drain all)
        self.learn_drain_budget = learn_drain_budget
        self._learn_queue: Deque[_QueuedObservation] = deque()
        self.queue_overflows = 0
        self.deferred_enqueued = 0
        self.deferred_drained = 0
        self.store = store if store is not None else ValueStore()
        #: chain-depth bound; instances beyond it are never spawned
        #: (the prefetcher would reject them anyway)
        self.max_depth = max_depth
        #: ablation: a PALOMA-style proxy that uses only what static
        #: analysis provides — no run-time value learning.  Requests
        #: whose formats are fully determined at run time can then
        #: never be reconstructed (§7's comparison)
        self.static_only = static_only
        self.preferred_variant: Dict[Tuple[str, str], frozenset] = {}
        # pending-instance state: a FIFO deque for eviction order (may
        # hold stale entries, skipped lazily), the live-instance map,
        # and the wake index mapping each missing tag/field key to the
        # instances blocked on it, so learning a value retries only the
        # affected instances instead of rescanning the whole list
        self._queue: Deque[RequestInstance] = deque()
        self._pending_keys: Dict[Tuple, RequestInstance] = {}
        #: live pending instances per (user, site) — backs the proxy's
        #: ``wildcard_pending`` miss-cause attribution in O(1)
        self._pending_sites: Dict[Tuple[str, str], int] = {}
        self._wake_index: Dict[Tuple, List[RequestInstance]] = {}
        self._woken: Dict[Tuple, None] = {}  # ordered set of fired keys
        self._fresh: List[RequestInstance] = []
        self._enqueue_seq = 0
        self._jars: Dict[str, CookieJar] = {}
        self.observed_count = 0
        self.wake_events = 0
        self.wake_retries = 0
        self.completed_count = 0
        self.store.add_listener(self._on_value_learned)

    # ------------------------------------------------------------------
    def _index_signatures(self) -> None:
        """(Re)build the site index over ``self.signatures``."""
        self._by_site = {s.site: s for s in self.signatures}

    def jar(self, user: str) -> CookieJar:
        if user not in self._jars:
            self._jars[user] = CookieJar()
        return self._jars[user]

    def signature_for(self, request: Request) -> Optional[RuntimeSignature]:
        return self.matcher.match(request)

    # ------------------------------------------------------------------
    def observe(
        self,
        transaction: Transaction,
        user: str,
        depth: int = 0,
        trace: Optional[TraceContext] = None,
    ) -> List[ReadyPrefetch]:
        """Feed one observed transaction through Fig. 6's workflow.

        ``depth`` is the prefetch-chain depth of the transaction (0 for
        client traffic); instances it spawns get ``depth + 1``.
        ``trace`` (optional) collects a ``learn`` span around run-time
        value learning and an ``instantiate`` span around successor
        spawning + the pending-instance drain.
        Returns newly completed prefetch requests.
        """
        self.observed_count += 1
        signature = self.matcher.match(transaction.request)
        if self.learn_mode == "deferred":
            # request path ends here: O(1) enqueue, never blocks.  The
            # matched signature rides along so the drain skips a second
            # (memoized, but still non-free) dispatch.
            span = (
                trace.start_span(
                    "learn", signature=signature.site if signature else ""
                )
                if trace is not None
                else None
            )
            if len(self._learn_queue) >= self.learn_queue_capacity:
                self.queue_overflows += 1
                if PERF.enabled:
                    PERF.incr("learn.queue_overflow")
                if span is not None:
                    trace.end_span(span, outcome="overflow")
                return []
            self._learn_queue.append(
                _QueuedObservation(signature, transaction, user, depth)
            )
            self.deferred_enqueued += 1
            if PERF.enabled:
                PERF.peak("learn.queue_depth_peak", len(self._learn_queue))
            if span is not None:
                trace.end_span(span, outcome="enqueued")
            return []
        return self._process_observation(signature, transaction, user, depth, trace)

    def _process_observation(
        self,
        signature: Optional[RuntimeSignature],
        transaction: Transaction,
        user: str,
        depth: int,
        trace: Optional[TraceContext] = None,
    ) -> List[ReadyPrefetch]:
        """The full Fig. 6 pipeline for one observed transaction."""
        if signature is None:
            self._track_cookies(transaction, user, signature)
            return []
        span = (
            trace.start_span("learn", signature=signature.site)
            if trace is not None
            else None
        )
        if not self.static_only:
            # case 2: the transaction is an actual example of this
            # signature
            self._learn_from_request(signature, transaction.request, user)
            # jar-derived cookie state must win over the request's
            # (already stale) Cookie header: the client's *next* request
            # will carry whatever Set-Cookie this response just issued
            self._track_cookies(transaction, user, signature)
        if span is not None:
            trace.end_span(span)
            span = trace.start_span("instantiate", signature=signature.site)
        ready: List[ReadyPrefetch] = []
        spawned = 0
        # case 1: predecessor — spawn successor instances
        if signature.is_predecessor and transaction.response.ok:
            for instance in self._spawn_successors(
                signature, transaction.response, user, depth
            ):
                self._enqueue(instance)
                spawned += 1
        # drain anything now resolvable (including older pending work)
        ready.extend(self._drain_pending())
        if span is not None:
            trace.end_span(span, spawned=spawned, completed=len(ready))
        return ready

    # ------------------------------------------------------------------
    # deferred learn queue
    # ------------------------------------------------------------------
    @property
    def learn_queue_depth(self) -> int:
        """Observations parked for the deferred drain."""
        return len(self._learn_queue)

    def drain_learn_queue(
        self,
        budget: Optional[int] = None,
        trace: Optional[TraceContext] = None,
    ) -> List[ReadyPrefetch]:
        """Run the learn pipeline for up to ``budget`` parked observations.

        ``budget=None`` uses :attr:`learn_drain_budget` (itself None =
        drain everything).  Observations process in arrival order, so a
        fully-drained queue yields exactly the inline-mode ready set in
        exactly the inline-mode order.  Returns the completed prefetch
        requests; the caller hands them to the prefetcher exactly as it
        would inline results.
        """
        if not self._learn_queue:
            return []
        if budget is None:
            budget = self.learn_drain_budget
        remaining = len(self._learn_queue) if budget is None else budget
        ready: List[ReadyPrefetch] = []
        drained = 0
        while self._learn_queue and remaining > 0:
            queued = self._learn_queue.popleft()
            remaining -= 1
            drained += 1
            ready.extend(
                self._process_observation(
                    queued.signature,
                    queued.transaction,
                    queued.user,
                    queued.depth,
                    trace,
                )
            )
        self.deferred_drained += drained
        if PERF.enabled and drained:
            PERF.incr("learn.deferred_drained", drained)
        return ready

    # ------------------------------------------------------------------
    # learning from an observed request (successor routine)
    # ------------------------------------------------------------------
    def _learn_from_request(
        self, signature: RuntimeSignature, request: Request, user: str
    ) -> None:
        # URI wildcards: match with capture groups, learn tag values
        base_uri = request.uri.origin() + request.uri.path
        captures = signature.uri_matcher.match(base_uri)
        if captures:
            for atom, value in captures:
                if isinstance(atom, UnknownAtom):
                    self.store.learn_tag(user, atom.tag, value)
        # field values + the variant actually present
        present: List[str] = []
        for path, template in signature.signature.request.fields.items():
            values = path.extract(request)
            if not values:
                continue
            present.append(path.to_string())
            value = str(values[0])
            if template.dep_atoms():
                continue  # dependency-derived: per-instance, never cached
            per_user = any(
                is_per_user_tag(atom.tag) for atom in template.unknown_atoms()
            )
            self.store.learn_field(
                user, signature.site, path.to_string(), value, per_user
            )
            if len(template.atoms) == 1 and isinstance(template.atoms[0], UnknownAtom):
                self.store.learn_tag(user, template.atoms[0].tag, value)
        variant = frozenset(present)
        if variant in signature.variants_set:
            slot = (user, signature.site)
            if self.preferred_variant.get(slot) != variant:
                self.preferred_variant[slot] = variant
                # a new preferred variant can complete an instance even
                # without new store values — wake the (user, site) pair
                self._on_value_learned(("variant", user, signature.site))

    def _track_cookies(
        self,
        transaction: Transaction,
        user: str,
        signature: Optional[RuntimeSignature],
    ) -> None:
        origin = transaction.request.uri.origin()
        jar = self.jar(user)
        jar.store_from_response(origin, transaction.response)
        # follow the client's session: signatures that send a Cookie
        # header will send the *updated* jar contents next time
        sends_cookie = signature is not None and any(
            path.root == "header" and str(path.parts[0]).lower() == "cookie"
            for path in signature.signature.request.fields
        )
        if sends_cookie:
            self.store.learn_tag(user, "env:cookie", jar.cookie_header(origin))

    # ------------------------------------------------------------------
    # predecessor routine: replicate successor instances per value
    # ------------------------------------------------------------------
    def _spawn_successors(
        self,
        signature: RuntimeSignature,
        response: Response,
        user: str,
        depth: int,
    ) -> List[RequestInstance]:
        if self.max_depth is not None and depth + 1 > self.max_depth:
            return []
        edges_by_successor: Dict[str, List] = {}
        for edge in signature.out_edges:
            edges_by_successor.setdefault(edge.succ_site, []).append(edge)
        instances: List[RequestInstance] = []
        # predecessor response parsing is shared across edges/successors:
        # each distinct pred_path is extracted once per transaction (two
        # edges sourcing body.items[].id reuse one walk) and the scalar
        # context is flattened lazily, once, instead of per successor
        extract_memo: Dict[str, List] = {}
        context: Optional[Dict[str, List]] = None
        for succ_site, edges in edges_by_successor.items():
            successor = self._by_site.get(succ_site)
            if successor is None:
                continue
            extracted: List[Tuple[FieldPath, List]] = []
            for edge in edges:
                pred_key = edge.pred_path.to_string()
                values = extract_memo.get(pred_key)
                if values is None:
                    values = edge.pred_path.extract(response)
                    extract_memo[pred_key] = values
                if values:
                    extracted.append((edge.succ_path, values))
            if not extracted:
                continue
            replica_count = max(len(values) for _, values in extracted)
            if context is None:
                context = _scalar_fields(response)
            # split the context once per successor group: keys whose
            # value list aligns 1:1 with the replicas index per replica,
            # everything else shares its first value
            aligned = []
            shared = {}
            for key, values in context.items():
                if len(values) == replica_count:
                    aligned.append((key, values))
                else:
                    shared[key] = values[0]
            for index in range(replica_count):
                instance = RequestInstance(
                    successor, user, depth=depth + 1, trigger_site=signature.site
                )
                for succ_path, values in extracted:
                    value = values[index] if index < len(values) else values[0]
                    instance.fill(succ_path, value)
                # predecessor context for condition policies (Fig. 9):
                # scalar fields aligned with this replica where possible
                pred_context = dict(shared)
                for key, values in aligned:
                    pred_context[key] = values[index]
                instance.pred_context = pred_context
                instances.append(instance)
        return instances

    # ------------------------------------------------------------------
    # pending-instance management (wake index)
    # ------------------------------------------------------------------
    def _on_value_learned(self, key: Tuple) -> None:
        """Store/variant listener: mark ``key`` for the next drain."""
        self.wake_events += 1
        self._woken[key] = None

    def _is_live(self, instance: RequestInstance) -> bool:
        return self._pending_keys.get(instance.pending_key) is instance

    def has_pending(self, user: str, site: str) -> bool:
        """Is some instance of ``site`` for ``user`` still incomplete?"""
        return (user, site) in self._pending_sites

    def _forget_pending(self, instance: RequestInstance) -> None:
        """Drop ``instance`` from the per-(user, site) pending index."""
        slot = (instance.user, instance.signature.site)
        remaining = self._pending_sites.get(slot, 0) - 1
        if remaining > 0:
            self._pending_sites[slot] = remaining
        else:
            self._pending_sites.pop(slot, None)

    def _wake_keys(self, instance: RequestInstance) -> Set[Tuple]:
        """Every store/variant key whose learning could help resolve
        ``instance`` — a superset, so waking is always sound.

        Mirrors :meth:`RequestInstance.resolve_field`: wildcard atoms
        read the tag store (and, for single-atom templates, the
        observed field value); alternations read the observed field
        value; dependency atoms are bound at spawn time and never wake.
        """
        keys: Set[Tuple] = set()
        signature = instance.signature
        user = instance.user
        site = signature.site
        rows = [("uri", signature.signature.request.uri)]
        rows.extend(
            (path_string, template)
            for _path, path_string, template in signature.field_rows
        )
        for path_string, template in rows:
            for atom in template.atoms:
                if isinstance(atom, UnknownAtom):
                    tag_user = user if is_per_user_tag(atom.tag) else None
                    keys.add(("tag", tag_user, atom.tag))
                    if len(template.atoms) == 1:
                        keys.add(("field", user, site, path_string))
                        keys.add(("field", None, site, path_string))
                elif isinstance(atom, AltAtom):
                    keys.add(("field", user, site, path_string))
                    keys.add(("field", None, site, path_string))
        if len(signature.signature.variants) > 1:
            keys.add(("variant", user, site))
        return keys

    def _enqueue(self, instance: RequestInstance) -> None:
        key = instance.dedupe_key()
        if key in self._pending_keys:
            return
        while len(self._pending_keys) >= MAX_PENDING and self._queue:
            dropped = self._queue.popleft()
            if self._is_live(dropped):
                del self._pending_keys[dropped.pending_key]
                self._forget_pending(dropped)
        self._enqueue_seq += 1
        instance.pending_seq = self._enqueue_seq
        instance.pending_key = key
        self._queue.append(instance)
        self._pending_keys[key] = instance
        slot = (instance.user, instance.signature.site)
        self._pending_sites[slot] = self._pending_sites.get(slot, 0) + 1
        for wake_key in self._wake_keys(instance):
            self._wake_index.setdefault(wake_key, []).append(instance)
        self._fresh.append(instance)
        if PERF.enabled:
            PERF.incr("learner.enqueued")

    def _drain_pending(self) -> List[ReadyPrefetch]:
        """Retry the instances a learned value could have unblocked.

        Only freshly enqueued instances and those registered under a
        key that fired since the last drain are rebuilt — the seed
        rescanned the entire pending list on every observation.
        """
        ready: List[ReadyPrefetch] = []
        if not self._fresh and not self._woken:
            return ready
        candidates: Dict[int, RequestInstance] = {}
        for instance in self._fresh:
            candidates[id(instance)] = instance
        self._fresh = []
        if self._woken:
            fired = list(self._woken)
            self._woken.clear()
            for wake_key in fired:
                bucket = self._wake_index.get(wake_key)
                if bucket is None:
                    continue
                live = [i for i in bucket if self._is_live(i)]
                if live:
                    self._wake_index[wake_key] = live
                    for instance in live:
                        candidates[id(instance)] = instance
                else:
                    del self._wake_index[wake_key]
        # retry in enqueue order so completions surface exactly as the
        # seed's full-list scan surfaced them
        for instance in sorted(candidates.values(), key=lambda i: i.pending_seq):
            if not self._is_live(instance):
                continue
            preferred = self.preferred_variant.get(
                (instance.user, instance.signature.site)
            )
            self.wake_retries += 1
            if PERF.enabled:
                PERF.incr("learner.wake_retries")
            request = instance.try_build(self.store, preferred)
            if request is not None:
                ready.append(ReadyPrefetch(instance, request))
                del self._pending_keys[instance.pending_key]
                self._forget_pending(instance)
                self.completed_count += 1
        # compact the deque once stale (completed/evicted) entries
        # dominate, keeping eviction amortized O(1)
        if len(self._queue) > 2 * len(self._pending_keys) + 64:
            self._queue = deque(i for i in self._queue if self._is_live(i))
        return ready

    @property
    def _pending(self) -> List[RequestInstance]:
        """Live pending instances in enqueue order (compat view)."""
        return [i for i in self._queue if self._is_live(i)]

    @property
    def pending_count(self) -> int:
        return len(self._pending_keys)

    def stats(self) -> Dict[str, int]:
        data = {
            "observed": self.observed_count,
            "pending": self.pending_count,
            "pending_sites": len(self._pending_sites),
            "completed": self.completed_count,
            "wake_events": self.wake_events,
            "wake_retries": self.wake_retries,
            "wake_keys": len(self._wake_index),
            "store_version": self.store.version,
            "learn_queue_depth": len(self._learn_queue),
            "deferred_enqueued": self.deferred_enqueued,
            "deferred_drained": self.deferred_drained,
            "queue_overflows": self.queue_overflows,
        }
        if PERF.enabled:
            data["perf"] = PERF.snapshot()
        return data


def _scalar_fields(response: Response) -> Dict[str, List]:
    """Flatten a JSON response body to {leaf key: [values...]}.

    Used as the predecessor context for condition policies: keys keep
    only their last path component (``price``), values accumulate in
    document order so per-element alignment is possible.
    """
    from repro.httpmsg.body import JsonBody

    fields: Dict[str, List] = {}
    if not isinstance(response.body, JsonBody):
        return fields

    def walk(node) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if isinstance(value, (dict, list)):
                    walk(value)
                else:
                    fields.setdefault(key, []).append(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(response.body.value)
    return fields
