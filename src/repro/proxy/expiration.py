"""Online expiration estimation (§4.3), deployed form.

The verification phase's doubling probe (:mod:`repro.proxy.verification`)
runs once, pre-deployment, and writes a static ``expiration_time`` into
the configuration.  The :class:`ExpirationEstimator` is the *serving
time* counterpart: per prefetchable signature it keeps a live
``[lo, hi)`` bracket on the origin's real content lifetime and refines
it with binary-search probes, so the timer wheel files entries under a
learned per-signature TTL instead of the global default.

Probe semantics
---------------
One probe is *fetch baseline → wait ``gap`` → fetch again → compare
bodies*.  An unchanged pair proves the content lived at least ``gap``
seconds (``lo = gap``); a changed pair caps the lifetime estimate
(``hi = gap``).  While ``hi`` is unknown the gap doubles (bracket
phase); once bracketed, each probe bisects ``[lo, hi]`` until the
bracket is within ``precision`` of ``lo`` or the probe budget runs
out.  The published estimate is ``lo`` — conservative: an entry is
refreshed early rather than served stale.

Origin cache headers are honored without probing: a response carrying
``Cache-Control: max-age=N`` pins the signature's TTL to ``N``
immediately (``no-store``/``no-cache`` pin it to ``min_ttl``).

Disable-on-error (§4.3): ``error_limit`` consecutive failed probe
fetches disable the signature in the configuration, exactly like the
verification phase does for signatures that only ever failed.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.httpmsg.message import Request, Response
from repro.metrics.perf import PERF
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.config import ProxyConfig

DEFAULT_INITIAL_GAP = 4.0
DEFAULT_MIN_TTL = 1.0
DEFAULT_MAX_TTL = 7200.0
DEFAULT_PRECISION = 0.25  # stop once hi - lo <= precision * lo
DEFAULT_ERROR_LIMIT = 3
DEFAULT_MAX_PROBES = 24


def ttl_from_headers(response: Response) -> Optional[float]:
    """TTL the origin itself declared, or ``None``.

    ``Cache-Control: max-age=N`` wins; ``no-store`` / ``no-cache``
    report 0.0 (the caller clamps to its floor).  Other headers are
    ignored — the simulated origins speak max-age when they speak at
    all.
    """
    value = response.headers.get("Cache-Control")
    if value is None:
        return None
    directives = [part.strip().lower() for part in value.split(",")]
    for directive in directives:
        if directive in ("no-store", "no-cache"):
            return 0.0
    for directive in directives:
        if directive.startswith("max-age="):
            try:
                return max(0.0, float(directive.split("=", 1)[1]))
            except ValueError:
                return None
    return None


class SiteEstimate:
    """The live bracket + bookkeeping for one signature."""

    __slots__ = (
        "lo",
        "hi",
        "probes",
        "errors",
        "consecutive_errors",
        "converged",
        "disabled",
        "from_headers",
    )

    def __init__(self) -> None:
        self.lo = 0.0  # proven lifetime floor (seconds)
        self.hi: Optional[float] = None  # first observed change gap
        self.probes = 0
        self.errors = 0
        self.consecutive_errors = 0
        self.converged = False
        self.disabled = False
        self.from_headers = False

    @property
    def value(self) -> Optional[float]:
        """Current best TTL estimate, or ``None`` before any evidence."""
        if self.lo > 0.0:
            return self.lo
        if self.hi is not None:
            return self.hi / 2.0
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "value": self.value,
            "probes": self.probes,
            "errors": self.errors,
            "converged": self.converged,
            "disabled": self.disabled,
            "from_headers": self.from_headers,
        }


class ExpirationEstimator:
    """Per-signature TTL learner probing the live origins."""

    def __init__(
        self,
        sim: Simulator,
        origins: OriginMap,
        config: ProxyConfig,
        initial_gap: float = DEFAULT_INITIAL_GAP,
        min_ttl: float = DEFAULT_MIN_TTL,
        max_ttl: float = DEFAULT_MAX_TTL,
        precision: float = DEFAULT_PRECISION,
        error_limit: int = DEFAULT_ERROR_LIMIT,
        max_probes: int = DEFAULT_MAX_PROBES,
        apply_to_config: bool = True,
        probe_user: str = "ttl-probe",
    ) -> None:
        if initial_gap <= 0 or min_ttl <= 0 or max_ttl < min_ttl:
            raise ValueError("invalid TTL bounds")
        if error_limit < 1:
            raise ValueError("error_limit must be >= 1")
        self.sim = sim
        self.origins = origins
        self.config = config
        self.initial_gap = initial_gap
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.precision = precision
        self.error_limit = error_limit
        self.max_probes = max_probes
        #: when True, converged estimates are written back into the
        #: policy's ``expiration_time`` so the §5 refresher interval
        #: follows the learned TTL too
        self.apply_to_config = apply_to_config
        self.probe_user = probe_user
        self.estimates: Dict[str, SiteEstimate] = {}
        self.probes_issued = 0
        self.disabled_sites: Dict[str, str] = {}
        self._probing: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def estimate(self, site: str) -> SiteEstimate:
        found = self.estimates.get(site)
        if found is None:
            found = self.estimates[site] = SiteEstimate()
        return found

    def ttl_for(self, site: str, response: Optional[Response] = None) -> Optional[float]:
        """The TTL to store an entry of ``site`` under, or ``None``.

        ``None`` means "no evidence yet" — callers fall back to the
        policy's configured ``expiration_time``.  A response carrying
        cache headers short-circuits (and seeds) the estimate.
        """
        if response is not None:
            declared = ttl_from_headers(response)
            if declared is not None:
                clamped = self._clamp(declared)
                found = self.estimate(site)
                found.lo = clamped
                found.hi = clamped
                found.converged = True
                found.from_headers = True
                self._apply(site, clamped)
                return clamped
        found = self.estimates.get(site)
        if found is None or found.disabled:
            return None
        value = found.value
        return self._clamp(value) if value is not None else None

    def _clamp(self, ttl: float) -> float:
        return min(self.max_ttl, max(self.min_ttl, ttl))

    def _apply(self, site: str, ttl: float) -> None:
        if self.apply_to_config:
            self.config.policy(site).expiration_time = self._clamp(ttl)

    # ------------------------------------------------------------------
    def observe_response(self, site: str, response: Response) -> None:
        """Passive path: honor cache headers on any stored response."""
        self.ttl_for(site, response)

    # ------------------------------------------------------------------
    def _fetch(self, request: Request) -> Generator:
        from repro.proxy.prefetcher import origin_fetch

        self.probes_issued += 1
        if PERF.enabled:
            PERF.incr("expiration.probes")
        response, _ = yield self.sim.spawn(
            origin_fetch(self.sim, self.origins, request, self.probe_user)
        )
        return response

    def _note_error(self, site: str, estimate: SiteEstimate) -> bool:
        """Count one failed probe; returns True when the site died."""
        estimate.errors += 1
        estimate.consecutive_errors += 1
        if estimate.consecutive_errors >= self.error_limit:
            estimate.disabled = True
            reason = "expiration probes: {} consecutive errors".format(
                estimate.consecutive_errors
            )
            self.disabled_sites[site] = reason
            self.config.disable(site, reason)
            if PERF.enabled:
                PERF.incr("expiration.disabled")
            return True
        return False

    def probe_site(self, site: str, request: Request) -> Generator:
        """Simulator process: refine ``site``'s bracket to convergence.

        Terminates when the bracket is tight, the estimate saturates at
        ``max_ttl``, the probe budget runs out, or the site is disabled
        (by repeated errors here, or by the operator elsewhere).
        """
        estimate = self.estimate(site)
        request = request.copy()
        while not estimate.converged and not estimate.disabled:
            if not self.config.policy(site).prefetch:
                return estimate.value
            if estimate.probes >= self.max_probes:
                estimate.converged = True
                break
            if estimate.hi is None:
                gap = max(self.initial_gap, estimate.lo * 2.0)
                if gap > self.max_ttl:
                    # never saw a change inside the horizon: saturate
                    estimate.lo = self.max_ttl
                    estimate.converged = True
                    break
            else:
                gap = (estimate.lo + estimate.hi) / 2.0
            baseline = yield from self._fetch(request)
            if not baseline.ok:
                if self._note_error(site, estimate):
                    break
                continue
            estimate.consecutive_errors = 0
            declared = ttl_from_headers(baseline)
            if declared is not None:
                clamped = self._clamp(declared)
                estimate.lo = clamped
                estimate.hi = clamped
                estimate.converged = True
                estimate.from_headers = True
                break
            yield Delay(gap)
            probe = yield from self._fetch(request)
            if not probe.ok:
                if self._note_error(site, estimate):
                    break
                continue
            estimate.consecutive_errors = 0
            estimate.probes += 1
            if baseline.body.to_wire() != probe.body.to_wire():
                estimate.hi = gap if estimate.hi is None else min(estimate.hi, gap)
            else:
                estimate.lo = max(estimate.lo, gap)
            if (
                estimate.hi is not None
                and estimate.hi - estimate.lo <= self.precision * max(estimate.lo, self.min_ttl)
            ):
                estimate.converged = True
        value = estimate.value
        if value is not None and not estimate.disabled:
            self._apply(site, value)
        return value

    def run(
        self,
        sample_requests: Dict[str, Request],
        poll_interval: float = 2.0,
        duration: Optional[float] = None,
    ) -> Generator:
        """Simulator process: probe every site that shows up.

        ``sample_requests`` is read live (the prefetcher populates it
        as traffic reveals signatures), so new sites get probers while
        the loop runs.  With ``duration=None`` the loop polls forever —
        callers let the simulator's horizon end it.
        """
        started_at = self.sim.now
        while duration is None or self.sim.now - started_at < duration:
            for site in sorted(sample_requests):
                if self._probing.get(site):
                    continue
                if not self.config.policy(site).prefetch:
                    continue
                self._probing[site] = True
                self.sim.spawn(self.probe_site(site, sample_requests[site]))
            yield Delay(poll_interval)
        return None

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        converged = sum(1 for e in self.estimates.values() if e.converged)
        return {
            "sites": len(self.estimates),
            "converged": converged,
            "probes_issued": self.probes_issued,
            "disabled": dict(self.disabled_sites),
            "estimates": {
                site: estimate.to_dict()
                for site, estimate in sorted(self.estimates.items())
            },
        }
