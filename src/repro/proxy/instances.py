"""Run-time signature machinery: matching and request instances.

A :class:`RuntimeSignature` wraps a static
:class:`~repro.analysis.model.TransactionSignature` with compiled
regexes (wildcard atoms become capture groups, so observing a concrete
value teaches the proxy what the wildcard stands for) and its
dependency edges.  A :class:`RequestInstance` is one concrete prefetch
request being assembled, exactly the paper's Fig. 7 evolution: created
from the successor's signature, fields copied in from predecessor
responses and learned run-time values until nothing is missing.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import ALL, FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri

#: tags whose learned values are user-specific, never shared across users
PER_USER_TAG_PREFIXES = (
    "env:cookie",
    "env:userAgent",
    "env:deviceId",
    "env:flag",
    "env:nonce",
    "ui:",
)


def is_per_user_tag(tag: str) -> bool:
    return any(tag.startswith(prefix) for prefix in PER_USER_TAG_PREFIXES)


class TemplateMatcher:
    """Compiled form of a :class:`ValueTemplate` with capture groups."""

    def __init__(self, template: ValueTemplate) -> None:
        self.template = template
        pattern_parts: List[str] = []
        self.group_atoms: List[object] = []  # atom per capture group
        for atom in template.atoms:
            if isinstance(atom, ConstAtom):
                pattern_parts.append(re.escape(str(atom.value)))
            elif isinstance(atom, AltAtom):
                pattern_parts.append("({})".format(atom.regex()[1:-1]))
                self.group_atoms.append(atom)
            else:
                pattern_parts.append("(.*)")
                self.group_atoms.append(atom)
        self.pattern = re.compile("".join(pattern_parts))

    def match(self, text: str) -> Optional[List[Tuple[object, str]]]:
        """Match ``text``; returns [(atom, captured value)] or None.

        Alternation groups may contain nested groups; only top-level
        captures are associated with atoms, so nested groups are
        skipped by position bookkeeping.
        """
        matched = self.pattern.fullmatch(str(text))
        if matched is None:
            return None
        captures: List[Tuple[object, str]] = []
        # map top-level group indices: groups open in order; we rely on
        # our own pattern construction placing one top-level group per
        # wildcard atom, in order, before any nested groups from AltAtom
        # regexes. re module numbers groups by opening parenthesis, so
        # walk and keep those whose span belongs to a yet-unclaimed atom.
        group_index = 1
        for atom in self.group_atoms:
            captures.append((atom, matched.group(group_index) or ""))
            group_index += 1 + _nested_group_count(atom)
        return captures


def _nested_group_count(atom: object) -> int:
    if isinstance(atom, AltAtom):
        return sum(
            option.regex().count("(") for option in atom.options
        )
    return 0


class RuntimeSignature:
    """A signature plus everything the proxy needs at run time."""

    def __init__(self, signature: TransactionSignature) -> None:
        self.signature = signature
        self.site = signature.site
        self.uri_matcher = TemplateMatcher(signature.request.uri)
        self.field_matchers: Dict[FieldPath, TemplateMatcher] = {
            path: TemplateMatcher(template)
            for path, template in signature.request.fields.items()
        }
        #: precomputed (path, path-string, template) rows in field order
        self.field_rows: List[Tuple[FieldPath, str, ValueTemplate]] = [
            (path, path.to_string(), template)
            for path, template in signature.request.fields.items()
        ]
        self.fields_by_string: Dict[str, Tuple[FieldPath, ValueTemplate]] = {
            path_string: (path, template)
            for path, path_string, template in self.field_rows
        }
        #: edges where this signature is the predecessor
        self.out_edges: List[DependencyEdge] = []
        #: edges where this signature is the successor
        self.in_edges: List[DependencyEdge] = []

    # ------------------------------------------------------------------
    @property
    def is_successor(self) -> bool:
        return bool(self.in_edges)

    @property
    def is_predecessor(self) -> bool:
        return bool(self.out_edges)

    def literal_specificity(self) -> int:
        """Total literal characters — used to rank ambiguous matches."""
        total = 0
        for atom in self.signature.request.uri.atoms:
            if isinstance(atom, ConstAtom):
                total += len(str(atom.value))
        return total

    def matches_request(self, request: Request) -> bool:
        if request.method != self.signature.request.method:
            return False
        base_uri = request.uri.origin() + request.uri.path
        return self.uri_matcher.pattern.fullmatch(base_uri) is not None

    def __repr__(self) -> str:
        return "RuntimeSignature({})".format(self.site)


class SignatureMatcher:
    """Regex-based learning-target identification (Fig. 6, step 2)."""

    def __init__(self, signatures: List[RuntimeSignature]) -> None:
        self.signatures = signatures

    def match(self, request: Request) -> Optional[RuntimeSignature]:
        """Most-specific signature whose URI pattern matches."""
        best: Optional[RuntimeSignature] = None
        best_rank = (-1, 0)
        for index, candidate in enumerate(self.signatures):
            if not candidate.matches_request(request):
                continue
            rank = (candidate.literal_specificity(), -index)
            if rank > best_rank:
                best = candidate
                best_rank = rank
        return best


def build_runtime_signatures(result: AnalysisResult) -> List[RuntimeSignature]:
    runtime = {s.site: RuntimeSignature(s) for s in result.signatures}
    for edge in result.dependencies:
        if edge.pred_site in runtime:
            runtime[edge.pred_site].out_edges.append(edge)
        if edge.succ_site in runtime:
            runtime[edge.succ_site].in_edges.append(edge)
    return [runtime[s.site] for s in result.signatures]


class ValueStore:
    """Learned run-time values (Fig. 7): per-tag and per-field, with
    user-specific isolation for user-bound tags."""

    def __init__(self) -> None:
        self._global_tags: Dict[str, str] = {}
        self._user_tags: Dict[Tuple[str, str], str] = {}
        self._global_fields: Dict[Tuple[str, str], str] = {}
        self._user_fields: Dict[Tuple[str, str, str], str] = {}
        #: bumped whenever any value changes; pending instances use it
        #: to skip rebuild attempts when nothing new was learned
        self.version = 0

    # -- writes ---------------------------------------------------------
    def learn_tag(self, user: str, tag: str, value: str) -> None:
        if is_per_user_tag(tag):
            key = (user, tag)
            if self._user_tags.get(key) != value:
                self._user_tags[key] = value
                self.version += 1
        else:
            if self._global_tags.get(tag) != value:
                self._global_tags[tag] = value
                self.version += 1

    def learn_field(self, user: str, site: str, path: str, value: str, per_user: bool) -> None:
        if per_user:
            key = (user, site, path)
            if self._user_fields.get(key) != value:
                self._user_fields[key] = value
                self.version += 1
        else:
            slot = (site, path)
            if self._global_fields.get(slot) != value:
                self._global_fields[slot] = value
                self.version += 1

    def global_snapshot(self) -> "ValueStore":
        """A new store holding only the app-level (non-user) values.

        The verification phase (§4.3) runs the app through the proxy
        before deployment; the app-level constants it learns (API
        hosts, client version, build flavor) seed the deployed proxy so
        first-session prefetching resolves immediately.  User-bound
        values are never carried over.
        """
        snapshot = ValueStore()
        snapshot._global_tags = dict(self._global_tags)
        snapshot._global_fields = dict(self._global_fields)
        return snapshot

    # -- reads ----------------------------------------------------------
    def tag_value(self, user: str, tag: str) -> Optional[str]:
        if is_per_user_tag(tag):
            return self._user_tags.get((user, tag))
        return self._global_tags.get(tag)

    def field_value(self, user: str, site: str, path: str) -> Optional[str]:
        value = self._user_fields.get((user, site, path))
        if value is not None:
            return value
        return self._global_fields.get((site, path))


class RequestInstance:
    """One prefetch request being assembled for one user (Fig. 7).

    ``dep_values`` maps successor-field-path strings to values copied
    out of predecessor responses; ``depth`` is the prefetch-chain depth
    (1 = created directly from a client-observed transaction).
    """

    def __init__(
        self,
        signature: RuntimeSignature,
        user: str,
        depth: int = 1,
        trigger_site: Optional[str] = None,
    ) -> None:
        self.signature = signature
        self.user = user
        self.depth = depth
        self.trigger_site = trigger_site
        self.dep_values: Dict[str, str] = {}
        #: scalar fields of the predecessor response, for Fig. 9
        #: ``condition`` policies
        self.pred_context: Dict[str, object] = {}
        self._last_attempt: Optional[Tuple] = None

    def fill(self, path: FieldPath, value) -> None:
        self.dep_values[path.to_string()] = str(value)

    def dedupe_key(self) -> Tuple:
        """Identity of this instance: signature + dep bindings."""
        return (
            self.signature.site,
            self.user,
            tuple(sorted(self.dep_values.items())),
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_field(
        self,
        path: FieldPath,
        template: ValueTemplate,
        store: ValueStore,
        path_string: Optional[str] = None,
    ) -> Optional[str]:
        """Concrete value for one field, or None if still unknown.

        Resolution order per atom: constants stand as-is; dependency
        atoms use the predecessor-derived binding; wildcard atoms use
        (most specific first) the last value observed for this exact
        field, then the tag-indexed store.  Alternations resolve via
        the dependency binding or the observed field value.
        """
        if path_string is None:
            path_string = path.to_string()
        dep_value = self.dep_values.get(path_string)
        parts: List[str] = []
        for atom in template.atoms:
            if isinstance(atom, ConstAtom):
                parts.append(str(atom.value))
            elif isinstance(atom, DepAtom):
                if dep_value is None:
                    return None
                parts.append(dep_value)
            elif isinstance(atom, UnknownAtom):
                value = None
                if len(template.atoms) == 1:
                    value = store.field_value(self.user, self.signature.site, path_string)
                if value is None:
                    value = store.tag_value(self.user, atom.tag)
                if value is None:
                    return None
                parts.append(value)
            elif isinstance(atom, AltAtom):
                if dep_value is not None:
                    parts.append(dep_value)
                    continue
                value = store.field_value(self.user, self.signature.site, path_string)
                if value is None:
                    return None
                parts.append(value)
            else:  # pragma: no cover
                return None
        return "".join(parts)

    def resolve_uri(self, store: ValueStore) -> Optional[str]:
        return self.resolve_field(
            FieldPath("uri"), self.signature.signature.request.uri, store
        )

    def choose_variant(
        self,
        store: ValueStore,
        preferred: Optional[frozenset] = None,
        resolved: Optional[Dict[str, Optional[str]]] = None,
    ) -> Optional[frozenset]:
        """Pick the field-set variant to build (Fig. 8 adaptation).

        The most recently observed variant wins; before any
        observation, the variant with the most *resolvable* fields
        (largest on ties) stands in.
        """
        variants = self.signature.signature.variants
        if preferred is not None and preferred in set(variants):
            return preferred
        if resolved is None:
            resolved = self._resolve_all(store)
        best = None
        best_rank = (-1, -1)
        for variant in variants:
            unresolvable = sum(
                1 for path_string in variant if resolved.get(path_string) is None
            )
            rank = (-unresolvable, len(variant))
            if rank > best_rank:
                best = variant
                best_rank = rank
        return best

    def _resolve_all(self, store: ValueStore) -> Dict[str, Optional[str]]:
        return {
            path_string: self.resolve_field(path, template, store, path_string)
            for path, path_string, template in self.signature.field_rows
        }

    def build(
        self, store: ValueStore, preferred_variant: Optional[frozenset] = None
    ) -> Optional[Request]:
        """Assemble the concrete request, or None while values missing."""
        uri_string = self.resolve_uri(store)
        if uri_string is None:
            return None
        try:
            uri = Uri.parse(uri_string)
        except ValueError:
            return None
        resolved = self._resolve_all(store)
        variant = self.choose_variant(store, preferred_variant, resolved)
        if variant is None:
            return None
        request = Request(
            method=self.signature.signature.request.method,
            uri=uri,
            headers=Headers(),
        )
        body_kind = self.signature.signature.request.body_kind
        if body_kind == "form":
            request.body = _new_form()
        elif body_kind == "json":
            request.body = _new_json()
        for path, path_string, _template in self.signature.field_rows:
            if path_string not in variant:
                continue
            value = resolved.get(path_string)
            if value is None:
                return None
            if path.root == "header":
                request.headers.add(str(path.parts[0]), value)
            elif path.root == "query":
                request.uri.query.append((str(path.parts[0]), value))
            elif path.root == "body":
                if body_kind == "form":
                    request.body.add(str(path.parts[0]), value)
                else:
                    path.assign(request, value)
        return request

    def try_build(
        self, store: ValueStore, preferred_variant: Optional[frozenset] = None
    ) -> Optional[Request]:
        """Like :meth:`build`, but skips work when nothing new was
        learned since the last failed attempt."""
        marker = (store.version, preferred_variant)
        if self._last_attempt == marker:
            return None
        request = self.build(store, preferred_variant)
        if request is None:
            self._last_attempt = marker
        return request

    def __repr__(self) -> str:
        return "RequestInstance({}, user={}, depth={})".format(
            self.signature.site, self.user, self.depth
        )


def _new_form():
    from repro.httpmsg.body import FormBody

    return FormBody()


def _new_json():
    from repro.httpmsg.body import JsonBody

    return JsonBody({})
