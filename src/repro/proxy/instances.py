"""Run-time signature machinery: matching and request instances.

A :class:`RuntimeSignature` wraps a static
:class:`~repro.analysis.model.TransactionSignature` with compiled
regexes (wildcard atoms become capture groups, so observing a concrete
value teaches the proxy what the wildcard stands for) and its
dependency edges.  A :class:`RequestInstance` is one concrete prefetch
request being assembled, exactly the paper's Fig. 7 evolution: created
from the successor's signature, fields copied in from predecessor
responses and learned run-time values until nothing is missing.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import FieldPath
from repro.httpmsg.headers import Headers
from repro.httpmsg.message import Request
from repro.httpmsg.uri import Uri
from repro.metrics.perf import PERF

#: tags whose learned values are user-specific, never shared across users
PER_USER_TAG_PREFIXES = (
    "env:cookie",
    "env:userAgent",
    "env:deviceId",
    "env:flag",
    "env:nonce",
    "ui:",
)


def is_per_user_tag(tag: str) -> bool:
    return any(tag.startswith(prefix) for prefix in PER_USER_TAG_PREFIXES)


class TemplateMatcher:
    """Compiled form of a :class:`ValueTemplate` with capture groups."""

    def __init__(self, template: ValueTemplate) -> None:
        self.template = template
        pattern_parts: List[str] = []
        self.group_atoms: List[object] = []  # atom per capture group
        for atom in template.atoms:
            if isinstance(atom, ConstAtom):
                pattern_parts.append(re.escape(str(atom.value)))
            elif isinstance(atom, AltAtom):
                pattern_parts.append("({})".format(atom.regex()[1:-1]))
                self.group_atoms.append(atom)
            else:
                pattern_parts.append("(.*)")
                self.group_atoms.append(atom)
        self.pattern = re.compile("".join(pattern_parts))
        # map top-level group indices: groups open in order; we rely on
        # our own pattern construction placing one top-level group per
        # wildcard atom, in order, before any nested groups from AltAtom
        # regexes. re module numbers groups by opening parenthesis, so
        # precompute which group number each atom claims (nested-group
        # counting re-renders option regexes — far too slow per match).
        self.group_indices: List[int] = []
        group_index = 1
        for atom in self.group_atoms:
            self.group_indices.append(group_index)
            group_index += 1 + _nested_group_count(atom)

    def match(self, text: str) -> Optional[List[Tuple[object, str]]]:
        """Match ``text``; returns [(atom, captured value)] or None.

        Alternation groups may contain nested groups; only top-level
        captures are associated with atoms, so nested groups are
        skipped by the precomputed ``group_indices`` bookkeeping.
        """
        matched = self.pattern.fullmatch(str(text))
        if matched is None:
            return None
        return [
            (atom, matched.group(group_index) or "")
            for atom, group_index in zip(self.group_atoms, self.group_indices)
        ]


def _nested_group_count(atom: object) -> int:
    if isinstance(atom, AltAtom):
        return sum(
            option.regex().count("(") for option in atom.options
        )
    return 0


class RuntimeSignature:
    """A signature plus everything the proxy needs at run time."""

    def __init__(self, signature: TransactionSignature) -> None:
        self.signature = signature
        self.site = signature.site
        self.method = signature.request.method
        self.uri_matcher = TemplateMatcher(signature.request.uri)
        uri_atoms = signature.request.uri.atoms
        self._specificity = sum(
            len(str(atom.value))
            for atom in uri_atoms
            if isinstance(atom, ConstAtom)
        )
        # literal anchors: cheap string checks that must hold before the
        # full regex can possibly match (prefix/suffix/longest-const)
        self._uri_is_const = all(isinstance(a, ConstAtom) for a in uri_atoms)
        prefix_parts: List[str] = []
        for atom in uri_atoms:
            if not isinstance(atom, ConstAtom):
                break
            prefix_parts.append(str(atom.value))
        suffix_parts: List[str] = []
        for atom in reversed(uri_atoms):
            if not isinstance(atom, ConstAtom):
                break
            suffix_parts.append(str(atom.value))
        self._literal_prefix = "".join(prefix_parts)
        self._literal_suffix = "".join(reversed(suffix_parts))
        self._literal_anchor = max(
            (str(a.value) for a in uri_atoms if isinstance(a, ConstAtom)),
            key=len,
            default="",
        )
        self.field_matchers: Dict[FieldPath, TemplateMatcher] = {
            path: TemplateMatcher(template)
            for path, template in signature.request.fields.items()
        }
        #: precomputed (path, path-string, template) rows in field order
        self.field_rows: List[Tuple[FieldPath, str, ValueTemplate]] = [
            (path, path.to_string(), template)
            for path, template in signature.request.fields.items()
        ]
        self.fields_by_string: Dict[str, Tuple[FieldPath, ValueTemplate]] = {
            path_string: (path, template)
            for path, path_string, template in self.field_rows
        }
        #: the variant field-sets as one frozenset, so membership tests
        #: on the hot path are O(1) instead of rebuilding a throwaway
        #: ``set(...)`` per call
        self.variants_set: frozenset = frozenset(signature.variants)
        #: edges where this signature is the predecessor
        self.out_edges: List[DependencyEdge] = []
        #: edges where this signature is the successor
        self.in_edges: List[DependencyEdge] = []
        self._build_plan: Optional["SignatureBuildPlan"] = None

    @property
    def build_plan(self) -> "SignatureBuildPlan":
        """The copy-on-write build plan, computed once per signature.

        Every :class:`RequestInstance` replicated from this signature
        shares the plan; per-instance state is only the dep bindings
        and the per-field resolution memos.
        """
        if self._build_plan is None:
            self._build_plan = SignatureBuildPlan(self)
        return self._build_plan

    # ------------------------------------------------------------------
    @property
    def is_successor(self) -> bool:
        return bool(self.in_edges)

    @property
    def is_predecessor(self) -> bool:
        return bool(self.out_edges)

    def literal_specificity(self) -> int:
        """Total literal characters — used to rank ambiguous matches."""
        return self._specificity

    def matches_request(self, request: Request) -> bool:
        if request.method != self.method:
            return False
        return self.matches_uri(request.uri.origin() + request.uri.path)

    def matches_uri(self, base_uri: str) -> bool:
        """URI-template match with literal-anchor pre-checks.

        The anchors (leading/trailing/longest constant runs) are
        necessary conditions of the compiled regex, so rejecting on
        them never changes the outcome — it only skips the far more
        expensive ``fullmatch`` for most non-matching candidates.
        """
        if PERF.enabled:
            PERF.incr("matcher.candidate_checks")
        if self._uri_is_const:
            return base_uri == self._literal_prefix
        if (
            not base_uri.startswith(self._literal_prefix)
            or not base_uri.endswith(self._literal_suffix)
            or (self._literal_anchor and self._literal_anchor not in base_uri)
        ):
            if PERF.enabled:
                PERF.incr("matcher.anchor_rejects")
            return False
        if PERF.enabled:
            PERF.incr("matcher.regex_attempts")
        return self.uri_matcher.pattern.fullmatch(base_uri) is not None

    def __repr__(self) -> str:
        return "RuntimeSignature({})".format(self.site)


#: build-plan field classes: fully constant (resolved once per
#: *signature*), constant + dependency atoms only (resolved once per
#: *instance* — dep bindings never change after spawn), and dynamic
#: (reads the value store, so re-resolved whenever ``store.version``
#: moves)
FIELD_CONST = "const"
FIELD_DEP = "dep"
FIELD_DYNAMIC = "dynamic"


def _classify_template(template: ValueTemplate) -> str:
    has_dep = False
    for atom in template.atoms:
        if isinstance(atom, (UnknownAtom, AltAtom)):
            return FIELD_DYNAMIC
        if isinstance(atom, DepAtom):
            has_dep = True
    return FIELD_DEP if has_dep else FIELD_CONST


class _PlanField:
    """One field row of a build plan: classification + constant parts."""

    __slots__ = ("path", "path_string", "template", "kind", "const_value",
                 "root", "part0")

    def __init__(self, path: FieldPath, path_string: str,
                 template: ValueTemplate) -> None:
        self.path = path
        self.path_string = path_string
        self.template = template
        self.kind = _classify_template(template)
        self.const_value: Optional[str] = (
            "".join(str(atom.value) for atom in template.atoms)
            if self.kind == FIELD_CONST
            else None
        )
        self.root = path.root
        self.part0 = str(path.parts[0]) if path.parts else ""


class SignatureBuildPlan:
    """Precomputed, shared build state for one signature (COW).

    ``_spawn_successors`` replicates one :class:`RequestInstance` per
    list element of the predecessor response — N instances that differ
    *only* in their dep bindings.  The seed resolved every field of
    every replica from scratch on every build attempt.  The plan hoists
    everything replica-independent to the signature: fully-constant
    field values are resolved here exactly once, each field's
    resolution class is precomputed (so build attempts skip the atom
    walk for settled fields), and the body skeleton kind plus the
    variant frozensets are carried along.  Instances keep only their
    dep bindings, pred context, and two small memos.
    """

    __slots__ = ("signature", "method", "body_kind", "uri_template",
                 "uri_kind", "uri_const", "uri_path", "uri_path_string",
                 "rows", "variants", "variants_set")

    def __init__(self, runtime: RuntimeSignature) -> None:
        request = runtime.signature.request
        self.signature = runtime
        self.method = request.method
        self.body_kind = request.body_kind
        self.uri_template = request.uri
        self.uri_path = FieldPath("uri")
        self.uri_path_string = self.uri_path.to_string()
        self.uri_kind = _classify_template(request.uri)
        self.uri_const: Optional[str] = (
            "".join(str(atom.value) for atom in request.uri.atoms)
            if self.uri_kind == FIELD_CONST
            else None
        )
        self.rows: List[_PlanField] = [
            _PlanField(path, path_string, template)
            for path, path_string, template in runtime.field_rows
        ]
        self.variants = runtime.signature.variants
        self.variants_set = runtime.variants_set


class _TrieNode:
    """One segment of the literal-prefix dispatch trie."""

    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        #: (original index, signature) pairs whose complete literal
        #: path segments end at this node
        self.entries: List[Tuple[int, RuntimeSignature]] = []


def _literal_dispatch_key(
    signature: RuntimeSignature,
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """(origin, complete literal path segments) or None when unindexable.

    Derived only from the *leading run of ConstAtoms* in the URI
    template, so it is a necessary condition of the compiled regex: a
    request whose origin or leading path segments diverge from the key
    can never fullmatch.  A path segment counts as *complete* only when
    the literal text continues past it with ``/`` (or the template is
    fully constant) — a trailing partial segment could be extended by
    the following wildcard, so it is dropped.  Signatures whose host is
    not fully literal return None and go to the per-method linear
    fallback bucket.
    """
    atoms = signature.signature.request.uri.atoms
    prefix_parts: List[str] = []
    for atom in atoms:
        if not isinstance(atom, ConstAtom):
            break
        prefix_parts.append(str(atom.value))
    full_literal = len(prefix_parts) == len(atoms)
    prefix = "".join(prefix_parts)
    marker = prefix.find("://")
    if marker < 0:
        return None
    slash = prefix.find("/", marker + 3)
    if slash < 0:
        # the literal text ends inside the authority: host is only
        # indexable when nothing follows it
        if not full_literal:
            return None
        return prefix, ()
    origin = prefix[:slash]
    path = prefix[slash:]
    segments = [segment for segment in path.split("/") if segment]
    if segments and not full_literal and not path.endswith("/"):
        segments.pop()  # partial: the wildcard may extend this segment
    return origin, tuple(segments)


def _required_segments(signature: RuntimeSignature) -> List[str]:
    """Literal path segments every regex match must contain, complete.

    A run of characters inside a ``ConstAtom`` bounded by ``/`` on both
    sides (or by the start of the URI string on the left for the first
    atom, or by the end of the template on the right for the last atom)
    appears in *every* matching URI as a complete ``/``-delimited
    token — no wildcard can extend it.  Runs touching a wildcard
    boundary are excluded: the wildcard could extend them into a longer
    segment.
    """
    atoms = signature.signature.request.uri.atoms
    segments: List[str] = []
    for position, atom in enumerate(atoms):
        if not isinstance(atom, ConstAtom):
            continue
        text = str(atom.value)
        parts = text.split("/")
        if len(parts) == 1:
            continue  # no slash: nothing slash-bounded inside this atom
        for offset, part in enumerate(parts):
            if not part:
                continue
            left_bounded = offset > 0 or position == 0
            right_bounded = offset < len(parts) - 1 or position == len(atoms) - 1
            if left_bounded and right_bounded:
                segments.append(part)
    return segments


#: memo sentinel distinguishing "not cached" from a cached negative
_MEMO_MISS = object()


class SignatureMatcher:
    """Learning-target identification (Fig. 6, step 2), indexed.

    Four tiers replace the seed's linear regex scan:

    1. a bounded LRU memo of exact ``(method, base-uri) → signature``
       results, so repeated identical requests cost one dict hit;
    2. a literal-prefix trie keyed on (method, origin, leading literal
       path segments) for signatures whose host is fully literal;
    3. an inverted index on *required literal segments* for
       wildcard-host signatures (the common shape: the API host is an
       ``env:config`` wildcard learned at run time, followed by a
       literal path): each is filed under one ``/``-bounded constant
       segment that every regex match must contain, so only requests
       carrying that token ever see the signature.  Signatures with no
       such segment land in a per-method bucket that is always
       scanned;
    4. literal-anchor pre-checks inside
       :meth:`RuntimeSignature.matches_uri` that reject most surviving
       candidates before any regex runs.

    The index is *conservative*: every tier only ever prunes
    candidates that provably cannot fullmatch, and the final ranking
    (literal specificity, then earliest signature order) runs over the
    surviving candidates exactly as the naive scan ranks its matches —
    so :meth:`match` and :meth:`naive_match` are behaviorally
    identical.  The memo assumes the signature list is fixed after
    construction (it always is: learners build their matcher once).
    """

    MEMO_CAPACITY = 4096

    def __init__(
        self,
        signatures: List[RuntimeSignature],
        memo_capacity: int = MEMO_CAPACITY,
    ) -> None:
        self.signatures = signatures
        self._memo: "OrderedDict[Tuple[str, str], Optional[RuntimeSignature]]" = (
            OrderedDict()
        )
        self._memo_capacity = memo_capacity
        #: method → entries with neither a literal host nor a required
        #: literal segment (checked against every same-method request)
        self._fallback: Dict[str, List[Tuple[int, RuntimeSignature]]] = {}
        #: (method, origin) → literal path-segment trie
        self._tries: Dict[Tuple[str, str], _TrieNode] = {}
        #: (method, required segment) → wildcard-host entries
        self._segment_index: Dict[Tuple[str, str], List[Tuple[int, RuntimeSignature]]] = {}
        for index, signature in enumerate(signatures):
            entry = (index, signature)
            key = _literal_dispatch_key(signature)
            if key is not None:
                origin, segments = key
                node = self._tries.setdefault(
                    (signature.method, origin), _TrieNode()
                )
                for segment in segments:
                    node = node.children.setdefault(segment, _TrieNode())
                node.entries.append(entry)
                continue
            required = _required_segments(signature)
            if required:
                # file under the longest required segment: rarest in
                # practice, and one bucket per signature keeps the
                # candidate union duplicate-free
                chosen = max(required, key=len)
                self._segment_index.setdefault(
                    (signature.method, chosen), []
                ).append(entry)
            else:
                self._fallback.setdefault(signature.method, []).append(entry)

    # ------------------------------------------------------------------
    def candidates(
        self, method: str, base_uri: str
    ) -> List[Tuple[int, RuntimeSignature]]:
        """Indexed candidate set — a superset of the true matches."""
        found = list(self._fallback.get(method, ()))
        if self._segment_index:
            # every "/"-delimited token of the full URI string, so that
            # tokens hiding in the authority (a host equal to a path
            # literal) are looked up too — required-segment semantics
            # are defined on the raw string, not the parsed path
            for token in dict.fromkeys(base_uri.split("/")):
                if token:
                    found.extend(self._segment_index.get((method, token), ()))
        if self._tries:
            marker = base_uri.find("://")
            if marker >= 0:
                slash = base_uri.find("/", marker + 3)
                origin = base_uri if slash < 0 else base_uri[:slash]
                path = "" if slash < 0 else base_uri[slash:]
                node = self._tries.get((method, origin))
                if node is not None:
                    found.extend(node.entries)
                    for segment in path.split("/"):
                        if not segment:
                            continue
                        node = node.children.get(segment)
                        if node is None:
                            break
                        found.extend(node.entries)
        return found

    def match(self, request: Request) -> Optional[RuntimeSignature]:
        """Most-specific signature whose URI pattern matches."""
        base_uri = request.uri.origin() + request.uri.path
        perf = PERF.enabled
        if perf:
            PERF.incr("matcher.requests")
        memo_key = (request.method, base_uri)
        memo_hit = self._memo.get(memo_key, _MEMO_MISS)
        if memo_hit is not _MEMO_MISS:
            self._memo.move_to_end(memo_key)
            if perf:
                PERF.incr("matcher.memo_hits")
            return memo_hit
        best: Optional[RuntimeSignature] = None
        best_rank = (-1, 0)
        found = self.candidates(request.method, base_uri)
        if perf:
            PERF.incr("matcher.candidates", len(found))
        for index, candidate in found:
            if not candidate.matches_uri(base_uri):
                continue
            rank = (candidate._specificity, -index)
            if rank > best_rank:
                best = candidate
                best_rank = rank
        self._memo[memo_key] = best
        if len(self._memo) > self._memo_capacity:
            self._memo.popitem(last=False)
        return best

    def naive_match(self, request: Request) -> Optional[RuntimeSignature]:
        """Reference linear scan — the seed's exact algorithm.

        Kept as the differential-testing oracle and the counter
        baseline (one full regex attempt per same-method signature, no
        index, no memo, no anchor pre-checks).
        """
        base_uri = request.uri.origin() + request.uri.path
        perf = PERF.enabled
        best: Optional[RuntimeSignature] = None
        best_rank = (-1, 0)
        for index, candidate in enumerate(self.signatures):
            if request.method != candidate.method:
                continue
            if perf:
                PERF.incr("matcher.naive_regex_attempts")
            if candidate.uri_matcher.pattern.fullmatch(base_uri) is None:
                continue
            rank = (candidate._specificity, -index)
            if rank > best_rank:
                best = candidate
                best_rank = rank
        return best


def build_runtime_signatures(result: AnalysisResult) -> List[RuntimeSignature]:
    runtime = {s.site: RuntimeSignature(s) for s in result.signatures}
    for edge in result.dependencies:
        if edge.pred_site in runtime:
            runtime[edge.pred_site].out_edges.append(edge)
        if edge.succ_site in runtime:
            runtime[edge.succ_site].in_edges.append(edge)
    return [runtime[s.site] for s in result.signatures]


class ValueStore:
    """Learned run-time values (Fig. 7): per-tag and per-field, with
    user-specific isolation for user-bound tags."""

    def __init__(self) -> None:
        self._global_tags: Dict[str, str] = {}
        self._user_tags: Dict[Tuple[str, str], str] = {}
        self._global_fields: Dict[Tuple[str, str], str] = {}
        self._user_fields: Dict[Tuple[str, str, str], str] = {}
        #: bumped whenever any value changes; pending instances use it
        #: to skip rebuild attempts when nothing new was learned
        self.version = 0
        #: change listeners, called with a wake key — ``("tag", user,
        #: tag)`` / ``("field", user, site, path)``, ``user`` None for
        #: app-level values.  Learners subscribe their pending-instance
        #: wake index here, so a shared store wakes every learner.
        self._listeners: List = []

    def add_listener(self, listener) -> None:
        self._listeners.append(listener)

    def _notify(self, key: Tuple) -> None:
        for listener in self._listeners:
            listener(key)

    # -- writes ---------------------------------------------------------
    def learn_tag(self, user: str, tag: str, value: str) -> None:
        if is_per_user_tag(tag):
            key = (user, tag)
            if self._user_tags.get(key) != value:
                self._user_tags[key] = value
                self.version += 1
                self._notify(("tag", user, tag))
        else:
            if self._global_tags.get(tag) != value:
                self._global_tags[tag] = value
                self.version += 1
                self._notify(("tag", None, tag))

    def learn_field(self, user: str, site: str, path: str, value: str, per_user: bool) -> None:
        if per_user:
            key = (user, site, path)
            if self._user_fields.get(key) != value:
                self._user_fields[key] = value
                self.version += 1
                self._notify(("field", user, site, path))
        else:
            slot = (site, path)
            if self._global_fields.get(slot) != value:
                self._global_fields[slot] = value
                self.version += 1
                self._notify(("field", None, site, path))

    def global_snapshot(self) -> "ValueStore":
        """A new store holding only the app-level (non-user) values.

        The verification phase (§4.3) runs the app through the proxy
        before deployment; the app-level constants it learns (API
        hosts, client version, build flavor) seed the deployed proxy so
        first-session prefetching resolves immediately.  User-bound
        values are never carried over.
        """
        snapshot = ValueStore()
        snapshot._global_tags = dict(self._global_tags)
        snapshot._global_fields = dict(self._global_fields)
        return snapshot

    # -- reads ----------------------------------------------------------
    def tag_value(self, user: str, tag: str) -> Optional[str]:
        if is_per_user_tag(tag):
            return self._user_tags.get((user, tag))
        return self._global_tags.get(tag)

    def field_value(self, user: str, site: str, path: str) -> Optional[str]:
        value = self._user_fields.get((user, site, path))
        if value is not None:
            return value
        return self._global_fields.get((site, path))


class RequestInstance:
    """One prefetch request being assembled for one user (Fig. 7).

    ``dep_values`` maps successor-field-path strings to values copied
    out of predecessor responses; ``depth`` is the prefetch-chain depth
    (1 = created directly from a client-observed transaction).
    """

    def __init__(
        self,
        signature: RuntimeSignature,
        user: str,
        depth: int = 1,
        trigger_site: Optional[str] = None,
    ) -> None:
        self.signature = signature
        self.user = user
        self.depth = depth
        self.trigger_site = trigger_site
        self.dep_values: Dict[str, str] = {}
        #: scalar fields of the predecessor response, for Fig. 9
        #: ``condition`` policies
        self.pred_context: Dict[str, object] = {}
        self._last_attempt: Optional[Tuple] = None
        #: learner bookkeeping: enqueue order and frozen dedupe key
        #: (``dep_values`` never change once the instance is queued)
        self.pending_seq = 0
        self.pending_key: Optional[Tuple] = None
        #: COW build memos: dep-class fields resolve once per instance
        #: (dep bindings are frozen after spawn); dynamic-class fields
        #: are memoized per ``store.version``.  Both are invalidated by
        #: :meth:`fill` so out-of-order callers stay correct.
        self._dep_resolved: Dict[str, str] = {}
        self._memo_version = -1
        self._memo: Dict[str, Optional[str]] = {}

    def fill(self, path: FieldPath, value) -> None:
        self.dep_values[path.to_string()] = str(value)
        # a new dep binding can change any field's resolution (mixed
        # templates read dep values too) — drop the build memos
        self._dep_resolved.clear()
        self._memo_version = -1

    def dedupe_key(self) -> Tuple:
        """Identity of this instance: signature + dep bindings."""
        return (
            self.signature.site,
            self.user,
            tuple(sorted(self.dep_values.items())),
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_field(
        self,
        path: FieldPath,
        template: ValueTemplate,
        store: ValueStore,
        path_string: Optional[str] = None,
    ) -> Optional[str]:
        """Concrete value for one field, or None if still unknown.

        Resolution order per atom: constants stand as-is; dependency
        atoms use the predecessor-derived binding; wildcard atoms use
        (most specific first) the last value observed for this exact
        field, then the tag-indexed store.  Alternations resolve via
        the dependency binding or the observed field value.
        """
        if path_string is None:
            path_string = path.to_string()
        dep_value = self.dep_values.get(path_string)
        parts: List[str] = []
        for atom in template.atoms:
            if isinstance(atom, ConstAtom):
                parts.append(str(atom.value))
            elif isinstance(atom, DepAtom):
                if dep_value is None:
                    return None
                parts.append(dep_value)
            elif isinstance(atom, UnknownAtom):
                value = None
                if len(template.atoms) == 1:
                    value = store.field_value(self.user, self.signature.site, path_string)
                if value is None:
                    value = store.tag_value(self.user, atom.tag)
                if value is None:
                    return None
                parts.append(value)
            elif isinstance(atom, AltAtom):
                if dep_value is not None:
                    parts.append(dep_value)
                    continue
                value = store.field_value(self.user, self.signature.site, path_string)
                if value is None:
                    return None
                parts.append(value)
            else:  # pragma: no cover
                return None
        return "".join(parts)

    def resolve_uri(self, store: ValueStore) -> Optional[str]:
        return self.resolve_field(
            FieldPath("uri"), self.signature.signature.request.uri, store
        )

    def choose_variant(
        self,
        store: ValueStore,
        preferred: Optional[frozenset] = None,
        resolved: Optional[Dict[str, Optional[str]]] = None,
    ) -> Optional[frozenset]:
        """Pick the field-set variant to build (Fig. 8 adaptation).

        The most recently observed variant wins; before any
        observation, the variant with the most *resolvable* fields
        (largest on ties) stands in.
        """
        variants = self.signature.signature.variants
        if preferred is not None and preferred in self.signature.variants_set:
            return preferred
        if resolved is None:
            resolved = self._resolve_all(store)
        best = None
        best_rank = (-1, -1)
        for variant in variants:
            unresolvable = sum(
                1 for path_string in variant if resolved.get(path_string) is None
            )
            rank = (-unresolvable, len(variant))
            if rank > best_rank:
                best = variant
                best_rank = rank
        return best

    def _resolve_all(self, store: ValueStore) -> Dict[str, Optional[str]]:
        return {
            path_string: self.resolve_field(path, template, store, path_string)
            for path, path_string, template in self.signature.field_rows
        }

    def build(
        self,
        store: ValueStore,
        preferred_variant: Optional[frozenset] = None,
        use_plan: bool = True,
    ) -> Optional[Request]:
        """Assemble the concrete request, or None while values missing.

        ``use_plan=True`` (the default) resolves through the shared
        :class:`SignatureBuildPlan` with per-instance memos — constant
        fields are never re-walked, dep-bound fields resolve once per
        instance, and store-backed fields re-resolve only after
        ``store.version`` moves.  ``use_plan=False`` retains the seed's
        resolve-everything-per-attempt path as the differential oracle
        (``tests/test_learning_deferred.py`` asserts both produce
        byte-identical requests).
        """
        if not use_plan:
            return self._build_naive(store, preferred_variant)
        plan = self.signature.build_plan
        if self._memo_version != store.version:
            self._memo = {}
            self._memo_version = store.version
        uri_string = self._resolve_planned(
            plan.uri_kind, plan.uri_const, plan.uri_path,
            plan.uri_path_string, plan.uri_template, store,
        )
        if uri_string is None:
            return None
        try:
            uri = Uri.parse(uri_string)
        except ValueError:
            return None
        resolved = {
            row.path_string: self._resolve_planned(
                row.kind, row.const_value, row.path, row.path_string,
                row.template, store,
            )
            for row in plan.rows
        }
        variant = self.choose_variant(store, preferred_variant, resolved)
        if variant is None:
            return None
        request = Request(method=plan.method, uri=uri, headers=Headers())
        body_kind = plan.body_kind
        if body_kind == "form":
            request.body = _new_form()
        elif body_kind == "json":
            request.body = _new_json()
        for row in plan.rows:
            if row.path_string not in variant:
                continue
            value = resolved.get(row.path_string)
            if value is None:
                return None
            if row.root == "header":
                request.headers.add(row.part0, value)
            elif row.root == "query":
                request.uri.query.append((row.part0, value))
            elif row.root == "body":
                if body_kind == "form":
                    request.body.add(row.part0, value)
                else:
                    row.path.assign(request, value)
        return request

    def _resolve_planned(
        self,
        kind: str,
        const_value: Optional[str],
        path: FieldPath,
        path_string: str,
        template: ValueTemplate,
        store: ValueStore,
    ) -> Optional[str]:
        """One field through the plan: memoized by resolution class."""
        if kind == FIELD_CONST:
            return const_value
        if kind == FIELD_DEP:
            value = self._dep_resolved.get(path_string)
            if value is None:
                value = self.resolve_field(path, template, store, path_string)
                if value is not None:
                    # dep bindings are frozen after spawn, so a resolved
                    # value never changes; an unresolved one stays cheap
                    # to retry and is re-checked (fill() also clears)
                    self._dep_resolved[path_string] = value
            return value
        if path_string in self._memo:
            return self._memo[path_string]
        value = self.resolve_field(path, template, store, path_string)
        self._memo[path_string] = value
        return value

    def _build_naive(
        self, store: ValueStore, preferred_variant: Optional[frozenset] = None
    ) -> Optional[Request]:
        """The seed's build: re-resolve every field each attempt."""
        uri_string = self.resolve_uri(store)
        if uri_string is None:
            return None
        try:
            uri = Uri.parse(uri_string)
        except ValueError:
            return None
        resolved = self._resolve_all(store)
        variant = self.choose_variant(store, preferred_variant, resolved)
        if variant is None:
            return None
        request = Request(
            method=self.signature.signature.request.method,
            uri=uri,
            headers=Headers(),
        )
        body_kind = self.signature.signature.request.body_kind
        if body_kind == "form":
            request.body = _new_form()
        elif body_kind == "json":
            request.body = _new_json()
        for path, path_string, _template in self.signature.field_rows:
            if path_string not in variant:
                continue
            value = resolved.get(path_string)
            if value is None:
                return None
            if path.root == "header":
                request.headers.add(str(path.parts[0]), value)
            elif path.root == "query":
                request.uri.query.append((str(path.parts[0]), value))
            elif path.root == "body":
                if body_kind == "form":
                    request.body.add(str(path.parts[0]), value)
                else:
                    path.assign(request, value)
        return request

    def try_build(
        self, store: ValueStore, preferred_variant: Optional[frozenset] = None
    ) -> Optional[Request]:
        """Like :meth:`build`, but skips work when nothing new was
        learned since the last failed attempt."""
        marker = (store.version, preferred_variant)
        if self._last_attempt == marker:
            return None
        request = self.build(store, preferred_variant)
        if request is None:
            self._last_attempt = marker
        return request

    def __repr__(self) -> str:
        return "RequestInstance({}, user={}, depth={})".format(
            self.signature.site, self.user, self.depth
        )


def _new_form():
    from repro.httpmsg.body import FormBody

    return FormBody()


def _new_json():
    from repro.httpmsg.body import JsonBody

    return JsonBody({})
