"""Hierarchical timer wheel for cache expirations.

A million-user cache cannot afford ``purge_expired`` to scan every
entry (the seed's behavior): purge cost must track the number of
entries that *actually expired*, not the population size.  The wheel
buckets items by expiry tick across a hierarchy of levels — level
``l`` has slots ``2**bits`` ticks wide raised to the ``l``-th power —
so insertion is O(1), and :meth:`advance` visits only the buckets the
clock has passed.  Items sitting in a coarse (higher-level) bucket
whose window the clock just entered are *cascaded* down to finer
levels; each item cascades at most ``levels`` times over its life, so
purging stays amortized O(1) per item plus a heap pop per retired
bucket.

The wheel is deliberately decoupled from cache semantics: it stores
opaque ``(expires_at, item)`` pairs and never decides liveness.
:meth:`advance` returns *candidates* — items whose expiry tick has
passed — and the caller revalidates each one (an entry may have been
overwritten or already evicted since it was scheduled).  Stale
schedules therefore cost one skipped candidate, never a wrong
eviction, which is what makes the wheel safe to run alongside
lookup-time eviction and LRU bounds.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

#: default wheel resolution: entries expiring within the same half
#: second share a level-0 bucket
DEFAULT_TICK = 0.5


class TimerWheel:
    """Hierarchical timer wheel over absolute expiry ticks.

    ``tick`` is the level-0 resolution in seconds; ``bits`` sets the
    slots per level (``2**bits``); ``levels`` bounds the hierarchy —
    items beyond the top level's horizon just land in the top level
    and cascade down as the clock approaches.
    """

    def __init__(self, tick: float = DEFAULT_TICK, bits: int = 8, levels: int = 4) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.tick = tick
        self.bits = bits
        self.levels = levels
        #: per level: absolute bucket index -> [(expires_at, item), ...]
        self._buckets: List[Dict[int, List[Tuple[float, Any]]]] = [
            {} for _ in range(levels)
        ]
        #: per level: min-heap of bucket indices with a live bucket
        self._heaps: List[List[int]] = [[] for _ in range(levels)]
        self._current = 0  # last tick advance() has processed up to
        self.scheduled = 0
        self.cascades = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(
            len(bucket) for level in self._buckets for bucket in level.values()
        )

    def _level_for(self, expiry_tick: int) -> int:
        delta = expiry_tick - self._current
        span = 1 << self.bits
        for level in range(self.levels):
            if delta < span:
                return level
            span <<= self.bits
        return self.levels - 1

    def _insert(self, expiry_tick: int, expires_at: float, item: Any) -> None:
        level = self._level_for(expiry_tick)
        index = expiry_tick >> (self.bits * level)
        bucket = self._buckets[level].get(index)
        if bucket is None:
            self._buckets[level][index] = [(expires_at, item)]
            heapq.heappush(self._heaps[level], index)
        else:
            bucket.append((expires_at, item))

    def schedule(self, expires_at: float, item: Any) -> None:
        """File ``item`` to surface once ``expires_at`` has passed."""
        self.scheduled += 1
        self._insert(int(expires_at / self.tick), expires_at, item)

    # ------------------------------------------------------------------
    def advance(self, now: float) -> List[Any]:
        """Move the clock to ``now``; return expiry *candidates*.

        Only buckets whose window the clock has passed are touched.
        Level-0's boundary bucket (the one covering ``now`` itself) is
        scanned item-by-item so ``now == expires_at`` expires exactly
        on time; unexpired residents stay filed.  Higher-level
        boundary buckets cascade their items to finer levels.
        """
        current = int(now / self.tick)
        if current < self._current:
            return []
        self._current = current
        expired: List[Any] = []
        for level in range(self.levels):
            level_current = current >> (self.bits * level)
            heap = self._heaps[level]
            buckets = self._buckets[level]
            while heap and heap[0] <= level_current:
                index = heapq.heappop(heap)
                bucket = buckets.pop(index, None)
                if bucket is None:
                    continue
                if index < level_current:
                    # the whole window is in the past: every resident's
                    # expiry tick precedes ``current``
                    expired.extend(item for _, item in bucket)
                elif level == 0:
                    # boundary bucket: expiries land inside this very
                    # tick, so split item-by-item and keep the rest
                    keep = []
                    for expires_at, item in bucket:
                        if now >= expires_at:
                            expired.append(item)
                        else:
                            keep.append((expires_at, item))
                    if keep:
                        buckets[index] = keep
                        heapq.heappush(heap, index)
                    break  # heap top == level_current: nothing older left
                else:
                    # entering a coarse window: refile residents at a
                    # finer level (or collect ones already past due)
                    for expires_at, item in bucket:
                        expiry_tick = int(expires_at / self.tick)
                        if expiry_tick < current:
                            expired.append(item)
                        elif expiry_tick == current and now >= expires_at:
                            expired.append(item)
                        else:
                            self.cascades += 1
                            self._insert(expiry_tick, expires_at, item)
        return expired
