"""Prefetch issuing with priority scheduling (§4.5, §5).

Eligibility gates (§4.4): per-signature ``prefetch`` flag, probability
(per-signature × global), predecessor-field conditions, the chain-depth
bound, and the data-usage budget (C4).  When more requests are ready
than the concurrency limit allows, the waiting queue is drained in
priority order — a linear combination of the signature's running-average
origin response time and its cache hit rate, exactly the §5 policy
("prioritize requests that take longer to complete and signatures that
generate higher hit rates").
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.httpmsg.message import Request, Response, Transaction
from repro.metrics.perf import PERF
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import ProxyConfig
from repro.proxy.learning import DynamicLearner, ReadyPrefetch
from repro.proxy.popularity import PopularityTracker, item_key_for_instance

#: §5 priority weights: seconds of origin RTT vs hit-rate fraction
TIME_WEIGHT = 1.0
HIT_RATE_WEIGHT = 0.5


def origin_fetch(
    sim: Simulator, origins: OriginMap, request: Request, user: str
) -> Generator:
    """Process: proxy → origin round trip; returns (response, bytes)."""
    endpoint = origins.endpoint_for(request)
    if endpoint is None:
        return Response(502), request.wire_size()
    link = origins.link_for(request)
    request_size = request.wire_size()
    yield Delay(link.transfer_delay(sim.now, request_size))
    response = yield sim.spawn(endpoint.handle(request, user))
    response_size = response.wire_size()
    yield Delay(link.transfer_delay(sim.now, response_size))
    return response, request_size + response_size


class Prefetcher:
    """Issues ready prefetch requests against the origin servers."""

    def __init__(
        self,
        sim: Simulator,
        origins: OriginMap,
        cache: PrefetchCache,
        config: ProxyConfig,
        learner: DynamicLearner,
        seed: int = 0,
        max_concurrent: int = 64,
    ) -> None:
        self.sim = sim
        self.origins = origins
        self.cache = cache
        self.config = config
        self.learner = learner
        self.rng = random.Random(seed)
        self.max_concurrent = max_concurrent
        #: ablation switch: False degrades the waiting queue to FIFO
        self.priority_enabled = True
        #: client-demand popularity per (site, item) — §6.3 extension
        self.popularity = PopularityTracker()
        self._active = 0
        self._sequence = 0
        self._waiting: List[Tuple[float, int, ReadyPrefetch]] = []
        self._inflight: Set[Tuple[str, str]] = set()
        #: running average origin response time per signature site
        self.avg_response_time: Dict[str, float] = {}
        self._response_samples: Dict[str, int] = {}
        self.prefetch_bytes = 0
        self.issued = 0
        self.success_by_site: Dict[str, int] = {}
        self.error_by_site: Dict[str, int] = {}
        #: one example request per site (verification probes reuse them)
        self.sample_requests: Dict[str, Request] = {}
        self.skipped_policy = 0
        self.skipped_probability = 0
        self.skipped_budget = 0
        self.skipped_depth = 0
        self.skipped_duplicate = 0
        self.skipped_condition = 0
        self.skipped_popularity = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def submit(self, ready: ReadyPrefetch) -> None:
        """Apply the policy gates, then schedule (or queue) the fetch."""
        if PERF.enabled:
            PERF.incr("prefetch.submitted")
        site = ready.instance.signature.site
        policy = self.config.policy(site)
        if not policy.prefetch:
            self.skipped_policy += 1
            return
        if ready.instance.depth > self.config.max_chain_depth:
            self.skipped_depth += 1
            return
        if policy.condition is not None and not policy.condition.evaluate(
            getattr(ready.instance, "pred_context", {})
        ):
            self.skipped_condition += 1
            return
        if policy.popularity_top_k is not None and not self.popularity.allows(
            site, item_key_for_instance(ready.instance), policy.popularity_top_k
        ):
            self.skipped_popularity += 1
            return
        probability = self.config.effective_probability(site)
        if probability < 1.0 and self.rng.random() >= probability:
            self.skipped_probability += 1
            return
        if (
            self.config.data_budget_bytes is not None
            and self.prefetch_bytes >= self.config.data_budget_bytes
        ):
            self.skipped_budget += 1
            return
        key = (ready.instance.user, ready.request.exact_key())
        if key in self._inflight or self.cache.contains_fresh(
            ready.instance.user, ready.request, self.sim.now
        ):
            self.skipped_duplicate += 1
            return
        self._inflight.add(key)
        if self._active < self.max_concurrent:
            self._start(ready)
        else:
            self._sequence += 1
            heapq.heappush(
                self._waiting, (-self._priority(site), self._sequence, ready)
            )
            if PERF.enabled:
                PERF.peak("prefetch.queue_peak", len(self._waiting))

    def _priority(self, site: str) -> float:
        if not self.priority_enabled:
            return 0.0  # heap degenerates to submission order
        return (
            TIME_WEIGHT * self.avg_response_time.get(site, 0.0)
            + HIT_RATE_WEIGHT * self.cache.hit_rate(site)
        )

    def _start(self, ready: ReadyPrefetch) -> None:
        self._active += 1
        self.sim.spawn(self._fetch(ready))

    # ------------------------------------------------------------------
    def _fetch(self, ready: ReadyPrefetch) -> Generator:
        site = ready.instance.signature.site
        user = ready.instance.user
        policy = self.config.policy(site)
        wire_request = ready.request.copy()
        for name, value in policy.add_header:
            wire_request.headers.add(name, value)
        started_at = self.sim.now
        try:
            response, transferred = yield self.sim.spawn(
                origin_fetch(self.sim, self.origins, wire_request, user)
            )
            self.prefetch_bytes += transferred
            self.issued += 1
            if PERF.enabled:
                PERF.incr("prefetch.issued")
            elapsed = self.sim.now - started_at
            self._record_response_time(site, elapsed)
            self.sample_requests.setdefault(site, ready.request.copy())
            if response.ok:
                self.success_by_site[site] = self.success_by_site.get(site, 0) + 1
                self.cache.put(
                    user,
                    ready.request,
                    response,
                    site,
                    now=self.sim.now,
                    ttl=policy.expiration_time,
                )
                # chain prefetching (Fig. 3c): the prefetched response
                # may itself be a predecessor
                transaction = Transaction(
                    ready.request,
                    response,
                    started_at,
                    self.sim.now,
                    user=user,
                    prefetched=True,
                )
                for next_ready in self.learner.observe(
                    transaction, user, depth=ready.instance.depth
                ):
                    self.submit(next_ready)
            else:
                self.errors += 1
                self.error_by_site[site] = self.error_by_site.get(site, 0) + 1
        finally:
            self._inflight.discard((user, ready.request.exact_key()))
            self._active -= 1
            self._drain()
        return None

    def _record_response_time(self, site: str, elapsed: float) -> None:
        samples = self._response_samples.get(site, 0)
        current = self.avg_response_time.get(site, 0.0)
        self.avg_response_time[site] = (current * samples + elapsed) / (samples + 1)
        self._response_samples[site] = samples + 1

    def _drain(self) -> None:
        if self._active >= self.max_concurrent or not self._waiting:
            return
        if self.priority_enabled:
            # Queued entries keep the priority computed at enqueue time,
            # but ``avg_response_time`` and the hit rate have moved since
            # (a fetch just completed — that is what triggered this
            # drain).  Re-rank from the *current* §5 signals so
            # long-queued requests drain in today's order, not the order
            # of whenever they arrived.  Sequence numbers are kept so
            # equal priorities still break ties FIFO.
            self._waiting = [
                (-self._priority(ready.instance.signature.site), seq, ready)
                for _, seq, ready in self._waiting
            ]
            heapq.heapify(self._waiting)
        while self._active < self.max_concurrent and self._waiting:
            _, _, ready = heapq.heappop(self._waiting)
            self._start(ready)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "issued": self.issued,
            "errors": self.errors,
            "prefetch_bytes": self.prefetch_bytes,
            "skipped_policy": self.skipped_policy,
            "skipped_probability": self.skipped_probability,
            "skipped_budget": self.skipped_budget,
            "skipped_depth": self.skipped_depth,
            "skipped_duplicate": self.skipped_duplicate,
            "skipped_condition": self.skipped_condition,
            "skipped_popularity": self.skipped_popularity,
        }
