"""Prefetch issuing with priority scheduling (§4.5, §5).

Eligibility gates (§4.4): per-signature ``prefetch`` flag, probability
(per-signature × global), predecessor-field conditions, the chain-depth
bound, and the data-usage budget (C4).  When more requests are ready
than the concurrency limit allows, the waiting queue is drained in
priority order — a linear combination of the signature's running-average
origin response time and its cache hit rate, exactly the §5 policy
("prioritize requests that take longer to complete and signatures that
generate higher hit rates").

Lazy epoch-stamped drain
------------------------
The seed re-ranked the *entire* waiting queue on every completed fetch
(rebuild + heapify: O(W) per drain), because a completion moves the §5
signals.  But priority is a per-*site* property, so the queue now keeps
one FIFO per site plus a heap holding at most one live head entry per
site, stamped with that site's *epoch*.  Whenever a site's priority
inputs move — its running-average response time (an observable dict) or
its hit rate (a cache stats listener) — the epoch bumps and a fresh
head entry is pushed eagerly; stale stamps are discarded on pop.  Each
drain step is O(log S) for S sites with queued work, and the pop order
is exactly the rebuild-drain's order: max current priority, FIFO on
ties (per-site FIFOs preserve sequence order, and every heap entry
carries its site's current head sequence).  ``lazy_drain=False``
retains the seed's rebuild-everything drain as the differential oracle
(``tests/test_prefetcher_drain_equiv.py`` replays recorded workloads
through both and asserts identical issue order).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Callable, Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.httpmsg.message import Request, Response, Transaction
from repro.metrics.perf import PERF
from repro.metrics.trace import TRACER
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import ProxyConfig
from repro.proxy.learning import DynamicLearner, ReadyPrefetch
from repro.proxy.popularity import PopularityTracker, item_key_for_instance

#: §5 priority weights: seconds of origin RTT vs hit-rate fraction
TIME_WEIGHT = 1.0
HIT_RATE_WEIGHT = 0.5


class _ObservedDict(dict):
    """Dict that reports every key whose value is (re)assigned.

    ``avg_response_time`` is public state — tests and ablations assign
    into it directly — so priority invalidation hooks the container
    instead of trusting every caller to call a bump method.
    """

    __slots__ = ("_on_change",)

    def __init__(self, on_change: Callable[[str], None]) -> None:
        super().__init__()
        self._on_change = on_change

    def __setitem__(self, key: str, value: float) -> None:
        super().__setitem__(key, value)
        self._on_change(key)

    def __delitem__(self, key: str) -> None:
        super().__delitem__(key)
        self._on_change(key)

    def update(self, *args, **kwargs) -> None:  # keep observation complete
        for mapping in args:
            for key, value in dict(mapping).items():
                self[key] = value
        for key, value in kwargs.items():
            self[key] = value


def origin_fetch(
    sim: Simulator, origins: OriginMap, request: Request, user: str
) -> Generator:
    """Process: proxy → origin round trip; returns (response, bytes)."""
    endpoint = origins.endpoint_for(request)
    if endpoint is None:
        return Response(502), request.wire_size()
    link = origins.link_for(request)
    request_size = request.wire_size()
    yield Delay(link.transfer_delay(sim.now, request_size))
    response = yield sim.spawn(endpoint.handle(request, user))
    response_size = response.wire_size()
    yield Delay(link.transfer_delay(sim.now, response_size))
    return response, request_size + response_size


class Prefetcher:
    """Issues ready prefetch requests against the origin servers."""

    def __init__(
        self,
        sim: Simulator,
        origins: OriginMap,
        cache: PrefetchCache,
        config: ProxyConfig,
        learner: DynamicLearner,
        seed: int = 0,
        max_concurrent: int = 64,
        lazy_drain: bool = True,
    ) -> None:
        self.sim = sim
        self.origins = origins
        self.cache = cache
        self.config = config
        self.learner = learner
        self.rng = random.Random(seed)
        self.max_concurrent = max_concurrent
        #: ablation switch: False degrades the waiting queue to FIFO
        self._priority_enabled = True
        #: client-demand popularity per (site, item) — §6.3 extension
        self.popularity = PopularityTracker()
        self._active = 0
        self._sequence = 0
        self.lazy_drain = lazy_drain
        #: rebuild-drain (oracle) queue: (-priority, seq, ready)
        self._waiting: List[Tuple[float, int, ReadyPrefetch]] = []
        #: lazy-drain queues: per-site FIFO of (seq, ready), a heap of
        #: (-priority, head_seq, site, epoch) head entries, the current
        #: per-site epoch, and the total queued count
        self._site_fifos: Dict[str, Deque[Tuple[int, ReadyPrefetch]]] = {}
        self._site_heap: List[Tuple[float, int, str, int]] = []
        self._site_epoch: Dict[str, int] = {}
        self._waiting_count = 0
        self.stale_heap_entries = 0
        self._inflight: Set[Tuple[str, str]] = set()
        #: running average origin response time per signature site;
        #: assignment (from anywhere) invalidates that site's queued
        #: priority via the epoch
        self.avg_response_time: Dict[str, float] = _ObservedDict(self._bump_epoch)
        self._response_samples: Dict[str, int] = {}
        if hasattr(cache, "add_stats_listener"):
            cache.add_stats_listener(self._bump_epoch)
        self.prefetch_bytes = 0
        self.issued = 0
        self.issued_by_site: Dict[str, int] = {}
        self.success_by_site: Dict[str, int] = {}
        self.error_by_site: Dict[str, int] = {}
        #: one example request per site (verification probes reuse them)
        self.sample_requests: Dict[str, Request] = {}
        #: optional §4.3 online TTL learner (see proxy/expiration.py);
        #: when set, stores use its learned per-signature TTLs
        self.expiration = None
        self.skipped_policy = 0
        self.skipped_probability = 0
        self.skipped_budget = 0
        self.skipped_depth = 0
        self.skipped_duplicate = 0
        self.skipped_condition = 0
        self.skipped_popularity = 0
        self.skipped_admission = 0
        self.errors = 0

    # ------------------------------------------------------------------
    @property
    def priority_enabled(self) -> bool:
        return self._priority_enabled

    @priority_enabled.setter
    def priority_enabled(self, value: bool) -> None:
        if value != self._priority_enabled:
            self._priority_enabled = value
            # every queued site's effective priority just changed
            for site in list(self._site_fifos):
                self._bump_epoch(site)

    @property
    def waiting(self) -> int:
        """Requests queued behind the concurrency limit."""
        return self._waiting_count if self.lazy_drain else len(self._waiting)

    # ------------------------------------------------------------------
    def submit(self, ready: ReadyPrefetch) -> str:
        """Apply the policy gates, then schedule (or queue) the fetch.

        Returns the outcome — ``"started"``, ``"queued"`` (behind the
        concurrency limit), or the ``"skipped_*"`` gate that rejected
        the request — so callers (and trace spans) can attribute what
        happened to each ready prefetch.
        """
        if PERF.enabled:
            PERF.incr("prefetch.submitted")
        site = ready.instance.signature.site
        policy = self.config.policy(site)
        if not policy.prefetch:
            self.skipped_policy += 1
            return "skipped_policy"
        if ready.instance.depth > self.config.max_chain_depth:
            self.skipped_depth += 1
            return "skipped_depth"
        if policy.condition is not None and not policy.condition.evaluate(
            getattr(ready.instance, "pred_context", {})
        ):
            self.skipped_condition += 1
            return "skipped_condition"
        if policy.popularity_top_k is not None and not self.popularity.allows(
            site, item_key_for_instance(ready.instance), policy.popularity_top_k
        ):
            self.skipped_popularity += 1
            return "skipped_popularity"
        if not self._admitted(site):
            self.skipped_admission += 1
            return "skipped_admission"
        probability = self.config.effective_probability(site)
        if probability < 1.0 and self.rng.random() >= probability:
            self.skipped_probability += 1
            return "skipped_probability"
        if (
            self.config.data_budget_bytes is not None
            and self.prefetch_bytes >= self.config.data_budget_bytes
        ):
            self.skipped_budget += 1
            return "skipped_budget"
        key = (ready.instance.user, ready.request.exact_key())
        if key in self._inflight or self.cache.contains_fresh(
            ready.instance.user, ready.request, self.sim.now
        ):
            self.skipped_duplicate += 1
            return "skipped_duplicate"
        self._inflight.add(key)
        if self._active < self.max_concurrent:
            self._start(ready)
            return "started"
        self._sequence += 1
        if self.lazy_drain:
            self._enqueue_waiting(site, self._sequence, ready)
        else:
            heapq.heappush(
                self._waiting, (-self._priority(site), self._sequence, ready)
            )
        if PERF.enabled:
            PERF.peak("prefetch.queue_peak", self.waiting)
        return "queued"

    def _admitted(self, site: str) -> bool:
        """Hit-rate-aware admission: does ``site`` still earn prefetches?

        Observed hit probability is cache hits over prefetches issued
        for the signature.  Below the governing threshold
        (per-policy ``min_hit_probability`` or the config-wide
        ``admission_threshold``) the signature stops prefetching —
        except for an ``admission_explore`` fraction kept flowing so a
        recovered signature can re-earn admission.  Signatures with
        fewer than ``admission_min_issued`` completed prefetches are
        always admitted (no evidence yet).
        """
        threshold = self.config.admission_threshold_for(site)
        if threshold is None or threshold <= 0.0:
            return True
        issued = self.issued_by_site.get(site, 0)
        if issued < self.config.admission_min_issued:
            return True
        observed = self.cache.hits.get(site, 0) / issued
        if observed >= threshold:
            return True
        return self.rng.random() < self.config.admission_explore

    def ttl_for(self, site: str, response: Optional[Response] = None) -> float:
        """TTL for storing a ``site`` response: learned, else configured."""
        if self.expiration is not None:
            learned = self.expiration.ttl_for(site, response)
            if learned is not None:
                return learned
        return self.config.policy(site).expiration_time

    def _priority(self, site: str) -> float:
        if not self._priority_enabled:
            return 0.0  # heap degenerates to submission order
        return (
            TIME_WEIGHT * self.avg_response_time.get(site, 0.0)
            + HIT_RATE_WEIGHT * self.cache.hit_rate(site)
        )

    # -- lazy-drain queue maintenance ----------------------------------
    def _enqueue_waiting(self, site: str, seq: int, ready: ReadyPrefetch) -> None:
        fifo = self._site_fifos.get(site)
        if fifo is None:
            fifo = self._site_fifos[site] = deque()
        fifo.append((seq, ready))
        self._waiting_count += 1
        if len(fifo) == 1:
            self._push_head(site)

    def _push_head(self, site: str) -> None:
        """Push ``site``'s current head with its current priority."""
        fifo = self._site_fifos.get(site)
        if fifo:
            heapq.heappush(
                self._site_heap,
                (
                    -self._priority(site),
                    fifo[0][0],
                    site,
                    self._site_epoch.get(site, 0),
                ),
            )

    def _bump_epoch(self, site: str) -> None:
        """A priority input for ``site`` moved: outdate its heap entry.

        Pushing the replacement *eagerly* (not on pop) is what keeps
        the drain order identical to the rebuild oracle — priorities
        can rise as well as fall, and a risen site buried under its old
        stamp would otherwise drain too late.
        """
        self._site_epoch[site] = self._site_epoch.get(site, 0) + 1
        if self._site_fifos.get(site):
            self._push_head(site)

    def _start(self, ready: ReadyPrefetch) -> None:
        self._active += 1
        self.sim.spawn(self._fetch(ready))

    # ------------------------------------------------------------------
    def _fetch(self, ready: ReadyPrefetch) -> Generator:
        site = ready.instance.signature.site
        user = ready.instance.user
        policy = self.config.policy(site)
        wire_request = ready.request.copy()
        for name, value in policy.add_header:
            wire_request.headers.add(name, value)
        started_at = self.sim.now
        # each background fetch is its own trace (kind="prefetch") —
        # it runs asynchronously, after the triggering request's trace
        # has already been filed
        trace = TRACER.begin(user, kind="prefetch") if TRACER.enabled else None
        if trace is not None:
            trace.tag("signature", site)
        try:
            span = trace.start_span("origin_fetch") if trace is not None else None
            response, transferred = yield self.sim.spawn(
                origin_fetch(self.sim, self.origins, wire_request, user)
            )
            if span is not None:
                trace.end_span(span, bytes=transferred, signature=site)
            self.prefetch_bytes += transferred
            self.issued += 1
            self.issued_by_site[site] = self.issued_by_site.get(site, 0) + 1
            if PERF.enabled:
                PERF.incr("prefetch.issued")
                PERF.registry.inc("prefetch_issued", labels={"signature": site})
            elapsed = self.sim.now - started_at
            self._record_response_time(site, elapsed)
            if site not in self.sample_requests:
                self.sample_requests[site] = ready.request.copy()
            if response.ok:
                self.success_by_site[site] = self.success_by_site.get(site, 0) + 1
                span = trace.start_span("store") if trace is not None else None
                self.cache.put(
                    user,
                    ready.request,
                    response,
                    site,
                    now=self.sim.now,
                    ttl=self.ttl_for(site, response),
                )
                if span is not None:
                    trace.end_span(span, signature=site)
                # chain prefetching (Fig. 3c): the prefetched response
                # may itself be a predecessor
                transaction = Transaction(
                    ready.request,
                    response,
                    started_at,
                    self.sim.now,
                    user=user,
                    prefetched=True,
                )
                next_list = self.learner.observe(
                    transaction, user, depth=ready.instance.depth, trace=trace
                )
                # deferred mode parked the chain observation — pump the
                # drain here so chain prefetches still issue off this
                # background fetch instead of waiting for client traffic
                if (
                    self.learner.learn_mode == "deferred"
                    and self.learner.learn_queue_depth
                ):
                    span = (
                        trace.start_span("learn_drain")
                        if trace is not None
                        else None
                    )
                    with PERF.stage("proxy.learn_drain"):
                        next_list = next_list + self.learner.drain_learn_queue()
                    if span is not None:
                        trace.end_span(span, completed=len(next_list))
                for next_ready in next_list:
                    if trace is not None:
                        span = trace.start_span(
                            "prefetch_issue", site=next_ready.instance.signature.site
                        )
                        trace.end_span(span, outcome=self.submit(next_ready))
                    else:
                        self.submit(next_ready)
                if trace is not None:
                    trace.tag("ok", True)
            else:
                self.errors += 1
                self.error_by_site[site] = self.error_by_site.get(site, 0) + 1
                if trace is not None:
                    trace.tag("ok", False)
        finally:
            TRACER.finish(trace)
            self._inflight.discard((user, ready.request.exact_key()))
            self._active -= 1
            self._drain()
        return None

    def _record_response_time(self, site: str, elapsed: float) -> None:
        samples = self._response_samples.get(site, 0)
        current = self.avg_response_time.get(site, 0.0)
        self.avg_response_time[site] = (current * samples + elapsed) / (samples + 1)
        self._response_samples[site] = samples + 1

    def _drain(self) -> None:
        if self._active >= self.max_concurrent:
            return
        if self.lazy_drain:
            self._drain_lazy()
        else:
            self._drain_rebuild()

    def _drain_lazy(self) -> None:
        """Pop fresh head entries until the slots fill: O(log S) each."""
        heap = self._site_heap
        while self._active < self.max_concurrent and self._waiting_count:
            entry = heapq.heappop(heap)
            _, head_seq, site, epoch = entry
            if epoch != self._site_epoch.get(site, 0):
                self.stale_heap_entries += 1
                if PERF.enabled:
                    PERF.incr("prefetch.stale_heap_entries")
                continue
            fifo = self._site_fifos.get(site)
            if not fifo or fifo[0][0] != head_seq:
                # defensive: a live-epoch entry always names the head
                self.stale_heap_entries += 1
                continue
            _, ready = fifo.popleft()
            self._waiting_count -= 1
            if fifo:
                self._push_head(site)
            else:
                del self._site_fifos[site]
            self._start(ready)

    def _drain_rebuild(self) -> None:
        """The seed's drain: re-rank the whole queue, then pop.

        Queued entries keep the priority computed at enqueue time, but
        ``avg_response_time`` and the hit rate have moved since (a
        fetch just completed — that is what triggered this drain).
        Re-rank from the *current* §5 signals so long-queued requests
        drain in today's order, not the order of whenever they
        arrived.  Sequence numbers are kept so equal priorities still
        break ties FIFO.  The re-rank is unconditional: with the
        ablation switch off ``_priority`` is 0.0 everywhere, so the
        rebuilt keys are exactly FIFO even for entries enqueued while
        priorities were still on.  O(W) per drain — retained as the
        oracle the lazy drain is differentially tested against.
        """
        if not self._waiting:
            return
        self._waiting = [
            (-self._priority(ready.instance.signature.site), seq, ready)
            for _, seq, ready in self._waiting
        ]
        heapq.heapify(self._waiting)
        while self._active < self.max_concurrent and self._waiting:
            _, _, ready = heapq.heappop(self._waiting)
            self._start(ready)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "issued": self.issued,
            "errors": self.errors,
            "prefetch_bytes": self.prefetch_bytes,
            "skipped_policy": self.skipped_policy,
            "skipped_probability": self.skipped_probability,
            "skipped_budget": self.skipped_budget,
            "skipped_depth": self.skipped_depth,
            "skipped_duplicate": self.skipped_duplicate,
            "skipped_condition": self.skipped_condition,
            "skipped_popularity": self.skipped_popularity,
            "skipped_admission": self.skipped_admission,
        }
