"""History-based prefetching baseline (PALOMA-style).

The APPx strategy prefetches from *statically analyzed* request
dependencies.  The literature's main alternative (Zhao et al.,
PALOMA) predicts the next request from each user's *observed history*:
remember, per user, which exact request most frequently followed the
one just seen, and prefetch that most-frequent successor.

:class:`HistoryPrefetcher` implements that baseline so the scale
harness can run a three-way comparison (``--strategy
{appx,history,none}``): it has no knowledge of signatures, wildcards,
or dependencies — just per-user first-order transition counts over
exact request keys.  It shares the exact-match
:class:`~repro.proxy.cache.PrefetchCache`, so hits are measured under
identical serving rules as the APPx strategy.

Determinism: transition counts tie-break lexicographically on the
exact key, so replays are reproducible.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.httpmsg.message import Request
from repro.metrics.perf import PERF
from repro.netsim.sim import Simulator
from repro.netsim.transport import OriginMap
from repro.proxy.cache import PrefetchCache
from repro.proxy.prefetcher import origin_fetch


class HistoryPrefetcher:
    """Most-frequent-successor prefetching over exact request keys."""

    def __init__(
        self,
        sim: Simulator,
        origins: OriginMap,
        cache: PrefetchCache,
        site_for=None,
        ttl: float = 600.0,
        top_n: int = 1,
        max_concurrent: int = 32,
    ) -> None:
        self.sim = sim
        self.origins = origins
        self.cache = cache
        #: optional ``site_for(request) -> str`` labeler so hit stats
        #: stay comparable with the signature-keyed APPx accounting;
        #: falls back to the request host
        self.site_for = site_for
        self.ttl = ttl
        self.top_n = top_n
        self.max_concurrent = max_concurrent
        #: per-user last-seen exact key
        self._last_key: Dict[str, str] = {}
        #: (user, prev_key) -> {next_key: count}
        self._transitions: Dict[Tuple[str, str], Dict[str, int]] = {}
        #: exact key -> a replayable copy of the request
        self._requests: Dict[str, Request] = {}
        self._inflight = 0
        self.issued = 0
        self.skipped_concurrency = 0
        self.skipped_duplicate = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def _site(self, request: Request) -> str:
        if self.site_for is not None:
            label = self.site_for(request)
            if label:
                return label
        return request.uri.host

    def observe(self, user: str, request: Request, now: float) -> int:
        """Record one demand request; prefetch its predicted successors.

        Returns how many prefetches were started.
        """
        key = request.exact_key()
        if key not in self._requests:
            self._requests[key] = request.copy()
        previous = self._last_key.get(user)
        self._last_key[user] = key
        if previous is not None and previous != key:
            edge = self._transitions.setdefault((user, previous), {})
            edge[key] = edge.get(key, 0) + 1
        started = 0
        counts = self._transitions.get((user, key))
        if not counts:
            return 0
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for next_key, _ in ranked[: self.top_n]:
            prediction = self._requests.get(next_key)
            if prediction is None:
                continue
            if self.cache.contains_fresh(user, prediction, now):
                self.skipped_duplicate += 1
                continue
            if self._inflight >= self.max_concurrent:
                self.skipped_concurrency += 1
                break
            self._inflight += 1
            self.sim.spawn(self._fetch(user, prediction.copy()))
            started += 1
        return started

    def _fetch(self, user: str, request: Request) -> Generator:
        try:
            response, _ = yield self.sim.spawn(
                origin_fetch(self.sim, self.origins, request, user)
            )
            self.issued += 1
            if PERF.enabled:
                PERF.incr("history.issued")
            if response.ok:
                self.cache.put(
                    user,
                    request,
                    response,
                    self._site(request),
                    now=self.sim.now,
                    ttl=self.ttl,
                )
            else:
                self.errors += 1
        finally:
            self._inflight -= 1
        return None

    def stats(self) -> Dict[str, int]:
        return {
            "issued": self.issued,
            "errors": self.errors,
            "tracked_users": len(self._last_key),
            "transitions": len(self._transitions),
            "skipped_duplicate": self.skipped_duplicate,
            "skipped_concurrency": self.skipped_concurrency,
        }
