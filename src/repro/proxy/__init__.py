"""The APPx acceleration proxy (§4.2–§4.5).

* :mod:`repro.proxy.instances` — run-time signature wrappers, template
  matching with capture groups, and prefetch request instances.
* :mod:`repro.proxy.learning` — dynamic learning (Fig. 6): observe
  transactions, learn run-time values, instantiate successor requests
  from predecessor responses, adapt to recent branch conditions.
* :mod:`repro.proxy.cache` — the prefetched-response cache with
  expiration and per-user isolation.
* :mod:`repro.proxy.config` — the prefetching policy (Fig. 9).
* :mod:`repro.proxy.prefetcher` — priority-scheduled prefetch issuing
  (§5) with chain prefetching and a data budget.
* :mod:`repro.proxy.proxy` — the proxy main loop (Fig. 10) and the
  client transport that routes through it.
* :mod:`repro.proxy.verification` — the testing & verification phase
  (§4.3): fuzz-driven validation and expiry estimation producing the
  initial configuration.
"""

from repro.proxy.cache import CacheEntry, PrefetchCache
from repro.proxy.config import Condition, ProxyConfig, SignaturePolicy, default_config
from repro.proxy.instances import RequestInstance, RuntimeSignature, SignatureMatcher
from repro.proxy.learning import DynamicLearner
from repro.proxy.multiapp import MultiAppProxy, MultiAppTransport
from repro.proxy.popularity import PopularityTracker
from repro.proxy.prefetcher import Prefetcher
from repro.proxy.proxy import AccelerationProxy, ProxiedTransport
from repro.proxy.refresher import Refresher
from repro.proxy.verification import VerificationReport, run_verification

__all__ = [
    "AccelerationProxy",
    "CacheEntry",
    "Condition",
    "DynamicLearner",
    "MultiAppProxy",
    "MultiAppTransport",
    "PopularityTracker",
    "PrefetchCache",
    "Prefetcher",
    "ProxiedTransport",
    "ProxyConfig",
    "Refresher",
    "RequestInstance",
    "RuntimeSignature",
    "SignatureMatcher",
    "SignaturePolicy",
    "VerificationReport",
    "default_config",
    "run_verification",
]
