"""Popularity-guided prefetching (§6.3's proposed extension).

The paper: *"APPx can perform prefetching more effectively by making
the proxy collect and use fine-grained popularity of each request or
item"*.  This module implements that: the proxy counts how often
clients actually request each (signature, dependency-value) pair, and a
policy's ``popularity_top_k`` restricts prefetching to the K most
popular items of that signature — trimming the long tail of prefetched
bytes that no user ever consumes (the paper measures only 1–5% of
prefetched transactions being used).

Cold-start rule: while a signature has seen fewer than K distinct
items, everything is allowed (there is no popularity signal yet).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: identity of one concrete item of a signature: the sorted tuple of
#: its dependency-derived field values
ItemKey = Tuple[Tuple[str, str], ...]


class PopularityTracker:
    """Client-demand counts per (signature site, item)."""

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[ItemKey, int]] = {}

    # ------------------------------------------------------------------
    def record(self, site: str, key: ItemKey) -> None:
        per_site = self._counts.setdefault(site, {})
        per_site[key] = per_site.get(key, 0) + 1

    def record_request(self, signature, request) -> None:
        """Record a client request against its signature's dep fields."""
        key = item_key_for_request(signature, request)
        if key:
            self.record(signature.site, key)

    # ------------------------------------------------------------------
    def count(self, site: str, key: ItemKey) -> int:
        return self._counts.get(site, {}).get(key, 0)

    def distinct_items(self, site: str) -> int:
        return len(self._counts.get(site, {}))

    def rank(self, site: str, key: ItemKey) -> Optional[int]:
        """1-based popularity rank of ``key``, or None if unseen."""
        per_site = self._counts.get(site, {})
        if key not in per_site:
            return None
        ordered = sorted(per_site.items(), key=lambda kv: (-kv[1], kv[0]))
        for index, (candidate, _) in enumerate(ordered):
            if candidate == key:
                return index + 1
        return None  # pragma: no cover

    def allows(self, site: str, key: ItemKey, top_k: int) -> bool:
        """May this item be prefetched under a top-K policy?"""
        if self.distinct_items(site) < top_k:
            return True  # cold start: no signal yet
        rank = self.rank(site, key)
        return rank is not None and rank <= top_k


def item_key_for_instance(instance) -> ItemKey:
    """The item identity of a prefetch instance: its dep bindings."""
    return tuple(sorted(instance.dep_values.items()))


def item_key_for_request(signature, request) -> ItemKey:
    """Extract the dep-derived field values from an actual request."""
    values = []
    for path, template in signature.signature.request.fields.items():
        if not template.dep_atoms():
            continue
        extracted = path.extract(request)
        if extracted:
            values.append((path.to_string(), str(extracted[0])))
    # dependencies embedded in the URI count too
    if signature.signature.request.uri.dep_atoms():
        captures = signature.uri_matcher.match(
            request.uri.origin() + request.uri.path
        )
        if captures:
            for atom, value in captures:
                from repro.analysis.model import DepAtom

                if isinstance(atom, DepAtom):
                    values.append(("uri", value))
    return tuple(sorted(values))
