"""The acceleration proxy in operation (§4.5, Fig. 10).

Per client request: serve from the prefetch cache when the request is
*identical* to a prefetched one and unexpired; otherwise forward to the
origin.  Every transaction — forwarded or served — feeds dynamic
learning, whose completed instances go to the prefetcher.

:class:`ProxiedTransport` is the client-side transport that routes the
device's traffic through the proxy over the access link, replacing
:class:`~repro.netsim.DirectTransport` in the accelerated topology.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.analysis.model import AnalysisResult
from repro.httpmsg.message import Request, Transaction
from repro.metrics.perf import PERF
from repro.metrics.trace import TRACER, TraceContext
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator
from repro.netsim.transport import OriginMap, Transport
from repro.proxy.cache import PrefetchCache
from repro.proxy.config import ProxyConfig, default_config
from repro.proxy.learning import DynamicLearner
from repro.proxy.prefetcher import Prefetcher, origin_fetch

#: proxy-internal per-request processing time (lookup, learning)
PROXY_PROCESSING = 0.002


class AccelerationProxy:
    """One APPx-generated proxy instance for one target app."""

    def __init__(
        self,
        sim: Simulator,
        origins: OriginMap,
        analysis: AnalysisResult,
        config: Optional[ProxyConfig] = None,
        learner: Optional[DynamicLearner] = None,
        seed: int = 0,
        cache: Optional[PrefetchCache] = None,
        expiration=None,
        learn_mode: str = "deferred",
    ) -> None:
        self.sim = sim
        self.origins = origins
        self.analysis = analysis
        self.config = config if config is not None else default_config(analysis)
        #: internally-built learners default to the deferred learn
        #: pipeline (``learn_mode="deferred"``): observe() on the request
        #: path only matches + enqueues, and this proxy pumps the
        #: budgeted drain after each response.  Injected learners keep
        #: whatever mode they were constructed with.
        self.learner = (
            learner
            if learner is not None
            else DynamicLearner(analysis, learn_mode=learn_mode)
        )
        if self.learner.max_depth is None:
            self.learner.max_depth = self.config.max_chain_depth
        #: callers may inject a bounded or oracle-mode cache (e.g. the
        #: scale harness caps per-user entries; differential tests pass
        #: ``PrefetchCache(indexed=False)``)
        self.cache = cache if cache is not None else PrefetchCache()
        self.prefetcher = Prefetcher(
            sim, origins, self.cache, self.config, self.learner, seed=seed
        )
        #: optional §4.3 online ExpirationEstimator; stores then use its
        #: learned per-signature TTLs instead of the configured default
        self.prefetcher.expiration = expiration
        self.served_prefetched = 0
        self.forwarded = 0
        self.client_bytes = 0
        self.server_bytes = 0  # demand (non-prefetch) proxy↔server bytes
        #: optional hook fired on every cache hit: (user, site, request)
        #: — used by the §5 refresher to track consumed prefetches
        self.on_cache_hit = None

    # ------------------------------------------------------------------
    def handle_request(
        self, request: Request, user: str, trace: Optional[TraceContext] = None
    ) -> Generator:
        """Process: Fig. 10's per-request workflow; returns Response.

        ``trace`` is an optional request-lifecycle trace context (one
        span per stage); when ``None`` and the global tracer is armed,
        this proxy begins (and finishes) its own.  Callers that begin
        the trace — e.g. :class:`~repro.proxy.multiapp.MultiAppProxy`
        — keep ownership and finish it themselves.
        """
        self.client_bytes += request.wire_size()
        owns_trace = trace is None and TRACER.enabled
        if owns_trace:
            trace = TRACER.begin(user)
            owns_trace = trace is not None
        span = trace.start_span("match") if trace is not None else None
        with PERF.stage("proxy.dispatch"):
            signature = self.learner.signature_for(request)
        site = signature.site if signature else None
        if span is not None:
            trace.end_span(span, signature=site or "")
        observing = trace is not None or PERF.enabled
        span = trace.start_span("cache_lookup") if trace is not None else None
        with PERF.stage("proxy.cache_lookup"):
            if observing:
                entry, lookup_outcome = self.cache.lookup(user, request, self.sim.now)
            else:
                entry = self.cache.get(user, request, self.sim.now)
                lookup_outcome = "hit" if entry is not None else "miss_absent"
        started_at = self.sim.now
        if entry is not None:
            if span is not None:
                trace.end_span(span, outcome="hit", signature=site or "", shard=user)
            yield Delay(PROXY_PROCESSING)
            entry.served = True
            self.served_prefetched += 1
            if site:
                self.cache.record_hit(site)
                if self.on_cache_hit is not None:
                    self.on_cache_hit(user, site, request)
            response = entry.response
            prefetched = True
        else:
            if observing:
                cause = self._miss_cause(signature, user, lookup_outcome)
                if PERF.enabled:
                    PERF.incr("cache.miss." + cause)
                if span is not None:
                    trace.end_span(
                        span, outcome=cause, signature=site or "", shard=user
                    )
            if site and signature.is_successor:
                self.cache.record_miss(site)
            fetch_span = (
                trace.start_span("origin_fetch") if trace is not None else None
            )
            response, transferred = yield self.sim.spawn(
                origin_fetch(self.sim, self.origins, request, user)
            )
            if fetch_span is not None:
                trace.end_span(fetch_span, bytes=transferred, signature=site or "")
            self.server_bytes += transferred
            self.forwarded += 1
            prefetched = False
        self.client_bytes += response.wire_size()
        # §6.3 extension: record which items the client actually views,
        # so popularity policies can trim the prefetch long tail
        if signature is not None and signature.is_successor:
            self.prefetcher.popularity.record_request(signature, request)
        transaction = Transaction(
            request,
            response,
            started_at,
            self.sim.now,
            user=user,
            prefetched=prefetched,
        )
        with PERF.stage("proxy.learn"):
            ready_list = self.learner.observe(transaction, user, depth=0, trace=trace)
        if trace is not None:
            for ready in ready_list:
                span = trace.start_span(
                    "prefetch_issue", site=ready.instance.signature.site
                )
                outcome = self.prefetcher.submit(ready)
                trace.end_span(span, outcome=outcome)
        else:
            for ready in ready_list:
                self.prefetcher.submit(ready)
        # deferred mode: pump the budgeted drain now that the response
        # is determined — the learn tail runs off the request-critical
        # path, and completed prefetches submit exactly as inline
        # results would (same sim.now, same submit order)
        self.pump_learning(trace)
        if trace is not None:
            trace.tag("served", "prefetched" if prefetched else "origin")
            if owns_trace:
                TRACER.finish(trace)
        return response

    # ------------------------------------------------------------------
    def pump_learning(
        self,
        trace: Optional[TraceContext] = None,
        budget: Optional[int] = None,
    ) -> int:
        """Pump the deferred learn drain; submit completed prefetches.

        No-op for inline-mode learners and empty queues.  ``budget``
        overrides the learner's per-pump drain budget (None = learner
        default).  Returns the number of prefetches submitted.
        """
        learner = self.learner
        if learner.learn_mode != "deferred" or not learner.learn_queue_depth:
            return 0
        span = trace.start_span("learn_drain") if trace is not None else None
        with PERF.stage("proxy.learn_drain"):
            ready_list = learner.drain_learn_queue(budget=budget)
        if span is not None:
            trace.end_span(span, completed=len(ready_list))
        if trace is not None:
            for ready in ready_list:
                span = trace.start_span(
                    "prefetch_issue", site=ready.instance.signature.site
                )
                outcome = self.prefetcher.submit(ready)
                trace.end_span(span, outcome=outcome)
        else:
            for ready in ready_list:
                self.prefetcher.submit(ready)
        return len(ready_list)

    def _miss_cause(
        self,
        signature,
        user: str,
        lookup_outcome: str,
    ) -> str:
        """Attribute one cache miss to its cause (§4.5 attribution).

        ``unmatched`` — no signature claims the request; ``not_successor``
        — the signature is never a prefetch target; ``disabled`` — the
        policy turned prefetching off for this site; ``miss_expired`` —
        a prefetched entry was present but past its TTL;
        ``wildcard_pending`` — the learner still holds an incomplete
        instance for this (user, site), i.e. a wildcard/field value had
        not been learned in time; ``miss_absent`` — nothing was ever
        prefetched for this exact request.
        """
        if signature is None:
            return "unmatched"
        if not signature.is_successor:
            return "not_successor"
        if not self.config.policy(signature.site).prefetch:
            return "disabled"
        if lookup_outcome == "miss_expired":
            return "miss_expired"
        if self.learner.has_pending(user, signature.site):
            return "wildcard_pending"
        return "miss_absent"

    # ------------------------------------------------------------------
    def total_server_bytes(self) -> int:
        """All proxy↔server traffic: demand plus prefetch."""
        return self.server_bytes + self.prefetcher.prefetch_bytes

    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "served_prefetched": self.served_prefetched,
            "forwarded": self.forwarded,
            "client_bytes": self.client_bytes,
            "server_bytes_demand": self.server_bytes,
            "server_bytes_total": self.total_server_bytes(),
            "cache_entries": len(self.cache),
        }
        data.update(self.prefetcher.stats())
        data["learner"] = self.learner.stats()
        if PERF.enabled:
            data["perf"] = PERF.snapshot()
        return data


class ProxiedTransport(Transport):
    """Client ↔ proxy ↔ origin: the accelerated topology."""

    def __init__(
        self, sim: Simulator, access_link: Link, proxy: AccelerationProxy
    ) -> None:
        self.sim = sim
        self.access_link = access_link
        self.proxy = proxy

    def send(self, request: Request, user: str) -> Generator:
        request_size = request.wire_size()
        yield Delay(self.access_link.transfer_delay(self.sim.now, request_size))
        response = yield self.sim.spawn(self.proxy.handle_request(request, user))
        response_size = response.wire_size()
        yield Delay(self.access_link.transfer_delay(self.sim.now, response_size))
        return response
