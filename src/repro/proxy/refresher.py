"""Periodic prefetch refresh (§5).

The paper's prefetching thread "determines whether to issue a request
according to the frequency specified in the configuration".  The
:class:`Refresher` is that loop: for the duration it runs, it
periodically re-issues each signature's known prefetch requests so the
cache stays fresh across expirations — useful for long-lived sessions
where a user returns to a page after the original prefetch went stale.

The refresh interval per signature defaults to half the policy's
expiration time (re-fetch before the entry can expire) and never drops
below ``min_interval``.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.httpmsg.message import Request, Transaction
from repro.metrics.trace import TRACER
from repro.netsim.sim import Delay
from repro.proxy.prefetcher import origin_fetch
from repro.proxy.proxy import AccelerationProxy


class Refresher:
    """Keeps prefetched entries fresh for the time it runs."""

    def __init__(
        self,
        proxy: AccelerationProxy,
        min_interval: float = 5.0,
        max_requests_per_cycle: int = 64,
    ) -> None:
        self.proxy = proxy
        self.min_interval = min_interval
        self.max_requests_per_cycle = max_requests_per_cycle
        self.refreshed = 0
        self.cycles = 0
        self.purged = 0
        #: requests eligible for refresh: (user, site) -> Request
        self._known: Dict[Tuple[str, str], Request] = {}

    # ------------------------------------------------------------------
    def note_served(self, user: str, site: str, request: Request) -> None:
        """Remember a request worth keeping fresh (a proven cache hit).

        Install as ``proxy.on_cache_hit = refresher.note_served`` —
        refreshing only *consumed* prefetches avoids spending data on
        entries no user ever looked at.
        """
        self._known[(user, site)] = request.copy()

    @property
    def tracked(self) -> int:
        return len(self._known)

    def interval_for(self, site: str) -> float:
        expiration = self.proxy.config.policy(site).expiration_time
        return max(self.min_interval, expiration / 2.0)

    # ------------------------------------------------------------------
    def run(self, duration: float) -> Generator:
        """Simulator process: refresh cycles until ``duration`` elapses."""
        sim = self.proxy.sim
        started_at = sim.now
        last_refreshed: Dict[Tuple[str, str], float] = {}
        while sim.now - started_at < duration:
            yield Delay(self.min_interval)
            self.cycles += 1
            # long-lived sessions keep storing entries past their TTL;
            # sweep them each cycle so the cache holds only live ones
            # (timer-wheel backed: cost tracks expirations, not size)
            self.purged += self.proxy.cache.purge_expired(sim.now)
            # idle-cycle pump: drain any learn backlog a burst left
            # behind (no-op in inline mode / on an empty queue)
            self.proxy.pump_learning()
            issued = 0
            for (user, site), request in list(self._known.items()):
                if issued >= self.max_requests_per_cycle:
                    break
                interval = self.interval_for(site)
                last = last_refreshed.get((user, site), -1e18)
                if sim.now - last < interval:
                    continue
                if not self.proxy.config.policy(site).prefetch:
                    continue
                last_refreshed[(user, site)] = sim.now
                issued += 1
                yield sim.spawn(self._refresh_one(user, site, request))
        return self.refreshed

    def _refresh_one(self, user: str, site: str, request: Request) -> Generator:
        sim = self.proxy.sim
        started_at = sim.now
        # background refreshes trace as their own kind, so a postmortem
        # can tell refresh traffic from demand-triggered prefetches
        trace = TRACER.begin(user, kind="refresh") if TRACER.enabled else None
        if trace is not None:
            trace.tag("signature", site)
        span = trace.start_span("origin_fetch") if trace is not None else None
        response, transferred = yield sim.spawn(
            origin_fetch(sim, self.proxy.origins, request, user)
        )
        if span is not None:
            trace.end_span(span, bytes=transferred, signature=site)
        self.proxy.prefetcher.prefetch_bytes += transferred
        if response.ok:
            span = trace.start_span("store") if trace is not None else None
            self.proxy.cache.put(
                user, request, response, site,
                now=sim.now, ttl=self.proxy.prefetcher.ttl_for(site, response),
            )
            if span is not None:
                trace.end_span(span, signature=site)
            self.refreshed += 1
            # refreshed responses keep feeding the learner (chains)
            transaction = Transaction(
                request, response, started_at, sim.now, user=user, prefetched=True
            )
            for ready in self.proxy.learner.observe(
                transaction, user, depth=1, trace=trace
            ):
                self.proxy.prefetcher.submit(ready)
            # deferred mode parked the observation — pump the proxy's
            # budgeted drain so refresh-driven chains issue this cycle
            self.proxy.pump_learning(trace)
        TRACER.finish(trace)
        return None
