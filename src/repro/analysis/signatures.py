"""Signature building: merge site snapshots into transaction signatures.

Turns the raw :class:`~repro.analysis.interp.SiteRecorder` output into
:class:`~repro.analysis.model.TransactionSignature` objects:

* request URLs are split into a URI template plus query-field templates
  (query strings embedded in string-built URLs, ``"/img?cid=" + id``,
  are recognized);
* request entries tagged with branch contexts expand into field-set
  *variants* (Fig. 8), and same-field values differing across branches
  merge into alternations (``count: (30|1)`` in Fig. 5);
* response access paths recorded during interpretation become the
  response template.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.absval import (
    AEntry,
    AJson,
    AList,
    ARequest,
    AConst,
    AVal,
    to_template,
)
from repro.analysis.interp import SiteRecorder, SiteSnapshot
from repro.analysis.model import (
    AltAtom,
    ConstAtom,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import FieldPath

#: an entry as flattened from one snapshot:
#: (field path, value template, relative branch context)
_FlatEntry = Tuple[FieldPath, ValueTemplate, Tuple[Tuple[str, str], ...]]


def build_signatures(recorder: SiteRecorder) -> List[TransactionSignature]:
    signatures: List[TransactionSignature] = []
    for site in recorder.site_order:
        snapshots = recorder.snapshots[site]
        signatures.append(_build_signature(site, snapshots, recorder))
    return signatures


def _build_signature(
    site: str, snapshots: List[SiteSnapshot], recorder: SiteRecorder
) -> TransactionSignature:
    method = _method_of(snapshots[0].request)
    uri_options: List[ValueTemplate] = []
    field_templates: Dict[FieldPath, List[ValueTemplate]] = {}
    variants: Set[FrozenSet[str]] = set()
    body_kinds: Set[str] = set()
    side_effect = False

    for snapshot in snapshots:
        side_effect = side_effect or snapshot.side_effect
        uri_template, entries, body_kind = _flatten_request(
            snapshot.request, snapshot.exec_branch
        )
        body_kinds.add(body_kind)
        _add_option(uri_options, uri_template)
        for path, template, _branch in entries:
            options = field_templates.setdefault(path, [])
            _add_option(options, template)
        variants |= _variants_of(entries)

    request = RequestTemplate(
        method=method,
        uri=_merge_options(uri_options),
        fields={path: _merge_options(opts) for path, opts in field_templates.items()},
        body_kind=_pick_body_kind(body_kinds),
    )
    response = ResponseTemplate(
        body_kind=recorder.response_kind.get(site, "json"),
        paths=recorder.response_paths.get(site, set()),
        headers=recorder.response_headers.get(site, set()),
    )
    return TransactionSignature(
        site=site,
        request=request,
        response=response,
        variants=sorted(variants, key=sorted),
        side_effect=side_effect,
    )


def _method_of(request: ARequest) -> str:
    if isinstance(request.method, AConst):
        return str(request.method.value)
    return "GET"


def _pick_body_kind(kinds: Set[str]) -> str:
    for kind in ("json", "form"):
        if kind in kinds:
            return kind
    return "empty"


def _add_option(options: List[ValueTemplate], template: ValueTemplate) -> None:
    if all(template.canonical() != existing.canonical() for existing in options):
        options.append(template)


def _merge_options(options: List[ValueTemplate]) -> ValueTemplate:
    if not options:
        return ValueTemplate([ConstAtom("")])
    if len(options) == 1:
        return options[0]
    return ValueTemplate([AltAtom(options)])


# ----------------------------------------------------------------------
# flattening one snapshot
# ----------------------------------------------------------------------
def _flatten_request(
    request: ARequest, exec_branch: Tuple[Tuple[str, str], ...]
) -> Tuple[ValueTemplate, List[_FlatEntry], str]:
    fixed = dict(exec_branch)
    entries: List[_FlatEntry] = []
    history: List[Tuple[str, str, Tuple[Tuple[str, str], ...]]] = []

    def occurrence_of(root: str, key: str, branch) -> int:
        """Repeated-key index; entries in mutually-exclusive branch
        arms share a slot (one concrete run sees only one of them)."""
        count = 0
        for prev_root, prev_key, prev_branch in history:
            if prev_root == root and prev_key == key and _compatible(prev_branch, branch):
                count += 1
        history.append((root, key, branch))
        return count

    url_template = to_template(request.url)
    uri_atoms, embedded_query = _split_uri(list(url_template.atoms))
    uri_template = ValueTemplate(uri_atoms)
    for key, template in embedded_query:
        path = FieldPath("query", (key,), occurrence_of("query", key, ()))
        entries.append((path, template, ()))

    for root, bucket in (("header", request.headers), ("query", request.query)):
        for entry in bucket:
            flattened = _flatten_entry(root, entry, fixed, occurrence_of)
            if flattened is not None:
                entries.append(flattened)
    body_kind = "empty"
    if request.json_body is not None:
        body_kind = "json"
        _flatten_json(request.json_body, ("body",), entries)
    elif request.form:
        body_kind = "form"
        for entry in request.form:
            flattened = _flatten_entry("body", entry, fixed, occurrence_of)
            if flattened is not None:
                entries.append(flattened)
    return uri_template, entries, body_kind


def _compatible(a, b) -> bool:
    """Can two branch contexts hold in the same concrete execution?"""
    arms = dict(a)
    return all(arms.get(branch_id, arm) == arm for branch_id, arm in b)


def _flatten_entry(
    root: str, entry: AEntry, fixed: Dict[str, str], occurrence_of
) -> Optional[_FlatEntry]:
    relative: List[Tuple[str, str]] = []
    for branch_id, arm in entry.branch:
        if branch_id in fixed:
            if fixed[branch_id] != arm:
                return None  # entry lives on an incompatible path
        else:
            relative.append((branch_id, arm))
    branch = tuple(relative)
    path = FieldPath(root, (entry.key,), occurrence_of(root, entry.key, branch))
    return (path, to_template(entry.value), branch)


def _flatten_json(value: AVal, prefix: Tuple, entries: List[_FlatEntry]) -> None:
    if isinstance(value, AJson):
        for key, child in value.entries.items():
            _flatten_json(child, prefix + (key,), entries)
        return
    if isinstance(value, AList):
        for index, child in enumerate(value.items):
            _flatten_json(child, prefix + (index,), entries)
        return
    root, parts = prefix[0], prefix[1:]
    if not parts:
        # scalar json body: record as the root body field
        parts = ("value",)
    entries.append((FieldPath(root, parts), to_template(value), ()))


# ----------------------------------------------------------------------
# variants (branch-dependent field sets, Fig. 8)
# ----------------------------------------------------------------------
def _variants_of(entries: Sequence[_FlatEntry]) -> Set[FrozenSet[str]]:
    branch_ids: List[str] = []
    for _path, _template, branch in entries:
        for branch_id, _arm in branch:
            if branch_id not in branch_ids:
                branch_ids.append(branch_id)
    if not branch_ids:
        return {frozenset(path.to_string() for path, _t, _b in entries)}
    variants: Set[FrozenSet[str]] = set()
    for arms in product(("then", "else"), repeat=len(branch_ids)):
        combo = dict(zip(branch_ids, arms))
        present = frozenset(
            path.to_string()
            for path, _template, branch in entries
            if all(combo[b] == arm for b, arm in branch)
        )
        variants.add(present)
    return variants


# ----------------------------------------------------------------------
# URI splitting: "<origin>/path?k=<dep>&x=1" -> uri + query fields
# ----------------------------------------------------------------------
def _split_uri(atoms: List) -> Tuple[List, List[Tuple[str, ValueTemplate]]]:
    for index, atom in enumerate(atoms):
        if isinstance(atom, ConstAtom) and "?" in str(atom.value):
            before, _, after = str(atom.value).partition("?")
            uri_atoms = list(atoms[:index])
            if before:
                uri_atoms.append(ConstAtom(before))
            remainder: List = []
            if after:
                remainder.append(ConstAtom(after))
            remainder.extend(atoms[index + 1 :])
            return uri_atoms, _parse_query_atoms(remainder)
    return list(atoms), []


def _parse_query_atoms(atoms: List) -> List[Tuple[str, ValueTemplate]]:
    pairs: List[Tuple[str, ValueTemplate]] = []
    mode = "key"
    key_buffer = ""
    key: Optional[str] = None
    value_atoms: List = []

    def flush() -> None:
        nonlocal key, value_atoms, mode, key_buffer
        if key is not None:
            template = ValueTemplate(value_atoms if value_atoms else [ConstAtom("")])
            pairs.append((key, template))
        key = None
        value_atoms = []
        key_buffer = ""
        mode = "key"

    for atom in atoms:
        if isinstance(atom, ConstAtom):
            text = str(atom.value)
            while text:
                if mode == "key":
                    head, sep, text = text.partition("=")
                    key_buffer += head
                    if sep:
                        key = key_buffer
                        key_buffer = ""
                        mode = "value"
                        value_atoms = []
                else:
                    head, sep, text = text.partition("&")
                    if head:
                        value_atoms.append(ConstAtom(head))
                    if sep:
                        flush()
        else:
            if mode == "value":
                value_atoms.append(atom)
            # non-const atoms in key position are dropped (unsupported)
    if mode == "value":
        flush()
    return pairs
