"""Abstract interpretation of app entry points.

Walks every entry point of the program (the main component's lifecycle
method, then every screen event handler), propagating abstract values
(:mod:`repro.analysis.absval`) through registers, heap objects,
Intents, and Rx chains.  Every ``Http.execute`` reached records a
*transaction site* snapshot; :mod:`repro.analysis.signatures` merges
snapshots into :class:`~repro.analysis.model.TransactionSignature`.

Design notes mirroring the paper:

* **Branch conditions** (§4.2, Fig. 8): an ``If`` on a run-time-unknown
  condition interprets both arms, tagging request-field additions with
  a branch context; the signature builder expands the contexts into
  field-set *variants*.
* **Intent map** (§4.1): ``Intent.putExtra``/``getExtra`` pairs carry
  abstract values across components; ``Component.start`` inlines the
  target's lifecycle handler.
* **Rx semantics** (§4.1): ``map``/``flatMap``/``defer``/``subscribe``
  apply their function references to the wrapped abstract value.
* **Heap/alias precision** (§4.1): heap objects are shared by
  reference, so flows through aliased objects resolve; the
  ``precise_heap=False`` ablation deliberately loses them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.absval import (
    ABlob,
    AConst,
    AEntry,
    AIntent,
    AJson,
    AList,
    AObj,
    AObs,
    ARequest,
    AResp,
    ARespHeader,
    ARespJson,
    AUnknown,
    AVal,
    concat,
)
from repro.apk.api import unknown_tag
from repro.apk.ir import (
    Block,
    CallMethod,
    Const,
    ForEach,
    GetField,
    If,
    Instruction,
    Invoke,
    MethodRef,
    Move,
    New,
    PutField,
    Return,
)
from repro.apk.program import ApkFile, Component
from repro.httpmsg.fieldpath import ALL, FieldPath


class InterpOptions:
    """Analysis feature switches (the paper's three extensions)."""

    def __init__(
        self,
        intent_support: bool = True,
        rx_support: bool = True,
        precise_heap: bool = True,
        max_call_depth: int = 24,
        max_list_iterations: int = 8,
    ) -> None:
        self.intent_support = intent_support
        self.rx_support = rx_support
        self.precise_heap = precise_heap
        self.max_call_depth = max_call_depth
        self.max_list_iterations = max_list_iterations

    def to_dict(self) -> dict:
        """All option fields, sorted — the analysis-cache key material.

        Subclasses that add fields (``AnalysisOptions``) are covered
        automatically; any new switch changes the cache key.
        """
        return dict(sorted(vars(self).items()))


class SiteSnapshot:
    """One abstract request observed at a transaction site."""

    __slots__ = ("request", "exec_branch", "side_effect")

    def __init__(self, request: ARequest, exec_branch, side_effect: bool) -> None:
        self.request = request
        self.exec_branch = exec_branch
        self.side_effect = side_effect


class SiteRecorder:
    """Accumulates everything observed about each transaction site."""

    def __init__(self) -> None:
        self.snapshots: Dict[str, List[SiteSnapshot]] = {}
        self.response_paths: Dict[str, Set[FieldPath]] = {}
        self.response_headers: Dict[str, Set[str]] = {}
        self.response_kind: Dict[str, str] = {}
        self.site_order: List[str] = []

    def record_request(self, site: str, snapshot: SiteSnapshot) -> None:
        if site not in self.snapshots:
            self.snapshots[site] = []
            self.site_order.append(site)
        self.snapshots[site].append(snapshot)

    def record_path(self, site: str, path: FieldPath) -> None:
        self.response_paths.setdefault(site, set()).add(path)

    def record_header(self, site: str, name: str) -> None:
        self.response_headers.setdefault(site, set()).add(name)

    def record_kind(self, site: str, kind: str) -> None:
        self.response_kind[site] = kind


class _Frame:
    __slots__ = ("env", "returned", "done")

    def __init__(self, env: Dict[str, AVal]) -> None:
        self.env = env
        self.returned: AVal = AConst(None)
        self.done = False


class AbstractInterpreter:
    """Whole-app abstract interpretation pass."""

    def __init__(self, apk: ApkFile, options: Optional[InterpOptions] = None) -> None:
        self.apk = apk
        self.options = options or InterpOptions()
        self.recorder = SiteRecorder()
        self._site_names: Dict[int, str] = {}
        self._branch_names: Dict[int, str] = {}
        self._index_sites()
        self._instances: Dict[str, AObj] = {}
        self._branch_stack: List[Tuple[str, str]] = []
        self._call_depth = 0
        self._active_components: Set[str] = set()
        self._ever_started: Set[str] = set()
        self._current_side_effect = False

    # ------------------------------------------------------------------
    # site naming: Class.method#k for the k-th execute in that method
    # ------------------------------------------------------------------
    def _index_sites(self) -> None:
        for method in self.apk.all_methods():
            execute_index = 0
            branch_index = 0
            for instruction in method.body.walk():
                if isinstance(instruction, Invoke) and instruction.api == "Http.execute":
                    self._site_names[id(instruction)] = "{}#{}".format(
                        method.ref.to_string(), execute_index
                    )
                    execute_index += 1
                if isinstance(instruction, If):
                    self._branch_names[id(instruction)] = "{}@b{}".format(
                        method.ref.to_string(), branch_index
                    )
                    branch_index += 1

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self) -> SiteRecorder:
        """Interpret every entry point; return the populated recorder."""
        main = self.apk.main()
        self._start_component(main, AIntent())
        for screen in self.apk.screens.values():
            owner = self._component_for_screen(screen.name)
            if owner is None:
                continue
            for event in screen.events.values():
                self._current_side_effect = event.side_effect
                method = self.apk.resolve(event.handler)
                args: List[AVal] = [self._instance(owner)]
                if event.takes_index:
                    args.append(AUnknown("ui:index"))
                # handlers may declare (this) or (this, index)
                args = args[: len(method.params)]
                while len(args) < len(method.params):
                    args.append(AUnknown("ui:arg"))
                self._interp_method(event.handler, args)
                self._current_side_effect = False
        # components never reached interactively (background services,
        # push-notification handlers) are still static entry points —
        # this is exactly the coverage UI fuzzing cannot reach (§6.1)
        for component in self.apk.components.values():
            if component.name not in self._ever_started:
                self._start_component(component, AIntent())
        return self.recorder

    def _component_for_screen(self, screen_name: str) -> Optional[Component]:
        for component in self.apk.components.values():
            if component.screen == screen_name:
                return component
        return None

    def _instance(self, component: Component) -> AObj:
        if component.name not in self._instances:
            self._instances[component.name] = AObj(
                component.class_name, "component:{}".format(component.name)
            )
        return self._instances[component.name]

    def _start_component(self, component: Component, intent: AVal) -> None:
        if component.name in self._active_components:
            return  # avoid start cycles
        self._active_components.add(component.name)
        self._ever_started.add(component.name)
        try:
            method = self.apk.resolve(component.start_ref)
            args: List[AVal] = [self._instance(component), intent]
            args = args[: len(method.params)]
            while len(args) < len(method.params):
                args.append(AUnknown("lifecycle:arg"))
            self._interp_method(component.start_ref, args)
        finally:
            self._active_components.discard(component.name)

    # ------------------------------------------------------------------
    # method / block interpretation
    # ------------------------------------------------------------------
    def _interp_method(self, ref: MethodRef, args: List[AVal]) -> AVal:
        if self._call_depth >= self.options.max_call_depth:
            return AUnknown("depth:{}".format(ref.to_string()))
        method = self.apk.resolve(ref)
        frame = _Frame(dict(zip(method.params, args)))
        self._call_depth += 1
        try:
            self._interp_block(method.body, frame)
        finally:
            self._call_depth -= 1
        return frame.returned

    def _interp_block(self, block: Block, frame: _Frame) -> None:
        for instruction in block:
            if frame.done:
                return
            self._interp_instruction(instruction, frame)

    def _interp_instruction(self, instruction: Instruction, frame: _Frame) -> None:
        env = frame.env
        if isinstance(instruction, Const):
            env[instruction.dst] = AConst(instruction.value)
        elif isinstance(instruction, Move):
            env[instruction.dst] = env[instruction.src]
        elif isinstance(instruction, New):
            env[instruction.dst] = AObj(
                instruction.class_name, "alloc:{}".format(id(instruction))
            )
        elif isinstance(instruction, GetField):
            env[instruction.dst] = self._get_field(env[instruction.obj], instruction.field)
        elif isinstance(instruction, PutField):
            target = env[instruction.obj]
            if isinstance(target, AObj):
                target.fields[instruction.field] = env[instruction.src]
        elif isinstance(instruction, Invoke):
            result = self._invoke(instruction, frame)
            if instruction.dst is not None:
                env[instruction.dst] = result if result is not None else AUnknown("void")
        elif isinstance(instruction, CallMethod):
            value = self._interp_method(
                instruction.ref, [env[a] for a in instruction.args]
            )
            if instruction.dst is not None:
                env[instruction.dst] = value
        elif isinstance(instruction, If):
            self._interp_if(instruction, frame)
        elif isinstance(instruction, ForEach):
            self._interp_foreach(instruction, frame)
        elif isinstance(instruction, Return):
            frame.returned = env[instruction.src] if instruction.src else AConst(None)
            frame.done = True
        else:  # pragma: no cover
            raise TypeError("unknown instruction {!r}".format(instruction))

    def _get_field(self, obj: AVal, field: str) -> AVal:
        if isinstance(obj, AObj):
            if not self.options.precise_heap and not obj.site.startswith("component:"):
                # ablation: without on-demand alias analysis the value
                # stored through another alias is not recovered
                return AUnknown("heap:unmodeled:{}".format(field))
            return obj.fields.get(field, AUnknown("field:{}".format(field)))
        if isinstance(obj, ARespJson):
            self.recorder.record_path(obj.site, obj.child(field).field_path())
            return obj.child(field)
        return AUnknown("field:{}".format(field))

    def _interp_if(self, instruction: If, frame: _Frame) -> None:
        cond = frame.env[instruction.cond]
        if isinstance(cond, AConst):
            taken = instruction.then_block if cond.value else instruction.else_block
            self._interp_block(taken, frame)
            return
        branch_id = self._branch_names.get(id(instruction), "b?{}".format(id(instruction)))
        for arm, block in (("then", instruction.then_block), ("else", instruction.else_block)):
            self._branch_stack.append((branch_id, arm))
            done_before = frame.done
            self._interp_block(block, frame)
            # a Return inside one abstract arm must not kill the other
            frame.done = done_before
            self._branch_stack.pop()

    def _interp_foreach(self, instruction: ForEach, frame: _Frame) -> None:
        source = frame.env[instruction.src]
        if isinstance(source, ARespJson):
            element = source.child(ALL)
            self.recorder.record_path(source.site, element.field_path())
            frame.env[instruction.var] = element
            self._interp_block(instruction.body, frame)
        elif isinstance(source, AList):
            for item in source.items[: self.options.max_list_iterations]:
                frame.env[instruction.var] = item
                self._interp_block(instruction.body, frame)
        else:
            frame.env[instruction.var] = AUnknown("foreach:element")
            self._interp_block(instruction.body, frame)

    # ------------------------------------------------------------------
    # API dispatch
    # ------------------------------------------------------------------
    def _invoke(self, instruction: Invoke, frame: _Frame) -> Optional[AVal]:
        api = instruction.api
        args = [frame.env[a] for a in instruction.args]
        handler = getattr(self, "_api_" + api.replace(".", "_"), None)
        if handler is None:
            raise KeyError("no abstract semantics for {}".format(api))
        return handler(instruction, frame, args)

    # strings ------------------------------------------------------------
    def _api_Str_concat(self, instruction, frame, args):
        return concat(args[0], args[1])

    # HTTP request construction -------------------------------------------
    def _api_Http_newRequest(self, instruction, frame, args):
        return ARequest(args[0], args[1])

    def _branch_ctx(self):
        return tuple(self._branch_stack)

    def _api_Http_addHeader(self, instruction, frame, args):
        request, name, value = args
        if isinstance(request, ARequest) and isinstance(name, AConst):
            request.headers.append(AEntry(str(name.value), value, self._branch_ctx()))
        return None

    def _api_Http_addQuery(self, instruction, frame, args):
        request, key, value = args
        if isinstance(request, ARequest) and isinstance(key, AConst):
            request.query.append(AEntry(str(key.value), value, self._branch_ctx()))
        return None

    def _api_Http_addFormField(self, instruction, frame, args):
        request, key, value = args
        if isinstance(request, ARequest) and isinstance(key, AConst):
            request.form.append(AEntry(str(key.value), value, self._branch_ctx()))
        return None

    def _api_Http_setJsonBody(self, instruction, frame, args):
        request, body = args
        if isinstance(request, ARequest):
            request.json_body = body
        return None

    def _api_Http_execute(self, instruction, frame, args):
        request = args[0]
        site = self._site_names[id(instruction)]
        if isinstance(request, ARequest):
            snapshot = SiteSnapshot(
                request.clone({}), self._branch_ctx(), self._current_side_effect
            )
            self.recorder.record_request(site, snapshot)
        return AResp(site)

    # HTTP response consumption -------------------------------------------
    def _api_Http_bodyJson(self, instruction, frame, args):
        response = args[0]
        if isinstance(response, AResp):
            self.recorder.record_kind(response.site, "json")
            return ARespJson(response.site, ())
        return AUnknown("body:json")

    def _api_Http_bodyBlob(self, instruction, frame, args):
        response = args[0]
        if isinstance(response, AResp):
            self.recorder.record_kind(response.site, "blob")
            return ABlob(response.site)
        return AUnknown("body:blob")

    def _api_Http_header(self, instruction, frame, args):
        response, name = args
        if isinstance(response, AResp) and isinstance(name, AConst):
            self.recorder.record_header(response.site, str(name.value))
            return ARespHeader(response.site, str(name.value))
        return AUnknown("resp:header")

    # JSON ----------------------------------------------------------------
    def _api_Json_new(self, instruction, frame, args):
        return AJson()

    def _api_Json_put(self, instruction, frame, args):
        obj, key, value = args
        if isinstance(obj, AJson) and isinstance(key, AConst):
            obj.entries[str(key.value)] = value
        return None

    def _api_Json_get(self, instruction, frame, args):
        obj, key = args
        key_text = str(key.value) if isinstance(key, AConst) else None
        if isinstance(obj, AJson):
            if key_text is not None and key_text in obj.entries:
                return obj.entries[key_text]
            return AUnknown("json:missing:{}".format(key_text))
        if isinstance(obj, ARespJson) and key_text is not None:
            child = obj.child(key_text)
            self.recorder.record_path(obj.site, child.field_path())
            return child
        if isinstance(obj, AIntent):
            return self._intent_get(obj, key_text)
        return AUnknown("json:get")

    def _api_Json_index(self, instruction, frame, args):
        obj, index = args
        if isinstance(obj, ARespJson):
            element = obj.child(ALL)
            self.recorder.record_path(obj.site, element.field_path())
            return element
        if isinstance(obj, AList):
            if isinstance(index, AConst):
                i = index.value
                if isinstance(i, int) and 0 <= i < len(obj.items):
                    return obj.items[i]
            # unknown index: any element may be selected; the elements
            # of an app-built list are abstractions of the same shape
            # (e.g. every flattened menu item), so the first stands in
            if obj.items:
                return obj.items[0]
        return AUnknown("json:index")

    def _api_Json_has(self, instruction, frame, args):
        obj, key = args
        key_text = str(key.value) if isinstance(key, AConst) else "?"
        if isinstance(obj, AJson):
            return AConst(key_text in obj.entries)
        if isinstance(obj, ARespJson):
            self.recorder.record_path(obj.site, obj.child(key_text).field_path())
        return AUnknown("cond:has:{}".format(key_text))

    # lists ----------------------------------------------------------------
    def _api_List_new(self, instruction, frame, args):
        return AList()

    def _api_List_add(self, instruction, frame, args):
        target, value = args
        if isinstance(target, AList):
            target.items.append(value)
        return None

    # Intents ---------------------------------------------------------------
    def _api_Intent_new(self, instruction, frame, args):
        return AIntent()

    def _api_Intent_putExtra(self, instruction, frame, args):
        intent, key, value = args
        if not self.options.intent_support:
            return None
        if isinstance(intent, AIntent) and isinstance(key, AConst):
            intent.extras[str(key.value)] = value
        return None

    def _api_Intent_getExtra(self, instruction, frame, args):
        intent, key = args
        key_text = str(key.value) if isinstance(key, AConst) else None
        if isinstance(intent, AIntent):
            return self._intent_get(intent, key_text)
        return AUnknown("intent:unmodeled")

    def _intent_get(self, intent: AIntent, key_text: Optional[str]) -> AVal:
        if not self.options.intent_support:
            return AUnknown("intent:unmodeled")
        if key_text is not None and key_text in intent.extras:
            return intent.extras[key_text]
        return AUnknown("intent:extra:{}".format(key_text))

    def _api_Component_start(self, instruction, frame, args):
        intent, name = args
        if not isinstance(name, AConst):
            return None
        component = self.apk.components.get(str(name.value))
        if component is None:
            return None
        carried = intent if self.options.intent_support else AIntent()
        self._start_component(component, carried)
        return None

    # Rx ---------------------------------------------------------------------
    def _rx_callback(self, frame, fn: AVal, upstream: List[AVal]) -> AVal:
        ref = MethodRef.parse(str(fn.value))
        this = frame.env.get("this", AUnknown("rx:this"))
        return self._interp_method(ref, [this] + upstream)

    def _api_Rx_just(self, instruction, frame, args):
        return AObs(args[0])

    def _api_Rx_defer(self, instruction, frame, args):
        if not self.options.rx_support:
            return AObs(AUnknown("rx:unmodeled"))
        result = self._rx_callback(frame, args[0], [])
        return result if isinstance(result, AObs) else AObs(result)

    def _api_Rx_map(self, instruction, frame, args):
        obs, fn = args
        if not self.options.rx_support or not isinstance(obs, AObs):
            return AObs(AUnknown("rx:unmodeled"))
        return AObs(self._rx_callback(frame, fn, [obs.value]))

    def _api_Rx_flatMap(self, instruction, frame, args):
        obs, fn = args
        if not self.options.rx_support or not isinstance(obs, AObs):
            return AObs(AUnknown("rx:unmodeled"))
        result = self._rx_callback(frame, fn, [obs.value])
        return result if isinstance(result, AObs) else AObs(result)

    def _api_Rx_zip(self, instruction, frame, args):
        left, right, fn = args
        if (
            not self.options.rx_support
            or not isinstance(left, AObs)
            or not isinstance(right, AObs)
        ):
            return AObs(AUnknown("rx:unmodeled"))
        result = self._rx_callback(frame, fn, [left.value, right.value])
        return result if isinstance(result, AObs) else AObs(result)

    def _api_Rx_subscribe(self, instruction, frame, args):
        obs, fn = args
        if not self.options.rx_support or not isinstance(obs, AObs):
            return None
        self._rx_callback(frame, fn, [obs.value])
        return None

    # environment -----------------------------------------------------------
    def _env_unknown(self, api: str, args: List[AVal]) -> AUnknown:
        literal = None
        if args and isinstance(args[0], AConst):
            literal = str(args[0].value)
        return AUnknown(unknown_tag(api, literal))

    def _api_Env_userAgent(self, instruction, frame, args):
        return self._env_unknown("Env.userAgent", args)

    def _api_Env_cookie(self, instruction, frame, args):
        return self._env_unknown("Env.cookie", args)

    def _api_Env_config(self, instruction, frame, args):
        return self._env_unknown("Env.config", args)

    def _api_Env_deviceId(self, instruction, frame, args):
        return self._env_unknown("Env.deviceId", args)

    def _api_Env_flag(self, instruction, frame, args):
        return self._env_unknown("Env.flag", args)

    def _api_Env_nonce(self, instruction, frame, args):
        return self._env_unknown("Env.nonce", args)

    # UI ----------------------------------------------------------------------
    def _api_Ui_render(self, instruction, frame, args):
        return None
