"""Signature and dependency model — the analyzer's output format.

A :class:`TransactionSignature` corresponds to the paper's Fig. 5: a
regex-shaped template of one HTTP transaction.  Every request field is
a :class:`ValueTemplate`, a concatenation of atoms:

* :class:`ConstAtom` — literal text known statically;
* :class:`UnknownAtom` — a run-time-only value (tagged with *why* it is
  unknown, e.g. ``env:cookie``): renders as ``.*`` and must be learned
  dynamically (§4.2);
* :class:`DepAtom` — derived from a field of another transaction's
  response: renders as ``.*`` *and* induces a
  :class:`DependencyEdge`, making the signature a *successor* and
  therefore prefetchable.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.httpmsg.fieldpath import FieldPath


class ConstAtom:
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def regex(self) -> str:
        return re.escape(str(self.value))

    def canonical(self) -> str:
        return "C:{!r}".format(self.value)

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstAtom) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", str(self.value)))

    def __repr__(self) -> str:
        return "ConstAtom({!r})".format(self.value)


class UnknownAtom:
    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def regex(self) -> str:
        return ".*"

    def canonical(self) -> str:
        return "U:{}".format(self.tag)

    def __eq__(self, other) -> bool:
        return isinstance(other, UnknownAtom) and self.tag == other.tag

    def __hash__(self) -> int:
        return hash(("unknown", self.tag))

    def __repr__(self) -> str:
        return "UnknownAtom({})".format(self.tag)


class DepAtom:
    """Value derived from ``pred_site``'s response at ``pred_path``."""

    __slots__ = ("pred_site", "pred_path")

    def __init__(self, pred_site: str, pred_path: FieldPath) -> None:
        self.pred_site = pred_site
        self.pred_path = pred_path

    def regex(self) -> str:
        return ".*"

    def canonical(self) -> str:
        return "D:{}:{}".format(self.pred_site, self.pred_path.to_string())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DepAtom)
            and self.pred_site == other.pred_site
            and self.pred_path == other.pred_path
        )

    def __hash__(self) -> int:
        return hash(("dep", self.pred_site, self.pred_path))

    def __repr__(self) -> str:
        return "DepAtom({}, {})".format(self.pred_site, self.pred_path.to_string())


class AltAtom:
    """Alternation between branch-dependent values, e.g. ``(30|1)``.

    The paper's Fig. 5 shows exactly this shape: ``count: (30|1)`` —
    one branch sends 30, the other 1.
    """

    __slots__ = ("options",)

    def __init__(self, options: Sequence["ValueTemplate"]) -> None:
        # dedupe, preserve order
        seen = set()
        unique: List[ValueTemplate] = []
        for option in options:
            key = option.canonical()
            if key not in seen:
                seen.add(key)
                unique.append(option)
        self.options: Tuple["ValueTemplate", ...] = tuple(unique)

    def regex(self) -> str:
        return "({})".format("|".join(o.regex() for o in self.options))

    def canonical(self) -> str:
        return "A:({})".format("|".join(o.canonical() for o in self.options))

    def __eq__(self, other) -> bool:
        return isinstance(other, AltAtom) and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return "AltAtom({})".format(self.canonical())


Atom = object  # ConstAtom | UnknownAtom | DepAtom | AltAtom


class ValueTemplate:
    """A field value as a concatenation of atoms."""

    def __init__(self, atoms: Sequence[Atom]) -> None:
        self.atoms: Tuple[Atom, ...] = tuple(atoms)

    @classmethod
    def const(cls, value) -> "ValueTemplate":
        return cls([ConstAtom(value)])

    @classmethod
    def unknown(cls, tag: str) -> "ValueTemplate":
        return cls([UnknownAtom(tag)])

    def is_const(self) -> bool:
        return all(isinstance(a, ConstAtom) for a in self.atoms)

    def const_value(self):
        """The literal value when :meth:`is_const` (joined if several)."""
        if not self.is_const():
            raise ValueError("template is not constant")
        if len(self.atoms) == 1:
            return self.atoms[0].value
        return "".join(str(a.value) for a in self.atoms)

    def dep_atoms(self) -> List[DepAtom]:
        out: List[DepAtom] = []
        for atom in self.atoms:
            if isinstance(atom, DepAtom):
                out.append(atom)
            elif isinstance(atom, AltAtom):
                for option in atom.options:
                    out.extend(option.dep_atoms())
        return out

    def unknown_atoms(self) -> List[UnknownAtom]:
        out: List[UnknownAtom] = []
        for atom in self.atoms:
            if isinstance(atom, UnknownAtom):
                out.append(atom)
            elif isinstance(atom, AltAtom):
                for option in atom.options:
                    out.extend(option.unknown_atoms())
        return out

    def regex(self) -> str:
        return "".join(a.regex() for a in self.atoms)

    def matches(self, text: str) -> bool:
        return re.fullmatch(self.regex(), str(text)) is not None

    def canonical(self) -> str:
        return "|".join(a.canonical() for a in self.atoms)

    def __eq__(self, other) -> bool:
        return isinstance(other, ValueTemplate) and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)

    def __repr__(self) -> str:
        return "ValueTemplate({})".format(self.canonical())


class RequestTemplate:
    """Template of a request: method, URI, and per-field templates.

    ``fields`` maps a :class:`FieldPath` (header/query/body) to its
    :class:`ValueTemplate`.  ``uri`` is the template of
    ``origin + path`` (query handled by field paths).  ``body_kind`` is
    ``form``, ``json``, or ``empty``.
    """

    def __init__(
        self,
        method: str,
        uri: ValueTemplate,
        fields: Optional[Dict[FieldPath, ValueTemplate]] = None,
        body_kind: str = "empty",
    ) -> None:
        self.method = method
        self.uri = uri
        self.fields: Dict[FieldPath, ValueTemplate] = dict(fields or {})
        self.body_kind = body_kind

    def uri_regex(self) -> str:
        return self.uri.regex()

    def matches_uri(self, uri_string: str) -> bool:
        """Regex-match an observed URI (ignoring its query string)."""
        base = uri_string.split("?", 1)[0]
        return re.fullmatch(self.uri_regex(), base) is not None

    def dep_atoms(self) -> List[Tuple[FieldPath, DepAtom]]:
        out: List[Tuple[FieldPath, DepAtom]] = []
        for path, template in self.fields.items():
            for atom in template.dep_atoms():
                out.append((path, atom))
        for atom in self.uri.dep_atoms():
            out.append((FieldPath("uri"), atom))
        return out

    def unknown_paths(self) -> List[FieldPath]:
        paths = [p for p, t in self.fields.items() if not t.is_const()]
        if not self.uri.is_const():
            paths.append(FieldPath("uri"))
        return paths

    def canonical(self) -> str:
        lines = [self.method, self.uri.canonical(), self.body_kind]
        for path in sorted(self.fields, key=lambda p: p.to_string()):
            lines.append("{}={}".format(path.to_string(), self.fields[path].canonical()))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "RequestTemplate({} {})".format(self.method, self.uri.canonical())


class ResponseTemplate:
    """What the app reads out of the response.

    ``body_kind`` is ``json`` or ``blob``; ``paths`` are the JSON field
    paths the program accesses (the signature's response side in
    Fig. 5); ``headers`` are response headers read.
    """

    def __init__(
        self,
        body_kind: str = "json",
        paths: Optional[Iterable[FieldPath]] = None,
        headers: Optional[Iterable[str]] = None,
    ) -> None:
        self.body_kind = body_kind
        self.paths: Set[FieldPath] = set(paths or [])
        self.headers: Set[str] = set(headers or [])

    def canonical(self) -> str:
        lines = [self.body_kind]
        lines.extend(sorted(p.to_string() for p in self.paths))
        lines.extend(sorted("H:" + h for h in self.headers))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ResponseTemplate({}, {} paths)".format(self.body_kind, len(self.paths))


class TransactionSignature:
    """One HTTP transaction signature (Fig. 5).

    ``site`` is the static program location (``Class.method#k``);
    ``variants`` enumerates the field-path sets that can be present
    depending on run-time branch conditions (Fig. 8).
    """

    def __init__(
        self,
        site: str,
        request: RequestTemplate,
        response: ResponseTemplate,
        variants: Optional[Iterable[FrozenSet[str]]] = None,
        side_effect: bool = False,
    ) -> None:
        self.site = site
        self.request = request
        self.response = response
        self.variants: List[FrozenSet[str]] = list(variants or [])
        if not self.variants:
            self.variants = [
                frozenset(p.to_string() for p in request.fields)
            ]
        self.side_effect = side_effect

    @property
    def hash(self) -> str:
        digest = hashlib.sha1(
            (self.site + "\n" + self.request.canonical()).encode()
        ).hexdigest()
        return digest[:12]

    def is_successor(self) -> bool:
        """True when some request field derives from another response."""
        return bool(self.request.dep_atoms())

    def __repr__(self) -> str:
        return "TransactionSignature({}, {} {})".format(
            self.site, self.request.method, self.request.uri.canonical()
        )


class DependencyEdge:
    """Field of ``pred``'s response feeds field of ``succ``'s request."""

    def __init__(
        self,
        pred_site: str,
        pred_path: FieldPath,
        succ_site: str,
        succ_path: FieldPath,
    ) -> None:
        self.pred_site = pred_site
        self.pred_path = pred_path
        self.succ_site = succ_site
        self.succ_path = succ_path

    def key(self) -> Tuple[str, str, str, str]:
        return (
            self.pred_site,
            self.pred_path.to_string(),
            self.succ_site,
            self.succ_path.to_string(),
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, DependencyEdge) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return "DependencyEdge({}:{} -> {}:{})".format(
            self.pred_site,
            self.pred_path.to_string(),
            self.succ_site,
            self.succ_path.to_string(),
        )


class AnalysisResult:
    """Everything the static phase hands to the proxy."""

    def __init__(
        self,
        package: str,
        signatures: List[TransactionSignature],
        dependencies: List[DependencyEdge],
    ) -> None:
        self.package = package
        self.signatures = signatures
        self.dependencies = dependencies
        self._by_site = {s.site: s for s in signatures}

    def signature(self, site: str) -> TransactionSignature:
        return self._by_site[site]

    def sites(self) -> List[str]:
        return [s.site for s in self.signatures]

    def prefetchable(self) -> List[TransactionSignature]:
        """Successor signatures — candidates for prefetching."""
        return [s for s in self.signatures if s.is_successor()]

    def successors_of(self, site: str) -> List[DependencyEdge]:
        return [e for e in self.dependencies if e.pred_site == site]

    def predecessors_of(self, site: str) -> List[DependencyEdge]:
        return [e for e in self.dependencies if e.succ_site == site]

    def max_chain_length(self) -> int:
        """Longest path (in edges + 1 nodes) through the dependency DAG."""
        adjacency: Dict[str, Set[str]] = {}
        for edge in self.dependencies:
            adjacency.setdefault(edge.pred_site, set()).add(edge.succ_site)
        memo: Dict[str, int] = {}
        visiting: Set[str] = set()

        def depth(site: str) -> int:
            if site in memo:
                return memo[site]
            if site in visiting:  # cycle guard (shouldn't happen)
                return 0
            visiting.add(site)
            best = 0
            for nxt in adjacency.get(site, ()):  # noqa: B007
                best = max(best, depth(nxt))
            visiting.discard(site)
            memo[site] = best + 1
            return memo[site]

        if not self._by_site:
            return 0
        return max(depth(site) for site in self._by_site)

    def summary(self) -> Dict[str, int]:
        return {
            "signatures": len(self.signatures),
            "prefetchable": len(self.prefetchable()),
            "dependencies": len(self.dependencies),
            "max_chain": self.max_chain_length(),
        }

    def __repr__(self) -> str:
        return "AnalysisResult({}, {} signatures, {} deps)".format(
            self.package, len(self.signatures), len(self.dependencies)
        )
