"""End-to-end static analysis entry point.

``analyze_apk`` is the one call the rest of the framework uses: it
validates the program, runs the network-aware taint/slicing pass (for
diagnostics and the paper's coverage accounting), abstract-interprets
every entry point, builds signatures, and extracts dependencies.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dependency import extract_dependencies
from repro.analysis.interp import AbstractInterpreter, InterpOptions
from repro.analysis.model import AnalysisResult
from repro.analysis.signatures import build_signatures
from repro.apk.program import ApkFile
from repro.apk.validate import validate_apk


class AnalysisOptions(InterpOptions):
    """Options for the full pipeline (superset of interpreter options)."""

    def __init__(self, run_slicing: bool = True, **kwargs) -> None:
        super().__init__(**kwargs)
        self.run_slicing = run_slicing


def analyze_apk(apk: ApkFile, options: Optional[AnalysisOptions] = None) -> AnalysisResult:
    """Analyze an app binary; returns signatures + dependencies.

    This is phase 1 of the paper's Fig. 4 ("static program analysis":
    network-aware static taint analysis, signature building, dependency
    analysis).
    """
    options = options or AnalysisOptions()
    validate_apk(apk)
    interpreter = AbstractInterpreter(apk, options)
    recorder = interpreter.run()
    signatures = build_signatures(recorder)
    dependencies = extract_dependencies(signatures)
    result = AnalysisResult(apk.package, signatures, dependencies)
    if options.run_slicing:
        # taint/slicing diagnostics: how much of the program feeds each
        # transaction (reported, and exercised by the test suite)
        from repro.analysis.slicing import slice_report

        result.slices = slice_report(apk)
    return result
