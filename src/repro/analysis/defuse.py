"""Control-flow graph and def-use chains over the structured IR.

The slicer (:mod:`repro.analysis.slicing`) needs classic dataflow:
every use of a register is linked to the definitions that may reach it.
Structured ``If``/``ForEach`` blocks are lowered to a conventional CFG
(the ``If``/``ForEach`` instruction itself is the branch node) and
reaching definitions are computed with a worklist.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.apk.ir import Block, ForEach, If, Instruction
from repro.apk.program import Method


class CfgNode:
    """One instruction in the CFG."""

    __slots__ = ("instruction", "successors", "predecessors", "index")

    def __init__(self, instruction: Instruction, index: int) -> None:
        self.instruction = instruction
        self.index = index
        self.successors: List["CfgNode"] = []
        self.predecessors: List["CfgNode"] = []

    def link(self, successor: "CfgNode") -> None:
        if successor not in self.successors:
            self.successors.append(successor)
            successor.predecessors.append(self)

    def __repr__(self) -> str:
        return "CfgNode#{}({!r})".format(self.index, self.instruction)


class Cfg:
    """CFG of one method."""

    def __init__(self, method: Method) -> None:
        self.method = method
        self.nodes: List[CfgNode] = []
        self.entry: Optional[CfgNode] = None
        self._build()

    def _new_node(self, instruction: Instruction) -> CfgNode:
        node = CfgNode(instruction, len(self.nodes))
        self.nodes.append(node)
        return node

    def _build(self) -> None:
        entry, _exits = self._lower_block(self.method.body)
        self.entry = entry

    def _lower_block(
        self, block: Block
    ) -> Tuple[Optional[CfgNode], List[CfgNode]]:
        """Lower a block; returns (entry node, open exit nodes)."""
        entry: Optional[CfgNode] = None
        open_exits: List[CfgNode] = []
        for instruction in block:
            node = self._new_node(instruction)
            if entry is None:
                entry = node
            for exit_node in open_exits:
                exit_node.link(node)
            if isinstance(instruction, If):
                open_exits = []
                for arm in (instruction.then_block, instruction.else_block):
                    arm_entry, arm_exits = self._lower_block(arm)
                    if arm_entry is None:
                        open_exits.append(node)  # empty arm falls through
                    else:
                        node.link(arm_entry)
                        open_exits.extend(arm_exits)
            elif isinstance(instruction, ForEach):
                body_entry, body_exits = self._lower_block(instruction.body)
                if body_entry is not None:
                    node.link(body_entry)
                    for exit_node in body_exits:
                        exit_node.link(node)  # back edge
                open_exits = [node]  # zero-iteration fallthrough
            elif instruction.kind == "return":
                open_exits = []
            else:
                open_exits = [node]
        return entry, open_exits

    def node_of(self, instruction: Instruction) -> CfgNode:
        for node in self.nodes:
            if node.instruction is instruction:
                return node
        raise KeyError("instruction not in CFG: {!r}".format(instruction))


#: a definition: (register, node index); None index = method parameter
Definition = Tuple[str, Optional[int]]


class DefUse:
    """Reaching definitions + def-use chains for one method."""

    def __init__(self, method: Method) -> None:
        self.method = method
        self.cfg = Cfg(method)
        #: node index -> frozenset of reaching Definitions
        self.reach_in: Dict[int, FrozenSet[Definition]] = {}
        self._compute()

    def _compute(self) -> None:
        params: FrozenSet[Definition] = frozenset(
            (name, None) for name in self.method.params
        )
        nodes = self.cfg.nodes
        reach_out: Dict[int, FrozenSet[Definition]] = {
            node.index: frozenset() for node in nodes
        }
        for node in nodes:
            self.reach_in[node.index] = frozenset()
        worklist = list(nodes)
        while worklist:
            node = worklist.pop(0)
            incoming: Set[Definition] = set()
            if node is self.cfg.entry or not node.predecessors:
                incoming |= params
            for predecessor in node.predecessors:
                incoming |= reach_out[predecessor.index]
            incoming_frozen = frozenset(incoming)
            self.reach_in[node.index] = incoming_frozen
            killed = set(node.instruction.defined_registers())
            outgoing = {
                definition
                for definition in incoming_frozen
                if definition[0] not in killed
            }
            outgoing |= {(register, node.index) for register in killed}
            outgoing_frozen = frozenset(outgoing)
            if outgoing_frozen != reach_out[node.index]:
                reach_out[node.index] = outgoing_frozen
                for successor in node.successors:
                    if successor not in worklist:
                        worklist.append(successor)

    def definitions_reaching(self, node: CfgNode, register: str) -> List[Optional[int]]:
        """Node indices (None = parameter) defining ``register`` at ``node``."""
        return sorted(
            (index for name, index in self.reach_in[node.index] if name == register),
            key=lambda value: (-1 if value is None else value),
        )

    def uses_of(self, node: CfgNode) -> Dict[str, List[Optional[int]]]:
        """For each register used by ``node``, its reaching definitions."""
        return {
            register: self.definitions_reaching(node, register)
            for register in node.instruction.used_registers()
        }
