"""Dependency analysis: signatures → inter-transaction dependency edges.

A :class:`~repro.analysis.model.DepAtom` inside a request template says
"this request field is derived from that response field"; here each one
becomes an explicit :class:`~repro.analysis.model.DependencyEdge`, the
unit counted in the paper's Table 3 and consumed by the proxy's
dynamic-learning engine.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.model import DependencyEdge, TransactionSignature


def extract_dependencies(
    signatures: List[TransactionSignature],
) -> List[DependencyEdge]:
    """All distinct dependency edges, in deterministic order."""
    known_sites = {signature.site for signature in signatures}
    edges: List[DependencyEdge] = []
    seen: Set[Tuple[str, str, str, str]] = set()
    for signature in signatures:
        for succ_path, atom in signature.request.dep_atoms():
            if atom.pred_site not in known_sites:
                continue
            edge = DependencyEdge(
                pred_site=atom.pred_site,
                pred_path=atom.pred_path,
                succ_site=signature.site,
                succ_path=succ_path,
            )
            if edge.key() not in seen:
                seen.add(edge.key())
                edges.append(edge)
    return edges


def dependency_chains(edges: List[DependencyEdge]) -> List[List[str]]:
    """All maximal site chains through the dependency DAG.

    Used for the Fig. 11/12 case studies (successive chains and
    single-predecessor fan-out).
    """
    adjacency: Dict[str, List[str]] = {}
    has_predecessor: Set[str] = set()
    sites: Set[str] = set()
    for edge in edges:
        adjacency.setdefault(edge.pred_site, [])
        if edge.succ_site not in adjacency[edge.pred_site]:
            adjacency[edge.pred_site].append(edge.succ_site)
        has_predecessor.add(edge.succ_site)
        sites.add(edge.pred_site)
        sites.add(edge.succ_site)

    roots = sorted(sites - has_predecessor)
    chains: List[List[str]] = []

    def extend(path: List[str]) -> None:
        successors = [s for s in adjacency.get(path[-1], []) if s not in path]
        if not successors:
            chains.append(list(path))
            return
        for successor in successors:
            path.append(successor)
            extend(path)
            path.pop()

    for root in roots:
        extend([root])
    return chains


def fan_out(edges: List[DependencyEdge]) -> Dict[str, int]:
    """Distinct successor count per predecessor site (Fig. 12 shape)."""
    out: Dict[str, Set[str]] = {}
    for edge in edges:
        out.setdefault(edge.pred_site, set()).add(edge.succ_site)
    return {site: len(successors) for site, successors in out.items()}
