"""Abstract value domain for the signature-building interpretation.

The analyzer symbolically executes app entry points.  Every register
holds one of these abstract values; converting request-field values to
:class:`~repro.analysis.model.ValueTemplate` atoms is where constants,
run-time wildcards, and response-derived dependencies get told apart.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.model import ConstAtom, DepAtom, UnknownAtom, ValueTemplate
from repro.httpmsg.fieldpath import ALL, FieldPath

#: (branch_id, arm) pairs identifying the run-time conditions under
#: which a request entry exists.  arm is "then" or "else".
BranchCtx = Tuple[Tuple[str, str], ...]


class AVal:
    """Base abstract value.  Immutable values return ``self`` on clone."""

    def clone(self, memo: dict) -> "AVal":
        return self


class AConst(AVal):
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "AConst({!r})".format(self.value)


class AUnknown(AVal):
    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def __repr__(self) -> str:
        return "AUnknown({})".format(self.tag)


class AConcat(AVal):
    """Concatenation of scalar abstract values."""

    __slots__ = ("parts",)

    def __init__(self, parts: List[AVal]) -> None:
        self.parts = parts

    def __repr__(self) -> str:
        return "AConcat({!r})".format(self.parts)


class AResp(AVal):
    """Handle to the response of transaction ``site``."""

    __slots__ = ("site",)

    def __init__(self, site: str) -> None:
        self.site = site

    def __repr__(self) -> str:
        return "AResp({})".format(self.site)


class ARespJson(AVal):
    """JSON value inside the response of ``site`` at ``path``."""

    __slots__ = ("site", "path")

    def __init__(self, site: str, path: Tuple = ()) -> None:
        self.site = site
        self.path = tuple(path)

    def child(self, part) -> "ARespJson":
        return ARespJson(self.site, self.path + (part,))

    def field_path(self) -> FieldPath:
        return FieldPath("body", self.path)

    def __repr__(self) -> str:
        return "ARespJson({}, {})".format(self.site, self.field_path().to_string())


class ARespHeader(AVal):
    __slots__ = ("site", "name")

    def __init__(self, site: str, name: str) -> None:
        self.site = site
        self.name = name

    def __repr__(self) -> str:
        return "ARespHeader({}, {})".format(self.site, self.name)


class ABlob(AVal):
    """Opaque (image) response body."""

    __slots__ = ("site",)

    def __init__(self, site: str) -> None:
        self.site = site

    def __repr__(self) -> str:
        return "ABlob({})".format(self.site)


class AJson(AVal):
    """App-constructed JSON object (mutable, shared by reference)."""

    def __init__(self, entries: Optional[Dict[str, AVal]] = None) -> None:
        self.entries: Dict[str, AVal] = dict(entries or {})

    def clone(self, memo: dict) -> "AJson":
        if id(self) in memo:
            return memo[id(self)]
        copy = AJson()
        memo[id(self)] = copy
        copy.entries = {k: v.clone(memo) for k, v in self.entries.items()}
        return copy

    def __repr__(self) -> str:
        return "AJson({!r})".format(list(self.entries))


class AList(AVal):
    def __init__(self, items: Optional[List[AVal]] = None) -> None:
        self.items: List[AVal] = list(items or [])

    def clone(self, memo: dict) -> "AList":
        if id(self) in memo:
            return memo[id(self)]
        copy = AList()
        memo[id(self)] = copy
        copy.items = [v.clone(memo) for v in self.items]
        return copy

    def __repr__(self) -> str:
        return "AList({} items)".format(len(self.items))


class AObj(AVal):
    """Heap object (allocation site + mutable fields).

    Aliasing is modelled by Python reference sharing: two registers
    holding the same :class:`AObj` see each other's ``PutField``s —
    which is what the on-demand alias analysis must (and, in the
    ablation, fails to) resolve.
    """

    def __init__(self, class_name: str, site: str) -> None:
        self.class_name = class_name
        self.site = site
        self.fields: Dict[str, AVal] = {}

    def clone(self, memo: dict) -> "AObj":
        if id(self) in memo:
            return memo[id(self)]
        copy = AObj(self.class_name, self.site)
        memo[id(self)] = copy
        copy.fields = {k: v.clone(memo) for k, v in self.fields.items()}
        return copy

    def __repr__(self) -> str:
        return "AObj({}@{})".format(self.class_name, self.site)


class AIntent(AVal):
    """Android Intent: a keyed bag crossing component boundaries."""

    def __init__(self, extras: Optional[Dict[str, AVal]] = None) -> None:
        self.extras: Dict[str, AVal] = dict(extras or {})

    def clone(self, memo: dict) -> "AIntent":
        if id(self) in memo:
            return memo[id(self)]
        copy = AIntent()
        memo[id(self)] = copy
        copy.extras = {k: v.clone(memo) for k, v in self.extras.items()}
        return copy

    def __repr__(self) -> str:
        return "AIntent({!r})".format(list(self.extras))


class AObs(AVal):
    """RxAndroid observable wrapping an abstract upstream value."""

    __slots__ = ("value",)

    def __init__(self, value: AVal) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "AObs({!r})".format(self.value)


class AEntry:
    """A request field entry tagged with the branch context it lives in."""

    __slots__ = ("key", "value", "branch")

    def __init__(self, key: str, value: AVal, branch: BranchCtx) -> None:
        self.key = key
        self.value = value
        self.branch = branch

    def __repr__(self) -> str:
        return "AEntry({}={!r} @{!r})".format(self.key, self.value, self.branch)


class ARequest(AVal):
    """An HTTP request under construction."""

    def __init__(self, method: AVal, url: AVal) -> None:
        self.method = method
        self.url = url
        self.headers: List[AEntry] = []
        self.query: List[AEntry] = []
        self.form: List[AEntry] = []
        self.json_body: Optional[AVal] = None

    def clone(self, memo: dict) -> "ARequest":
        if id(self) in memo:
            return memo[id(self)]
        copy = ARequest(self.method.clone(memo), self.url.clone(memo))
        memo[id(self)] = copy
        copy.headers = [AEntry(e.key, e.value.clone(memo), e.branch) for e in self.headers]
        copy.query = [AEntry(e.key, e.value.clone(memo), e.branch) for e in self.query]
        copy.form = [AEntry(e.key, e.value.clone(memo), e.branch) for e in self.form]
        copy.json_body = self.json_body.clone(memo) if self.json_body else None
        return copy

    def __repr__(self) -> str:
        return "ARequest({!r} {!r})".format(self.method, self.url)


# ----------------------------------------------------------------------
# conversion to signature templates
# ----------------------------------------------------------------------
def to_template(value: AVal) -> ValueTemplate:
    """Convert a scalar abstract value into a :class:`ValueTemplate`."""
    return ValueTemplate(_atoms(value))


def _atoms(value: AVal) -> List:
    if isinstance(value, AConst):
        return [ConstAtom(value.value)]
    if isinstance(value, AUnknown):
        return [UnknownAtom(value.tag)]
    if isinstance(value, ARespJson):
        return [DepAtom(value.site, value.field_path())]
    if isinstance(value, ARespHeader):
        return [DepAtom(value.site, FieldPath("header", (value.name,)))]
    if isinstance(value, AConcat):
        atoms: List = []
        for part in value.parts:
            atoms.extend(_atoms(part))
        # merge adjacent constants for canonical templates
        merged: List = []
        for atom in atoms:
            if (
                merged
                and isinstance(atom, ConstAtom)
                and isinstance(merged[-1], ConstAtom)
            ):
                merged[-1] = ConstAtom(str(merged[-1].value) + str(atom.value))
            else:
                merged.append(atom)
        return merged
    if isinstance(value, AObs):
        return _atoms(value.value)
    # complex values (objects, lists, whole responses) are opaque
    return [UnknownAtom("complex:{}".format(type(value).__name__))]


def concat(left: AVal, right: AVal) -> AVal:
    """Abstract string concatenation with constant folding."""
    if isinstance(left, AConst) and isinstance(right, AConst):
        return AConst(str(left.value) + str(right.value))
    parts: List[AVal] = []
    for piece in (left, right):
        if isinstance(piece, AConcat):
            parts.extend(piece.parts)
        else:
            parts.append(piece)
    return AConcat(parts)


__all__ = [
    "AVal",
    "AConst",
    "AUnknown",
    "AConcat",
    "AResp",
    "ARespJson",
    "ARespHeader",
    "ABlob",
    "AJson",
    "AList",
    "AObj",
    "AIntent",
    "AObs",
    "AEntry",
    "ARequest",
    "BranchCtx",
    "ALL",
    "to_template",
    "concat",
]
