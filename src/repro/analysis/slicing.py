"""Bidirectional program slicing around network I/O.

The paper (§4.1): *"Extractocol performs backward (forward) taint
analysis to identify program slices that contain request (response)
messages from network I/O methods"*, extended with on-demand alias
analysis.  Here:

* :func:`backward_slice` — from an ``Http.execute`` site, every
  instruction whose value may flow into the request: def-use edges,
  heap flows resolved through the points-to relation, call-graph edges
  (arguments ← parameters, returns → call sites), and Intent
  ``putExtra``/``getExtra`` pairs.
* :func:`forward_slice` — from a response register, every instruction
  that consumes a value derived from it.
* :func:`slice_report` — per-site slice sizes, used as an analysis
  diagnostic and asserted on in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.alias import PointsTo
from repro.analysis.defuse import DefUse
from repro.apk.ir import (
    CallMethod,
    Const,
    GetField,
    Instruction,
    Invoke,
    PutField,
    Return,
)
from repro.apk.program import ApkFile, Method

#: slice element: (method qualified name, instruction)
SliceItem = Tuple[str, Instruction]


class SliceContext:
    """Shared per-APK state: def-use per method, alias relation, maps."""

    def __init__(self, apk: ApkFile) -> None:
        self.apk = apk
        self.points_to = PointsTo(apk)
        self._defuse: Dict[str, DefUse] = {}
        self._method_by_name: Dict[str, Method] = {
            method.ref.to_string(): method for method in apk.all_methods()
        }
        # call sites per callee: callee name -> [(caller name, CallMethod)]
        self.call_sites: Dict[str, List[Tuple[str, CallMethod]]] = {}
        # const values per (method, register) for Intent key matching
        self.const_values: Dict[Tuple[str, str], object] = {}
        # Intent put/get sites per key
        self.intent_puts: Dict[str, List[Tuple[str, Invoke]]] = {}
        self.intent_gets: Dict[str, List[Tuple[str, Invoke]]] = {}
        self._index()

    def _index(self) -> None:
        for method in self.apk.all_methods():
            owner = method.ref.to_string()
            for instruction in method.body.walk():
                if isinstance(instruction, Const):
                    self.const_values[(owner, instruction.dst)] = instruction.value
                elif isinstance(instruction, CallMethod):
                    self.call_sites.setdefault(
                        instruction.ref.to_string(), []
                    ).append((owner, instruction))
                elif isinstance(instruction, Invoke):
                    if instruction.api == "Intent.putExtra":
                        key = self.const_values.get((owner, instruction.args[1]))
                        if isinstance(key, str):
                            self.intent_puts.setdefault(key, []).append(
                                (owner, instruction)
                            )
                    elif instruction.api == "Intent.getExtra":
                        key = self.const_values.get((owner, instruction.args[1]))
                        if isinstance(key, str):
                            self.intent_gets.setdefault(key, []).append(
                                (owner, instruction)
                            )

    def defuse(self, method_name: str) -> DefUse:
        if method_name not in self._defuse:
            self._defuse[method_name] = DefUse(self._method_by_name[method_name])
        return self._defuse[method_name]

    def method(self, name: str) -> Method:
        return self._method_by_name[name]


def backward_slice(
    context: SliceContext,
    method_name: str,
    target: Instruction,
    use_alias: bool = True,
    max_items: int = 4000,
) -> Set[SliceItem]:
    """Instructions whose values may flow into ``target``'s operands."""
    sliced: Set[Tuple[str, int]] = set()
    result: Set[SliceItem] = set()
    worklist: List[Tuple[str, Instruction]] = [(method_name, target)]

    while worklist and len(result) < max_items:
        owner, instruction = worklist.pop()
        marker = (owner, id(instruction))
        if marker in sliced:
            continue
        sliced.add(marker)
        result.add((owner, instruction))

        defuse = context.defuse(owner)
        try:
            node = defuse.cfg.node_of(instruction)
        except KeyError:
            continue
        for register, def_indices in defuse.uses_of(node).items():
            for def_index in def_indices:
                if def_index is None:
                    # register is a method parameter: jump to call sites
                    param_position = _param_position(context, owner, register)
                    if param_position is None:
                        continue
                    for caller, call in context.call_sites.get(owner, []):
                        if param_position < len(call.args):
                            worklist.append((caller, call))
                    continue
                definition = defuse.cfg.nodes[def_index].instruction
                worklist.append((owner, definition))
                worklist.extend(_extra_edges(context, owner, definition, use_alias))
    return result


def _param_position(
    context: SliceContext, method_name: str, register: str
) -> Optional[int]:
    params = context.method(method_name).params
    return params.index(register) if register in params else None


def _extra_edges(
    context: SliceContext, owner: str, definition: Instruction, use_alias: bool
) -> List[SliceItem]:
    """Heap, call, and Intent edges out of a defining instruction."""
    edges: List[SliceItem] = []
    if isinstance(definition, GetField) and use_alias:
        for store_owner, store in context.points_to.stores_feeding(
            owner, definition.obj, definition.field
        ):
            edges.append((store_owner, store))
    elif isinstance(definition, CallMethod):
        callee_name = definition.ref.to_string()
        try:
            callee = context.method(callee_name)
        except KeyError:
            return edges
        for instruction in callee.body.walk():
            if isinstance(instruction, Return) and instruction.src:
                edges.append((callee_name, instruction))
    elif isinstance(definition, Invoke) and definition.api == "Intent.getExtra":
        key = context.const_values.get((owner, definition.args[1]))
        if isinstance(key, str):
            edges.extend(context.intent_puts.get(key, []))
    return edges


def forward_slice(
    context: SliceContext,
    method_name: str,
    source: Instruction,
    max_items: int = 4000,
) -> Set[SliceItem]:
    """Instructions consuming values derived from ``source``'s defs."""
    result: Set[SliceItem] = set()
    tainted: Set[Tuple[str, str]] = set()  # (method, register)
    for register in source.defined_registers():
        tainted.add((method_name, register))
    tainted_fields: Set[Tuple[str, str]] = set()  # (object, field) via points-to

    changed = True
    while changed and len(result) < max_items:
        changed = False
        for method in context.apk.all_methods():
            owner = method.ref.to_string()
            for instruction in method.body.walk():
                uses_taint = any(
                    (owner, register) in tainted
                    for register in instruction.used_registers()
                )
                if isinstance(instruction, GetField):
                    receivers = context.points_to.objects_of(owner, instruction.obj)
                    if any((obj, instruction.field) in tainted_fields for obj in receivers):
                        uses_taint = True
                if not uses_taint:
                    continue
                if (owner, instruction) not in result:
                    result.add((owner, instruction))
                    changed = True
                for register in instruction.defined_registers():
                    if (owner, register) not in tainted:
                        tainted.add((owner, register))
                        changed = True
                if isinstance(instruction, PutField):
                    if (owner, instruction.src) in tainted:
                        for obj in context.points_to.objects_of(owner, instruction.obj):
                            if (obj, instruction.field) not in tainted_fields:
                                tainted_fields.add((obj, instruction.field))
                                changed = True
                if isinstance(instruction, CallMethod):
                    callee_name = instruction.ref.to_string()
                    try:
                        callee = context.method(callee_name)
                    except KeyError:
                        continue
                    for param, arg in zip(callee.params, instruction.args):
                        if (owner, arg) in tainted and (callee_name, param) not in tainted:
                            tainted.add((callee_name, param))
                            changed = True
                if isinstance(instruction, Invoke) and instruction.api == "Intent.putExtra":
                    if (owner, instruction.args[2]) in tainted:
                        key = context.const_values.get((owner, instruction.args[1]))
                        if isinstance(key, str):
                            for get_owner, get in context.intent_gets.get(key, []):
                                if get.dst and (get_owner, get.dst) not in tainted:
                                    tainted.add((get_owner, get.dst))
                                    result.add((get_owner, get))
                                    changed = True
    return result


def execute_sites(apk: ApkFile) -> List[Tuple[str, Invoke]]:
    """All ``Http.execute`` call sites: (method name, instruction)."""
    sites: List[Tuple[str, Invoke]] = []
    for method in apk.all_methods():
        owner = method.ref.to_string()
        for instruction in method.body.walk():
            if isinstance(instruction, Invoke) and instruction.api == "Http.execute":
                sites.append((owner, instruction))
    return sites


def slice_report(apk: ApkFile, use_alias: bool = True) -> Dict[str, Dict[str, int]]:
    """Per-execute-site backward/forward slice sizes."""
    context = SliceContext(apk)
    report: Dict[str, Dict[str, int]] = {}
    for index, (owner, site) in enumerate(execute_sites(apk)):
        backward = backward_slice(context, owner, site, use_alias=use_alias)
        forward = forward_slice(context, owner, site)
        report["{}#{}".format(owner, _site_ordinal(apk, owner, site))] = {
            "backward": len(backward),
            "forward": len(forward),
        }
        del index
    return report


def _site_ordinal(apk: ApkFile, owner: str, site: Invoke) -> int:
    ordinal = 0
    for method in apk.all_methods():
        if method.ref.to_string() != owner:
            continue
        for instruction in method.body.walk():
            if isinstance(instruction, Invoke) and instruction.api == "Http.execute":
                if instruction is site:
                    return ordinal
                ordinal += 1
    return ordinal
