"""Static program analysis (the Extractocol++ of the paper, §4.1).

Pipeline (see :func:`repro.analysis.pipeline.analyze_apk`):

1. **Network-aware taint analysis** — :mod:`repro.analysis.defuse`,
   :mod:`repro.analysis.slicing`, :mod:`repro.analysis.alias`: def-use
   chains over the IR, backward slices from every ``Http.execute``
   site (request side) and forward slices from response values, with
   on-demand alias resolution through heap fields.
2. **Signature building** — :mod:`repro.analysis.interp`: abstract
   interpretation of every entry point over the symbolic value domain
   (:mod:`repro.analysis.absval`), reconstructing request templates
   (constants, run-time wildcards, response-derived fields) and
   response access paths, forking on run-time branch conditions to
   enumerate body variants (Fig. 8), flowing values through Intents
   (the Intent map) and RxAndroid operators.
3. **Dependency analysis** — :mod:`repro.analysis.dependency`: turns
   response-derived atoms inside request templates into
   inter-transaction dependency edges, computes chains and fan-out.
"""

from repro.analysis.model import (
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.analysis.pipeline import AnalysisOptions, analyze_apk
from repro.analysis.report import render_report, render_signature
from repro.analysis.serialize import dumps as dump_signatures
from repro.analysis.serialize import loads as load_signatures

__all__ = [
    "dump_signatures",
    "load_signatures",
    "render_report",
    "render_signature",
    "AnalysisOptions",
    "AnalysisResult",
    "ConstAtom",
    "DepAtom",
    "DependencyEdge",
    "RequestTemplate",
    "ResponseTemplate",
    "TransactionSignature",
    "UnknownAtom",
    "ValueTemplate",
    "analyze_apk",
]
