"""Serialization of analysis results.

Fig. 4 shows the framework shipping *signature files* ("Sig.") from the
static-analysis phase to the proxy.  This module is that artifact: a
stable JSON encoding of signatures and dependency edges, so analysis
can run once offline and proxies can load the result at start-up
(`AnalysisResult` → JSON → `AnalysisResult` round-trips exactly).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.model import (
    AltAtom,
    AnalysisResult,
    ConstAtom,
    DepAtom,
    DependencyEdge,
    RequestTemplate,
    ResponseTemplate,
    TransactionSignature,
    UnknownAtom,
    ValueTemplate,
)
from repro.httpmsg.fieldpath import FieldPath

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _atom_to_dict(atom) -> Dict:
    if isinstance(atom, ConstAtom):
        return {"kind": "const", "value": atom.value}
    if isinstance(atom, UnknownAtom):
        return {"kind": "unknown", "tag": atom.tag}
    if isinstance(atom, DepAtom):
        return {
            "kind": "dep",
            "pred_site": atom.pred_site,
            "pred_path": atom.pred_path.to_string(),
        }
    if isinstance(atom, AltAtom):
        return {
            "kind": "alt",
            "options": [_template_to_list(option) for option in atom.options],
        }
    raise TypeError("unknown atom type {!r}".format(atom))


def _template_to_list(template: ValueTemplate) -> List[Dict]:
    return [_atom_to_dict(atom) for atom in template.atoms]


def _signature_to_dict(signature: TransactionSignature) -> Dict:
    request = signature.request
    return {
        "site": signature.site,
        "hash": signature.hash,
        "side_effect": signature.side_effect,
        "request": {
            "method": request.method,
            "uri": _template_to_list(request.uri),
            "body_kind": request.body_kind,
            "fields": [
                {"path": path.to_string(), "template": _template_to_list(template)}
                for path, template in request.fields.items()
            ],
        },
        "response": {
            "body_kind": signature.response.body_kind,
            "paths": sorted(p.to_string() for p in signature.response.paths),
            "headers": sorted(signature.response.headers),
        },
        "variants": [sorted(variant) for variant in signature.variants],
    }


def dumps(result: AnalysisResult, indent: int = 2) -> str:
    """Encode a full analysis result as JSON text."""
    payload = {
        "format": FORMAT_VERSION,
        "package": result.package,
        "signatures": [_signature_to_dict(s) for s in result.signatures],
        "dependencies": [
            {
                "pred_site": e.pred_site,
                "pred_path": e.pred_path.to_string(),
                "succ_site": e.succ_site,
                "succ_path": e.succ_path.to_string(),
            }
            for e in result.dependencies
        ],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _atom_from_dict(data: Dict):
    kind = data["kind"]
    if kind == "const":
        return ConstAtom(data["value"])
    if kind == "unknown":
        return UnknownAtom(data["tag"])
    if kind == "dep":
        return DepAtom(data["pred_site"], FieldPath.parse(data["pred_path"]))
    if kind == "alt":
        return AltAtom([_template_from_list(option) for option in data["options"]])
    raise ValueError("unknown atom kind {!r}".format(kind))


def _template_from_list(data: List[Dict]) -> ValueTemplate:
    return ValueTemplate([_atom_from_dict(atom) for atom in data])


def _signature_from_dict(data: Dict) -> TransactionSignature:
    request_data = data["request"]
    request = RequestTemplate(
        method=request_data["method"],
        uri=_template_from_list(request_data["uri"]),
        fields={
            FieldPath.parse(field["path"]): _template_from_list(field["template"])
            for field in request_data["fields"]
        },
        body_kind=request_data["body_kind"],
    )
    response_data = data["response"]
    response = ResponseTemplate(
        body_kind=response_data["body_kind"],
        paths={FieldPath.parse(p) for p in response_data["paths"]},
        headers=set(response_data["headers"]),
    )
    return TransactionSignature(
        site=data["site"],
        request=request,
        response=response,
        variants=[frozenset(variant) for variant in data["variants"]],
        side_effect=data.get("side_effect", False),
    )


def loads(text: str) -> AnalysisResult:
    """Decode JSON text produced by :func:`dumps`."""
    payload = json.loads(text)
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            "unsupported signature-file format {!r} (expected {})".format(
                version, FORMAT_VERSION
            )
        )
    signatures = [_signature_from_dict(s) for s in payload["signatures"]]
    dependencies = [
        DependencyEdge(
            pred_site=e["pred_site"],
            pred_path=FieldPath.parse(e["pred_path"]),
            succ_site=e["succ_site"],
            succ_path=FieldPath.parse(e["succ_path"]),
        )
        for e in payload["dependencies"]
    ]
    return AnalysisResult(payload["package"], signatures, dependencies)
