"""Human-readable signature reports (the paper's Fig. 5 rendering).

Renders transaction signatures the way the paper presents them: the
URI pattern, per-section request fields with ``.*`` wildcards and
``(a|b)`` alternations, the response paths the app reads, and the
dependency arrows between signatures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.model import AnalysisResult, TransactionSignature


def render_signature(signature: TransactionSignature, width: int = 72) -> str:
    """One signature in Fig. 5's layout."""
    lines: List[str] = []
    lines.append("Signature {} [{}]".format(signature.hash, signature.site))
    if signature.side_effect:
        lines.append("  !! side-effecting: never prefetched")
    lines.append("  URI     {}".format(signature.request.uri.regex()))
    lines.append("  Method  {}".format(signature.request.method))

    sections: Dict[str, List[str]] = {"header": [], "query": [], "body": []}
    for path, template in signature.request.fields.items():
        if path.root not in sections:
            continue
        label = str(path.parts[0]) if path.parts else ""
        rendered = template.regex()
        if template.is_const():
            rendered = str(template.const_value())
        annotations = []
        for atom in template.dep_atoms():  # recurses into alternations
            annotations.append(
                "<- {}:{}".format(atom.pred_site, atom.pred_path.to_string())
            )
        for atom in template.unknown_atoms():
            annotations.append("[{}]".format(atom.tag))
        suffix = "  " + " ".join(annotations) if annotations else ""
        sections[path.root].append("    {}: {}{}".format(label, rendered, suffix))

    for section in ("header", "query", "body"):
        if sections[section]:
            title = {"header": "Header", "query": "Query", "body": "Body"}[section]
            kind = ""
            if section == "body":
                kind = " ({})".format(signature.request.body_kind)
            lines.append("  {}{}".format(title, kind))
            lines.extend(sections[section])

    if signature.response.paths:
        lines.append("  Response ({})".format(signature.response.body_kind))
        for path in sorted(p.to_string() for p in signature.response.paths):
            lines.append("    {}".format(path))
    elif signature.response.body_kind == "blob":
        lines.append("  Response (blob)")

    if len(signature.variants) > 1:
        lines.append("  Variants ({} run-time classes)".format(len(signature.variants)))
        for variant in sorted(signature.variants, key=lambda v: (-len(v), sorted(v))):
            lines.append("    {{{}}}".format(", ".join(sorted(variant))))
    return "\n".join(lines)


def render_report(result: AnalysisResult) -> str:
    """The full analysis as text: signatures then the dependency map."""
    lines: List[str] = []
    summary = result.summary()
    lines.append("Analysis of {}".format(result.package))
    lines.append(
        "{signatures} signatures ({prefetchable} prefetchable), "
        "{dependencies} dependencies, longest chain {max_chain}".format(**summary)
    )
    lines.append("")
    for signature in result.signatures:
        lines.append(render_signature(signature))
        lines.append("")
    lines.append("Dependency map")
    for edge in result.dependencies:
        lines.append(
            "  {}:{}".format(edge.pred_site, edge.pred_path.to_string())
        )
        lines.append(
            "    --> {}:{}".format(edge.succ_site, edge.succ_path.to_string())
        )
    return "\n".join(lines)
