"""Flow-insensitive points-to (alias) analysis.

FlowDroid-style on-demand alias resolution is approximated with a
whole-program Andersen-style pass: abstract objects are allocation
sites (``New``, ``Json.new``, ``List.new``, ``Intent.new``,
``Http.newRequest``, component ``this`` instances); assignments, field
loads/stores, and calls generate inclusion constraints solved to a
fixpoint.  The slicer queries it to resolve ``GetField`` loads to the
``PutField`` stores that may feed them — including through aliases,
which is precisely the case the paper says stock Extractocol loses.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.apk.ir import CallMethod, GetField, Invoke, Move, New, PutField
from repro.apk.program import ApkFile

#: a variable: (method qualified name, register)
Var = Tuple[str, str]
#: an abstract object: a string naming its allocation site
Obj = str

_ALLOC_APIS = {
    "Json.new": "json",
    "List.new": "list",
    "Intent.new": "intent",
    "Http.newRequest": "request",
}


class PointsTo:
    """Solved points-to relation with alias queries."""

    def __init__(self, apk: ApkFile) -> None:
        self.apk = apk
        self.points_to: Dict[Var, Set[Obj]] = {}
        #: (object, field) -> set of objects/values stored
        self.field_points_to: Dict[Tuple[Obj, str], Set[Obj]] = {}
        self._solve()

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        assigns: List[Tuple[Var, Var]] = []  # dst ⊇ src
        loads: List[Tuple[Var, Var, str]] = []  # dst ⊇ obj.field
        stores: List[Tuple[Var, str, Var]] = []  # obj.field ⊇ src
        allocations: List[Tuple[Var, Obj]] = []

        for method in self.apk.all_methods():
            owner = method.ref.to_string()
            instruction_index = 0
            for instruction in method.body.walk():
                instruction_index += 1
                if isinstance(instruction, New):
                    allocations.append(
                        (
                            (owner, instruction.dst),
                            "{}:{}#{}".format(owner, instruction.class_name, instruction_index),
                        )
                    )
                elif isinstance(instruction, Move):
                    assigns.append(((owner, instruction.dst), (owner, instruction.src)))
                elif isinstance(instruction, GetField):
                    loads.append(
                        ((owner, instruction.dst), (owner, instruction.obj), instruction.field)
                    )
                elif isinstance(instruction, PutField):
                    stores.append(
                        ((owner, instruction.obj), instruction.field, (owner, instruction.src))
                    )
                elif isinstance(instruction, Invoke):
                    if instruction.api in _ALLOC_APIS and instruction.dst:
                        allocations.append(
                            (
                                (owner, instruction.dst),
                                "{}:{}#{}".format(
                                    owner, _ALLOC_APIS[instruction.api], instruction_index
                                ),
                            )
                        )
                elif isinstance(instruction, CallMethod):
                    try:
                        callee = self.apk.resolve(instruction.ref)
                    except KeyError:
                        continue
                    callee_name = instruction.ref.to_string()
                    for param, arg in zip(callee.params, instruction.args):
                        assigns.append(((callee_name, param), (owner, arg)))
                    if instruction.dst:
                        for inner in callee.body.walk():
                            if inner.kind == "return" and inner.src:
                                assigns.append(
                                    ((owner, instruction.dst), (callee_name, inner.src))
                                )

        # component `this` instances are singleton objects
        for component in self.apk.components.values():
            obj = "component:{}".format(component.name)
            try:
                start = self.apk.resolve(component.start_ref)
            except KeyError:
                continue
            if start.params:
                allocations.append(((component.start_ref.to_string(), start.params[0]), obj))
            # all screen handlers of this component share the instance
            for screen in self.apk.screens.values():
                if screen.name != component.screen:
                    continue
                for event in screen.events.values():
                    try:
                        handler = self.apk.resolve(event.handler)
                    except KeyError:
                        continue
                    if handler.params:
                        allocations.append(
                            ((event.handler.to_string(), handler.params[0]), obj)
                        )

        pts: Dict[Var, Set[Obj]] = {}
        fpts: Dict[Tuple[Obj, str], Set[Obj]] = {}
        for var, obj in allocations:
            pts.setdefault(var, set()).add(obj)

        changed = True
        while changed:
            changed = False
            for dst, src in assigns:
                source = pts.get(src, set())
                target = pts.setdefault(dst, set())
                if not source <= target:
                    target |= source
                    changed = True
            for obj_var, field, src in stores:
                source = pts.get(src, set())
                for obj in pts.get(obj_var, set()):
                    slot = fpts.setdefault((obj, field), set())
                    if not source <= slot:
                        slot |= source
                        changed = True
            for dst, obj_var, field in loads:
                target = pts.setdefault(dst, set())
                for obj in pts.get(obj_var, set()):
                    source = fpts.get((obj, field), set())
                    if not source <= target:
                        target |= source
                        changed = True

        self.points_to = pts
        self.field_points_to = fpts

    # ------------------------------------------------------------------
    def objects_of(self, method: str, register: str) -> FrozenSet[Obj]:
        return frozenset(self.points_to.get((method, register), set()))

    def may_alias(self, a: Tuple[str, str], b: Tuple[str, str]) -> bool:
        """May the two (method, register) variables point to one object?"""
        return bool(self.objects_of(*a) & self.objects_of(*b))

    def stores_feeding(
        self, method: str, obj_register: str, field: str
    ) -> List[Tuple[str, PutField]]:
        """Every ``PutField`` anywhere that may feed ``obj.field`` here.

        This is the on-demand alias query: loads resolve to stores
        through any alias of the receiver object.
        """
        receivers = self.objects_of(method, obj_register)
        feeding: List[Tuple[str, PutField]] = []
        for candidate in self.apk.all_methods():
            owner = candidate.ref.to_string()
            for instruction in candidate.body.walk():
                if (
                    isinstance(instruction, PutField)
                    and instruction.field == field
                    and self.objects_of(owner, instruction.obj) & receivers
                ):
                    feeding.append((owner, instruction))
        return feeding
