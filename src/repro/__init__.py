"""APPx reproduction: automated app-acceleration proxy framework.

This package reimplements the system described in "APPx: An Automated
App Acceleration Framework for Low Latency Mobile App" (CoNEXT 2018):

* :mod:`repro.apk` — a mini Android-app intermediate representation that
  both the static analyzer and the device runtime consume.
* :mod:`repro.analysis` — network-aware static taint analysis producing
  message signatures and inter-transaction dependencies.
* :mod:`repro.httpmsg` — the HTTP request/response substrate.
* :mod:`repro.netsim` — a discrete-event network simulator.
* :mod:`repro.server` — origin-server backends for the evaluated apps.
* :mod:`repro.device` — client-device runtime, UI fuzzing, user traces.
* :mod:`repro.proxy` — the acceleration proxy: dynamic learning,
  prefetching, verification, configuration.
* :mod:`repro.apps` — the five synthetic commercial app programs.
* :mod:`repro.metrics` — latency and data-usage measurement.
* :mod:`repro.experiments` — harnesses reproducing every table/figure.
"""

__version__ = "1.0.0"
