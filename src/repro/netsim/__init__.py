"""Discrete-event network simulator.

A small generator-based process simulator (in the style of SimPy) plus
network primitives:

* :class:`Simulator` — event loop with a virtual clock.
* :class:`Event` / :class:`Process` — synchronization primitives;
  processes are generators that ``yield`` delays or events.
* :class:`Link` — point-to-point link with RTT and bandwidth; transfer
  time is propagation (RTT/2) plus serialization (bytes / bandwidth).
* :class:`DirectTransport` / higher layers wire a client to origin
  servers, optionally through the acceleration proxy.

All times are in seconds; all sizes in bytes.
"""

from repro.netsim.sim import Simulator, Event, Process, Delay, Timeout
from repro.netsim.link import Link
from repro.netsim.transport import (
    Endpoint,
    Transport,
    DirectTransport,
    OriginMap,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Delay",
    "Timeout",
    "Link",
    "Endpoint",
    "Transport",
    "DirectTransport",
    "OriginMap",
]
