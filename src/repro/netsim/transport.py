"""Transports: how a client reaches origin servers.

An :class:`Endpoint` is anything that can answer a request inside the
simulation (origin servers do, and so does the acceleration proxy).
A :class:`Transport` is the client's view of the network: ``send`` is a
process that yields the response.

:class:`DirectTransport` is the no-proxy baseline ("Orig" in the
paper's figures): the client talks to each origin over its own link
whose latency is the concatenation of the access link and the origin's
RTT.  The proxied topology lives in :mod:`repro.proxy.proxy`.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.httpmsg.message import Request, Response
from repro.netsim.link import Link
from repro.netsim.sim import Delay, Simulator


class Endpoint:
    """Anything that answers requests (a process per request)."""

    def handle(self, request: Request, user: str) -> Generator:
        """Process yielding sim primitives; returns a :class:`Response`."""
        raise NotImplementedError


class OriginMap:
    """Route requests to origin endpoints by URI origin, with links.

    Each origin has its own :class:`Link` (its RTT from whoever holds
    this map — the client in the direct topology, the proxy in the
    proxied one).
    """

    def __init__(self) -> None:
        self._endpoints: Dict[str, Endpoint] = {}
        self._links: Dict[str, Link] = {}
        self._default_link = Link(rtt=0.1)

    def register(self, origin: str, endpoint: Endpoint, link: Link) -> None:
        self._endpoints[origin] = endpoint
        self._links[origin] = link

    def endpoint_for(self, request: Request) -> Optional[Endpoint]:
        return self._endpoints.get(request.uri.origin())

    def link_for(self, request: Request) -> Link:
        return self._links.get(request.uri.origin(), self._default_link)

    def origins(self) -> Dict[str, Endpoint]:
        return dict(self._endpoints)


class Transport:
    """Client-side request interface."""

    def send(self, request: Request, user: str) -> Generator:
        """Process returning the :class:`Response`."""
        raise NotImplementedError


class UnknownOriginError(Exception):
    """No endpoint registered for the request's origin."""


class DirectTransport(Transport):
    """Client ↔ origin with no proxy in between.

    The effective one-way latency is access-link latency plus the
    origin link latency (the path the packets would take through the
    Internet to the origin).
    """

    def __init__(
        self,
        sim: Simulator,
        access_link: Link,
        origins: OriginMap,
        on_transfer: Optional[Callable[[Request, Response], None]] = None,
    ) -> None:
        self.sim = sim
        self.access_link = access_link
        self.origins = origins
        self.on_transfer = on_transfer

    def send(self, request: Request, user: str) -> Generator:
        endpoint = self.origins.endpoint_for(request)
        if endpoint is None:
            raise UnknownOriginError(request.uri.origin())
        origin_link = self.origins.link_for(request)
        request_size = request.wire_size()
        yield Delay(self.access_link.transfer_delay(self.sim.now, request_size))
        yield Delay(origin_link.transfer_delay(self.sim.now, request_size))
        response = yield self.sim.spawn(endpoint.handle(request, user))
        response_size = response.wire_size()
        yield Delay(origin_link.transfer_delay(self.sim.now, response_size))
        yield Delay(self.access_link.transfer_delay(self.sim.now, response_size))
        if self.on_transfer is not None:
            self.on_transfer(request, response)
        return response
