"""Generator-based discrete-event simulation core.

A *process* is a generator.  Each ``yield`` hands the simulator one of:

* :class:`Delay` — resume after a fixed virtual-time interval;
* :class:`Event` — resume when the event is triggered (with its value);
* :class:`Process` — resume when the child process finishes (with its
  return value), so ``response = yield self.sim.spawn(child())`` works.

``return value`` inside a process delivers ``value`` to whoever waits
on it.  The scheduler is deterministic: ties in time break by
scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple


class Delay:
    """Yielded by a process to sleep for ``seconds`` of virtual time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative delay: {}".format(seconds))
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        return "Delay({})".format(self.seconds)


class Event:
    """One-shot event; processes wait on it, someone triggers it."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.is_error = False
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.sim.schedule(0.0, process._resume, value, False)
        self._waiters = []

    def fail(self, error: BaseException) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = error
        self.is_error = True
        for process in self._waiters:
            self.sim.schedule(0.0, process._resume, error, True)
        self._waiters = []

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.sim.schedule(0.0, process._resume, self.value, self.is_error)
        else:
            self._waiters.append(process)


class Process(Event):
    """A running generator; also an event that fires on completion."""

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self._generator = generator
        self.alive = True

    def _start(self) -> None:
        if not self.alive:
            return
        self._step(lambda: next(self._generator))

    def _resume(self, value: Any, is_error: bool) -> None:
        if not self.alive:
            return
        if is_error:
            self._step(lambda: self._generator.throw(value))
        else:
            self._step(lambda: self._generator.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            yielded = advance()
        except StopIteration as stop:
            self.alive = False
            self.succeed(getattr(stop, "value", None))
            return
        except Exception as error:
            self.alive = False
            self.fail(error)
            return
        if isinstance(yielded, Delay):
            self.sim.schedule(yielded.seconds, self._resume, None, False)
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        else:
            self.alive = False
            self.fail(
                TypeError("process yielded {!r}; expected Delay/Event".format(yielded))
            )

    def interrupt(self) -> None:
        """Stop the process; it never resumes and never completes."""
        self.alive = False
        self._generator.close()


class Timeout(Event):
    """Event that fires after a fixed interval (composable wait)."""

    def __init__(self, sim: "Simulator", seconds: float) -> None:
        super().__init__(sim)
        sim.schedule(seconds, self._fire)

    def _fire(self) -> None:
        if not self.triggered:
            self.succeed(None)


class Simulator:
    """Deterministic discrete-event loop with a virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, callback, args))

    def spawn(self, generator: Generator) -> Process:
        """Start a process now; returns its completion event."""
        process = Process(self, generator)
        self.schedule(0.0, process._start)
        return process

    def event(self) -> Event:
        return Event(self)

    def timeout(self, seconds: float) -> Timeout:
        return Timeout(self, seconds)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``)."""
        while self._queue:
            when, _, callback, args = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback(*args)
        return self._now

    def run_process(self, generator: Generator) -> Any:
        """Spawn ``generator``, run to completion, return its value."""
        process = self.spawn(generator)
        self.run()
        if not process.triggered:
            raise RuntimeError("process did not complete (deadlock?)")
        if process.is_error:
            raise process.value
        return process.value
