"""Generator-based discrete-event simulation core.

A *process* is a generator.  Each ``yield`` hands the simulator one of:

* :class:`Delay` — resume after a fixed virtual-time interval;
* :class:`Event` — resume when the event is triggered (with its value);
* :class:`Process` — resume when the child process finishes (with its
  return value), so ``response = yield self.sim.spawn(child())`` works.

``return value`` inside a process delivers ``value`` to whoever waits
on it.  The scheduler is deterministic: ties in time break by
scheduling order.

Fast path
---------
The hot loop avoids the heap for the dominant event class.  Almost
every scheduling operation is zero-delay — process starts, event
triggers, resumes after a child completes — and those land on a FIFO
ring (:attr:`Simulator._ready`) instead of the time heap, turning two
``O(log n)`` heap operations into ``O(1)`` appends/pops.  Entries on
both structures carry ``(time, sequence)`` so the merged pop order is
*exactly* the order the pure-heap scheduler would produce.

On top of that, ``yield sim.spawn(child)`` takes an inline-completion
fast path: when the parent suspends on a child whose queued start is
the next runnable entry (the common case for ``origin_fetch`` →
``endpoint.handle`` chains), the child's first step runs inline —
exactly the entry the scheduler would pop next, minus the queue
round-trip — and when the child finishes without blocking, its
completion value is already latched by the time the parent registers
as a waiter.

``Simulator(fast_path=False)`` disables both optimizations and runs
the original heap-only loop — kept as the differential oracle
(``tests/test_sim_fast_path.py`` replays full workloads in both modes
and asserts identical outcomes).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.metrics.perf import PERF

#: bound on nested inline spawn chains (flow → launch → transport →
#: origin handler ...); deeper chains fall back to the ready ring
_MAX_INLINE_DEPTH = 64


class Delay:
    """Yielded by a process to sleep for ``seconds`` of virtual time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative delay: {}".format(seconds))
        self.seconds = float(seconds)

    def __repr__(self) -> str:
        return "Delay({})".format(self.seconds)


class Event:
    """One-shot event; processes wait on it, someone triggers it."""

    __slots__ = ("sim", "triggered", "value", "is_error", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.is_error = False
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.sim.schedule(0.0, process._resume, value, False)
        self._waiters = []

    def fail(self, error: BaseException) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = error
        self.is_error = True
        for process in self._waiters:
            self.sim.schedule(0.0, process._resume, error, True)
        self._waiters = []

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.sim.schedule(0.0, process._resume, self.value, self.is_error)
        else:
            self._waiters.append(process)


class Process(Event):
    """A running generator; also an event that fires on completion."""

    __slots__ = ("_generator", "alive")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self._generator = generator
        self.alive = True

    def _start(self) -> None:
        if self.alive:
            self._advance(None, False)

    def _resume(self, value: Any, is_error: bool) -> None:
        if self.alive:
            self._advance(value, is_error)

    def _advance(self, value: Any, is_error: bool) -> None:
        """Run one step of the generator (no per-step closures)."""
        generator = self._generator
        try:
            if is_error:
                yielded = generator.throw(value)
            else:
                # send(None) on a fresh generator == next(generator)
                yielded = generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.succeed(stop.value)
            return
        except Exception as error:
            self.alive = False
            self.fail(error)
            return
        if yielded.__class__ is Delay:
            self.sim.schedule(yielded.seconds, self._resume, None, False)
        elif isinstance(yielded, Event):
            if yielded.__class__ is Process and not yielded.triggered:
                self.sim._inline_start(yielded)
            yielded._add_waiter(self)
        else:
            self.alive = False
            self.fail(
                TypeError("process yielded {!r}; expected Delay/Event".format(yielded))
            )

    def interrupt(self) -> None:
        """Stop the process; it never resumes and never completes."""
        self.alive = False
        self._generator.close()


class Timeout(Event):
    """Event that fires after a fixed interval (composable wait)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", seconds: float) -> None:
        super().__init__(sim)
        sim.schedule(seconds, self._fire)

    def _fire(self) -> None:
        if not self.triggered:
            self.succeed(None)


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    ``fast_path=False`` reverts to the heap-only scheduler (the
    differential oracle); the default fast path is observationally
    identical — same callback order, same virtual timestamps.
    """

    #: process-wide default for ``Simulator()`` — tests flip this to
    #: run whole experiment pipelines under the compat scheduler
    default_fast_path = True

    def __init__(self, fast_path: Optional[bool] = None) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        #: zero-delay FIFO ring; entries are (time, seq, callback, args)
        self._ready: "deque[Tuple[float, int, Callable, tuple]]" = deque()
        self.fast_path = (
            Simulator.default_fast_path if fast_path is None else fast_path
        )
        self._inline_depth = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._sequence += 1
        if delay == 0.0 and self.fast_path:
            self._ready.append((self._now, self._sequence, callback, args))
        else:
            heapq.heappush(
                self._queue, (self._now + delay, self._sequence, callback, args)
            )

    def spawn(self, generator: Generator) -> Process:
        """Start a process now; returns its completion event."""
        process = Process(self, generator)
        self.schedule(0.0, process._start)
        return process

    def _inline_start(self, process: Process) -> None:
        """Inline-completion fast path for ``yield sim.spawn(child)``.

        Called as the parent suspends on a not-yet-started child.  When
        the child's queued start entry is the next runnable entry —
        head of the ready ring with no earlier heap entry — the
        scheduler would pop it the moment the parent's step returns, so
        running it here is observationally identical and skips the
        queue round-trip.  Nested ``spawn`` chains inline recursively
        up to ``_MAX_INLINE_DEPTH``.
        """
        if not self.fast_path or self._inline_depth >= _MAX_INLINE_DEPTH:
            return
        ready = self._ready
        if not ready:
            return
        head = ready[0]
        callback = head[2]
        if getattr(callback, "__self__", None) is not process:
            return
        queue = self._queue
        if queue and (queue[0][0], queue[0][1]) <= (head[0], head[1]):
            return
        ready.popleft()
        if PERF.enabled:
            PERF.incr("sim.inline_starts")
        self._inline_depth += 1
        try:
            process._start()
        finally:
            self._inline_depth -= 1

    def event(self) -> Event:
        return Event(self)

    def timeout(self, seconds: float) -> Timeout:
        return Timeout(self, seconds)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``)."""
        ready = self._ready
        queue = self._queue
        perf = PERF
        while ready or queue:
            # The next entry is the earliest (time, seq) across both
            # structures; ready entries were scheduled at their recorded
            # time, so the merged order matches the pure-heap scheduler.
            if ready and (
                not queue or (queue[0][0], queue[0][1]) > (ready[0][0], ready[0][1])
            ):
                when = ready[0][0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                _, _, callback, args = ready.popleft()
            else:
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                _, _, callback, args = heapq.heappop(queue)
            self._now = when
            if perf.enabled:
                perf.incr("sim.events")
            callback(*args)
        return self._now

    def run_process(self, generator: Generator) -> Any:
        """Spawn ``generator``, run to completion, return its value."""
        process = self.spawn(generator)
        self.run()
        if not process.triggered:
            raise RuntimeError("process did not complete (deadlock?)")
        if process.is_error:
            raise process.value
        return process.value
