"""Point-to-point links with RTT and bandwidth."""

from __future__ import annotations


class Link:
    """A symmetric link characterized by round-trip time and bandwidth.

    One-way transfer time for ``size`` bytes is::

        rtt/2 + size * 8 / bandwidth_bps

    Transfers do not contend (each message sees the full bandwidth),
    matching the paper's setup where parallel prefetch requests ride
    separate HTTP connections.
    """

    def __init__(
        self,
        rtt: float,
        bandwidth_bps: float = 25e6,
        name: str = "",
        shared: bool = False,
    ) -> None:
        if rtt < 0:
            raise ValueError("negative RTT")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.rtt = float(rtt)
        self.bandwidth_bps = float(bandwidth_bps)
        self.name = name
        #: shared links serialize transfers through one bottleneck
        #: (an access link); unshared links give each flow the full
        #: bandwidth (wide Internet paths)
        self.shared = shared
        self._busy_until = 0.0

    def one_way(self, size_bytes: int) -> float:
        """Seconds to move ``size_bytes`` one way, ignoring contention."""
        if size_bytes < 0:
            raise ValueError("negative size")
        return self.rtt / 2.0 + size_bytes * 8.0 / self.bandwidth_bps

    def transfer_delay(self, now: float, size_bytes: int) -> float:
        """One-way delay starting at ``now``, honoring contention.

        On a shared link the serialization of concurrent transfers
        queues behind one bottleneck; on an unshared link this equals
        :meth:`one_way`.
        """
        if size_bytes < 0:
            raise ValueError("negative size")
        serialization = size_bytes * 8.0 / self.bandwidth_bps
        if not self.shared:
            return self.rtt / 2.0 + serialization
        start = max(now, self._busy_until)
        self._busy_until = start + serialization
        return (start + serialization + self.rtt / 2.0) - now

    def reset(self) -> None:
        """Forget queued state (fresh link for a new run)."""
        self._busy_until = 0.0

    def round_trip(self, request_bytes: int, response_bytes: int) -> float:
        return self.one_way(request_bytes) + self.one_way(response_bytes)

    def __repr__(self) -> str:
        return "Link(rtt={:.3f}s, bw={:.0f}bps{})".format(
            self.rtt,
            self.bandwidth_bps,
            ", name={!r}".format(self.name) if self.name else "",
        )
