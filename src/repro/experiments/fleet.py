"""Multi-process sharded proxy fleet (``python -m repro scale --workers N``).

:mod:`repro.experiments.scale` measures the serving core one process at
a time; real deployments scale *out* — N proxy processes, each owning a
disjoint slice of the user population.  This module is that fleet:

* **Consistent-hash sharding** — users map onto workers through a
  blake2b hash ring with virtual nodes (:class:`ConsistentHashRing`),
  so growing the fleet from N to N+1 workers remaps only ~1/(N+1) of
  the users instead of reshuffling everyone.  Python's builtin
  ``hash()`` is salted per process and useless here; blake2b keys are
  stable across processes and runs.

* **One global arrival schedule, partitioned per shard** — the
  supervisor pre-draws the full open-loop Poisson process with the run
  seed (:func:`~repro.experiments.scale.build_arrival_schedule`), then
  splits it by owning shard while accumulating inter-arrival deltas
  (:func:`partition_schedule`).  Every worker replays exactly the
  arrival instants the single-process harness would have produced:
  sharding changes *where* a user is served, never *when*.  With
  ``--workers 1`` the partition is the identity, which makes the fleet
  byte-equivalent to the serial path — the differential oracle
  ``tests/test_experiments_fleet.py`` pins.

* **Batched fold-back** — each worker sends ONE message when its serve
  phase ends: its metrics row, its full
  :meth:`~repro.metrics.registry.MetricRegistry.snapshot`, and its
  trace ring.  The supervisor folds the registries with
  :meth:`~repro.metrics.registry.MetricRegistry.merge`, absorbs the
  trace rings with :meth:`~repro.metrics.trace.Tracer.absorb`, and
  recomputes the aggregate row with the same helpers the serial
  harness uses — one registry snapshot out, regardless of N.

* **Failure containment** — a supervisor-side monitor aborts the start
  barrier the moment a worker dies before serving, queued error
  payloads surface the worker's traceback, and a join deadline catches
  hung workers; every path raises :class:`FleetWorkerError` naming the
  failed shard's user slice instead of deadlocking the run.

Workers synchronize on a barrier *after* building their deployments,
so the measured fleet wall clock covers serving plus fold-back IPC —
the honest denominator for the scale-out gate in
``benchmarks/test_perf_scale.py`` (≥1.8x requests/wall-s at 4 workers).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.cache import ENV_ENABLE
from repro.experiments.parallel import init_worker_env
from repro.experiments.scale import (
    DEFAULT_APPS,
    DEFAULT_RATE_PER_USER,
    ArrivalSchedule,
    _ScaleDeployment,
    build_arrival_schedule,
    miss_causes_from_counters,
    run_scale,
    stage_latency_from_registry,
)
from repro.metrics.live import LiveWindows, standard_readings
from repro.metrics.perf import PERF
from repro.metrics.registry import MetricRegistry
from repro.metrics.slo import SloEngine
from repro.metrics.stats import percentile
from repro.metrics.trace import TRACER

#: virtual nodes per shard on the hash ring — enough that the largest
#: shard stays within a few percent of the mean at fleet sizes ≤ 16
DEFAULT_REPLICAS = 64
DEFAULT_WORKER_TIMEOUT_S = 300.0


# ======================================================================
# consistent-hash user sharding
# ======================================================================
def _hash64(key: str) -> int:
    """Stable 64-bit hash (blake2b) — identical in every process."""
    return int.from_bytes(blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Classic consistent-hash ring over ``shards`` with virtual nodes.

    Each shard owns ``replicas`` points on a 64-bit ring; a key belongs
    to the shard owning the first point clockwise of the key's hash.
    Adding one shard therefore steals roughly ``1/(N+1)`` of the keys
    from the existing N instead of remapping everything — the property
    ``tests/test_experiments_fleet.py`` asserts.
    """

    __slots__ = ("shards", "replicas", "_points", "_owners")

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_hash64("shard:{}:vnode:{}".format(shard, replica)), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key: str) -> int:
        index = bisect_right(self._points, _hash64(key)) % len(self._points)
        return self._owners[index]


def shard_users(
    users: int, workers: int, replicas: int = DEFAULT_REPLICAS
) -> List[int]:
    """``assignment[user_index] -> shard`` for the whole population."""
    if workers == 1:
        return [0] * users
    ring = ConsistentHashRing(workers, replicas)
    return [ring.shard_for("u{}".format(index)) for index in range(users)]


def shard_seed(seed: int, shard: int) -> int:
    """Derive a per-shard RNG stream from the run seed, stably."""
    return _hash64("seed:{}:shard:{}".format(seed, shard))


def partition_schedule(
    schedule: ArrivalSchedule, assignment: Sequence[int], workers: int
) -> List[ArrivalSchedule]:
    """Split one global arrival schedule into per-shard schedules.

    Each event's delta is re-expressed relative to the previous event
    *of the same shard* by accumulating the deltas of events routed
    elsewhere, so replaying a shard's schedule reproduces its users'
    global arrival instants exactly (same left-fold float additions).
    Each shard's terminal delta carries it to the same final instant as
    the global schedule, keeping per-worker simulated horizons equal.
    For one worker this is the identity partition — delta for delta the
    input schedule, which is what makes ``--workers 1`` byte-equivalent
    to the serial path.
    """
    events: List[List[Tuple[float, int, Optional[int]]]] = [[] for _ in range(workers)]
    pending = [0.0] * workers
    for dt, user_index, first_position in schedule.events:
        for shard in range(workers):
            pending[shard] = pending[shard] + dt
        shard = assignment[user_index]
        events[shard].append((pending[shard], user_index, first_position))
        pending[shard] = 0.0
    return [
        ArrivalSchedule(
            events[shard],
            pending[shard] + schedule.terminal_dt,
            schedule.users,
            schedule.duration,
            schedule.rate_per_user,
            schedule.seed,
        )
        for shard in range(workers)
    ]


# ======================================================================
# failure surface
# ======================================================================
class FleetWorkerError(RuntimeError):
    """A fleet worker crashed, raised, or hung; names the failed shards."""

    def __init__(self, message: str, shards: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.shards = tuple(shards)


def _shard_members(assignment: Sequence[int], workers: int) -> List[List[int]]:
    members: List[List[int]] = [[] for _ in range(workers)]
    for user_index, shard in enumerate(assignment):
        members[shard].append(user_index)
    return members


def _describe_shard(shard: int, members: Sequence[int]) -> str:
    """``shard 2 (13 users: u2,u5,u9,…)`` — the slice a failure took out."""
    if not members:
        return "shard {} (0 users)".format(shard)
    shown = ",".join("u{}".format(user) for user in members[:5])
    suffix = ",…" if len(members) > 5 else ""
    return "shard {} ({} users: {}{})".format(shard, len(members), shown, suffix)


# ======================================================================
# worker process
# ======================================================================
def _fleet_worker(spec: Dict[str, object], barrier, results) -> None:
    """One shard's serve loop: build, sync, serve, send ONE payload.

    Any exception lands on the result queue as an ``("error", shard,
    traceback)`` message and aborts the barrier so the supervisor wakes
    immediately instead of sleeping out its timeout.  ``inject_failure``
    is the robustness-test hook: ``crash`` dies silently (no message at
    all), ``raise`` fails with a traceback, ``hang`` sleeps through the
    supervisor's deadline.
    """
    shard = int(spec["shard"])
    try:
        failure = spec.get("inject_failure") or {}
        mode = failure.get("mode") if failure.get("shard") == shard else None
        if mode == "crash":
            os._exit(3)
        if mode == "raise":
            raise RuntimeError("injected failure on shard {}".format(shard))
        init_worker_env(spec.get("cache_env"))
        deployment = _ScaleDeployment(tuple(spec["apps"]), **spec["deploy_kwargs"])
        schedule = ArrivalSchedule(
            spec["events"],
            spec["terminal_dt"],
            spec["users"],
            spec["duration"],
            spec["rate_per_user"],
            spec["seed"],
        )
        if mode == "hang":
            # repro-lint: disable=det-wall-clock -- robustness-test hook: the injected hang must outlast the supervisor's real deadline, so a host sleep is the point
            time.sleep(3600.0)
        try:
            barrier.wait(spec["worker_timeout"])
        except threading.BrokenBarrierError:
            # another worker failed (it aborted the barrier) or the
            # supervisor timed the startup out — this worker is only a
            # secondary victim: exit clean so diagnosis blames the
            # shard that actually broke, not this one
            raise SystemExit(0)
        heartbeat_interval = spec.get("heartbeat_interval")
        heartbeat_sink = None
        if heartbeat_interval is not None:
            # heartbeats piggyback on the one existing supervisor
            # channel: compact ("hb", shard, payload) messages between
            # the serve start and the final ("ok", shard, payload)
            def heartbeat_sink(payload):
                results.put(("hb", shard, payload))

        row = run_scale(
            users=int(spec["users"]),
            duration=float(spec["duration"]),
            apps=tuple(spec["apps"]),
            rate_per_user=float(spec["rate_per_user"]),
            seed=int(spec["seed"]),
            access_rtt=float(spec["access_rtt"]),
            trace_sample=spec["trace_sample"],
            trace_seed=int(spec["trace_seed"]),
            trace_capacity=int(spec["trace_capacity"]),
            estimate_expiration=bool(spec["estimate_expiration"]),
            warm_start=bool(spec["warm_start"]),
            arrival_schedule=schedule,
            collect_latencies=True,
            telemetry=bool(spec.get("telemetry")),
            slo_config=spec.get("slo_config"),
            heartbeat_interval=heartbeat_interval,
            heartbeat_sink=heartbeat_sink,
            shard=shard,
            backpressure=bool(spec.get("backpressure", True)),
            _deployment=deployment,
            **spec["deploy_kwargs"],
        )
        payload = {
            "row": row,
            "registry": PERF.registry.snapshot(),
            "trace_records": TRACER.records() if spec["trace_sample"] is not None else [],
        }
        results.put(("ok", shard, payload))
    except BaseException as error:
        if isinstance(error, SystemExit) and error.code == 0:
            raise
        try:
            results.put(("error", shard, traceback.format_exc()))
        finally:
            try:
                barrier.abort()
            except Exception:
                pass
        raise SystemExit(1)


# ======================================================================
# supervisor
# ======================================================================
class HeartbeatTracker:
    """Supervisor-side fleet liveness state, fed by ``hb`` messages.

    Each heartbeat carries one shard's virtual clock, completed-request
    count, learn-queue depth, and windowed readings.  The tracker keeps
    the latest per shard, measures **skew** (the spread between the
    fastest and slowest shard's virtual clocks whenever every shard has
    reported), and flags **lagging** shards — a shard whose virtual
    clock trails the leader by more than ``lag_factor`` heartbeat
    intervals, or that has never heartbeated while the leader has sent
    several.  That surfaces a stuck worker *while serving*, long before
    the supervisor's ``worker_timeout`` turns it into a
    :class:`FleetWorkerError`.
    """

    def __init__(
        self,
        workers: int,
        interval_s: float,
        log=None,
        lag_factor: float = 2.0,
    ) -> None:
        self.workers = workers
        self.interval_s = interval_s
        self.log = log
        self.lag_factor = lag_factor
        self.per_shard: Dict[int, Dict[str, object]] = {}
        self.received = 0
        self.max_skew_s = 0.0
        self.lagging: set = set()

    def record(self, shard: int, payload: Dict[str, object]) -> None:
        entry = self.per_shard.setdefault(shard, {"count": 0})
        entry["count"] = int(entry["count"]) + 1
        entry["sim_now"] = payload.get("sim_now")
        entry["requests"] = payload.get("requests")
        entry["queue_depth"] = payload.get("queue_depth")
        entry["alerts"] = payload.get("alerts")
        entry["readings"] = payload.get("readings")
        self.received += 1
        self._update_lag()
        if self.log is not None:
            self.log(shard, payload, self)

    def _update_lag(self) -> None:
        clocks = {
            shard: float(entry["sim_now"])
            for shard, entry in self.per_shard.items()
            if entry.get("sim_now") is not None
        }
        if not clocks:
            return
        lead = max(clocks.values())
        if len(clocks) == self.workers and len(clocks) > 1:
            skew = lead - min(clocks.values())
            if skew > self.max_skew_s:
                self.max_skew_s = skew
        # recomputed from the current clocks, never latched: a shard
        # that trailed transiently (host scheduling, not a stuck
        # worker) drops off the list as soon as it catches back up
        threshold = self.lag_factor * self.interval_s
        lagging: set = set()
        for shard in range(self.workers):
            clock = clocks.get(shard)
            if clock is not None and lead - clock > threshold:
                lagging.add(shard)
            elif clock is None and lead > threshold:
                # never heartbeated while the leader moved well past
                # the first interval: silent from the start
                lagging.add(shard)
        self.lagging = lagging

    def summary(self) -> Dict[str, object]:
        return {
            "interval_s": self.interval_s,
            "received": self.received,
            "max_skew_s": self.max_skew_s,
            "lagging_shards": sorted(self.lagging),
            "per_shard": [
                self.per_shard.get(shard) for shard in range(self.workers)
            ],
        }


def _drain_queue(
    results,
    collected: Dict[int, Dict],
    errors: Dict[int, str],
    heartbeats: Optional[HeartbeatTracker] = None,
) -> None:
    """Pull whatever the result queue has right now (post-failure sweep)."""
    while True:
        try:
            kind, shard, payload = results.get(timeout=0.2)
        except queue_module.Empty:
            return
        if kind == "ok":
            collected[shard] = payload
        elif kind == "hb":
            if heartbeats is not None:
                heartbeats.record(shard, payload)
        else:
            errors[shard] = payload


def _raise_worker_failure(
    errors: Dict[int, str],
    procs: Sequence,
    collected: Dict[int, Dict],
    members: Sequence[Sequence[int]],
    phase: str,
) -> None:
    """Turn whatever failure evidence exists into one FleetWorkerError."""
    if errors:
        shard = min(errors)
        raise FleetWorkerError(
            "fleet worker failed during {}: {} — worker traceback:\n{}".format(
                phase, _describe_shard(shard, members[shard]), errors[shard]
            ),
            shards=sorted(errors),
        )
    crashed = [
        shard
        for shard, proc in enumerate(procs)
        if shard not in collected and proc.exitcode not in (None, 0)
    ]
    if crashed:
        raise FleetWorkerError(
            "fleet worker crashed during {} (exitcode {}): {}".format(
                phase,
                procs[crashed[0]].exitcode,
                "; ".join(_describe_shard(s, members[s]) for s in crashed),
            ),
            shards=crashed,
        )
    hung = [
        shard
        for shard, proc in enumerate(procs)
        if shard not in collected and proc.is_alive()
    ]
    raise FleetWorkerError(
        "fleet worker hung past the {} deadline: {}".format(
            phase,
            "; ".join(_describe_shard(s, members[s]) for s in hung) or "(unknown)",
        ),
        shards=hung,
    )


def _monitor_procs(procs, barrier, stop: threading.Event) -> None:
    """Abort the start barrier as soon as any worker dies silently."""
    while not stop.is_set():
        for proc in procs:
            if proc.exitcode not in (None, 0):
                try:
                    barrier.abort()
                except Exception:
                    pass
                return
        stop.wait(0.05)


def _merge_int_tables(
    tables: Sequence[Optional[Dict[str, Dict[str, int]]]]
) -> Dict[str, Dict[str, int]]:
    """Sum nested ``{key: {field: int}}`` tables across shards."""
    merged: Dict[str, Dict[str, int]] = {}
    for table in tables:
        for key, cell in (table or {}).items():
            target = merged.setdefault(key, {})
            for field, value in cell.items():
                target[field] = target.get(field, 0) + value
    return merged


def run_fleet(
    users: int,
    duration: float,
    workers: int = 1,
    apps: Sequence[str] = DEFAULT_APPS,
    rate_per_user: float = DEFAULT_RATE_PER_USER,
    seed: int = 0,
    max_entries_per_user: Optional[int] = None,
    max_bytes: Optional[int] = None,
    indexed_cache: bool = True,
    lazy_drain: bool = True,
    access_rtt: float = 0.055,
    trace_path: Optional[str] = None,
    trace_sample: Optional[float] = None,
    trace_seed: int = 0,
    trace_capacity: int = 65_536,
    strategy: str = "appx",
    max_entries_total: Optional[int] = None,
    adaptive_budget: bool = False,
    admission_threshold: Optional[float] = None,
    estimate_expiration: bool = False,
    warm_start: bool = False,
    learn_mode: str = "deferred",
    learn_queue_capacity: Optional[int] = None,
    learn_drain_budget: Optional[int] = None,
    telemetry: bool = False,
    slo_config: Optional[Dict[str, object]] = None,
    heartbeat_interval: Optional[float] = None,
    heartbeat_log=None,
    backpressure: bool = True,
    replicas: int = DEFAULT_REPLICAS,
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT_S,
    prom_path: Optional[str] = None,
    inject_failure: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serve one seeded scale workload across ``workers`` proxy processes.

    The supervisor consistent-hashes users onto shards, pre-draws the
    global arrival schedule with the run seed, partitions it per shard,
    and hands each worker its slice plus its own cache budget share.
    Workers build their deployments, meet on a barrier, serve, and send
    one batched payload back; the supervisor folds every payload into a
    single aggregate row whose shape matches
    :func:`~repro.experiments.scale.run_scale` plus ``workers``,
    ``fleet``, and ``shards`` keys.

    ``workers=1`` serves inline (no subprocess) replaying the identity
    partition — byte-equivalent to the serial harness under the same
    seed, which the differential tests pin.  For ``workers > 1`` the
    fleet wall clock runs from the post-barrier instant to the last
    payload collected, so requests-per-wall-second pays for fold-back
    IPC too.

    ``worker_timeout`` bounds both the start barrier and the serve
    phase; a worker that crashes, raises, or hangs surfaces as
    :class:`FleetWorkerError` naming the lost shard's user slice.
    ``inject_failure`` (``{"shard": s, "mode": "crash"|"raise"|"hang"}``)
    exists for the robustness tests.

    The live telemetry plane (``telemetry`` / ``slo_config`` /
    ``heartbeat_interval``, see :func:`run_scale`) runs *per shard*;
    with ``heartbeat_interval`` set, every worker additionally ships
    compact windowed snapshots over the result queue mid-run, which the
    supervisor folds into a :class:`HeartbeatTracker` (per-shard
    liveness, virtual-clock skew, lagging-shard flags; ``heartbeat_log``
    observes each one as it arrives).  The aggregate row then carries
    ``live`` (windows merged across shards with
    :meth:`LiveWindows.merge` — the same bucket-aligned fold-back
    semantics as ``registry.merge``), ``slo`` (the merged-window
    verdict plus per-shard passes), ``backpressure`` (summed actuation
    counters), and ``heartbeats`` (the tracker summary).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if users < workers:
        raise ValueError(
            "need at least one user per worker (users={}, workers={})".format(
                users, workers
            )
        )
    apps = tuple(apps)
    tracing = trace_path is not None or trace_sample is not None
    effective_sample = 1.0 if trace_sample is None else trace_sample

    deploy_kwargs = {
        "max_entries_per_user": max_entries_per_user,
        "max_bytes": max_bytes,
        "indexed_cache": indexed_cache,
        "lazy_drain": lazy_drain,
        "max_entries_total": max_entries_total,
        "adaptive_budget": adaptive_budget,
        "admission_threshold": admission_threshold,
        "strategy": strategy,
        "learn_mode": learn_mode,
        "learn_queue_capacity": learn_queue_capacity,
        "learn_drain_budget": learn_drain_budget,
    }
    telemetry_on = (
        telemetry or slo_config is not None or heartbeat_interval is not None
    )
    heartbeats: Optional[HeartbeatTracker] = None
    if heartbeat_interval is not None:
        heartbeats = HeartbeatTracker(
            workers, heartbeat_interval, log=heartbeat_log
        )

    # the plan deployment provides per-app step counts for the schedule
    # draw; with one worker it also serves the workload inline
    plan = _ScaleDeployment(apps, **deploy_kwargs)
    step_counts = {name: len(steps) for name, steps in plan.steps.items()}
    user_app = [apps[index % len(apps)] for index in range(users)]
    schedule = build_arrival_schedule(
        users,
        duration,
        rate_per_user,
        seed,
        step_counts,
        user_app,
        warm_start=warm_start,
        pred_positions=plan.pred_positions,
    )
    assignment = shard_users(users, workers, replicas)
    members = _shard_members(assignment, workers)
    shard_schedules = partition_schedule(schedule, assignment, workers)

    if workers == 1:
        inline_sink = None
        if heartbeats is not None:
            def inline_sink(payload):
                heartbeats.record(0, payload)

        row = run_scale(
            users=users,
            duration=duration,
            apps=apps,
            rate_per_user=rate_per_user,
            seed=seed,
            access_rtt=access_rtt,
            trace_sample=effective_sample if tracing else None,
            trace_seed=trace_seed,
            trace_capacity=trace_capacity,
            estimate_expiration=estimate_expiration,
            warm_start=warm_start,
            arrival_schedule=shard_schedules[0],
            collect_latencies=True,
            telemetry=telemetry,
            slo_config=slo_config,
            heartbeat_interval=heartbeat_interval,
            heartbeat_sink=inline_sink,
            shard=0,
            backpressure=backpressure,
            _deployment=plan,
            **deploy_kwargs,
        )
        payloads = {
            0: {
                "row": row,
                "registry": PERF.registry.snapshot(),
                "trace_records": TRACER.records() if tracing else [],
            }
        }
        wall_s = float(row["wall_s"])
    else:
        payloads, wall_s = _run_worker_pool(
            shard_schedules,
            members,
            users=users,
            duration=duration,
            workers=workers,
            apps=apps,
            rate_per_user=rate_per_user,
            seed=seed,
            access_rtt=access_rtt,
            tracing=tracing,
            effective_sample=effective_sample,
            trace_seed=trace_seed,
            trace_capacity=trace_capacity,
            estimate_expiration=estimate_expiration,
            warm_start=warm_start,
            deploy_kwargs=deploy_kwargs,
            max_entries_total=max_entries_total,
            worker_timeout=worker_timeout,
            inject_failure=inject_failure,
            telemetry=telemetry,
            slo_config=slo_config,
            heartbeat_interval=heartbeat_interval,
            backpressure=backpressure,
            heartbeats=heartbeats,
        )

    return _aggregate(
        payloads,
        members,
        wall_s=wall_s,
        users=users,
        duration=duration,
        workers=workers,
        apps=apps,
        rate_per_user=rate_per_user,
        seed=seed,
        replicas=replicas,
        worker_timeout=worker_timeout,
        tracing=tracing,
        effective_sample=effective_sample,
        trace_seed=trace_seed,
        trace_capacity=trace_capacity,
        trace_path=trace_path,
        prom_path=prom_path,
        deploy_kwargs=deploy_kwargs,
        schedule_events=len(schedule),
        slo_config=slo_config,
        heartbeats=heartbeats,
    )


def _run_worker_pool(
    shard_schedules: Sequence[ArrivalSchedule],
    members: Sequence[Sequence[int]],
    users: int,
    duration: float,
    workers: int,
    apps: Sequence[str],
    rate_per_user: float,
    seed: int,
    access_rtt: float,
    tracing: bool,
    effective_sample: float,
    trace_seed: int,
    trace_capacity: int,
    estimate_expiration: bool,
    warm_start: bool,
    deploy_kwargs: Dict[str, object],
    max_entries_total: Optional[int],
    worker_timeout: float,
    inject_failure: Optional[Dict[str, object]],
    telemetry: bool = False,
    slo_config: Optional[Dict[str, object]] = None,
    heartbeat_interval: Optional[float] = None,
    backpressure: bool = True,
    heartbeats: Optional[HeartbeatTracker] = None,
) -> Tuple[Dict[int, Dict], float]:
    """Spawn, synchronize, and collect the worker fleet (workers > 1)."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    results = context.Queue()
    barrier = context.Barrier(workers + 1)
    cache_env = os.environ.get(ENV_ENABLE) or None

    specs = []
    for shard in range(workers):
        shard_kwargs = dict(deploy_kwargs)
        if max_entries_total is not None:
            # apportion the global entry budget by shard population so
            # the fleet's total budget matches the serial run's
            shard_kwargs["max_entries_total"] = max(
                1, round(max_entries_total * len(members[shard]) / users)
            )
        specs.append(
            {
                "shard": shard,
                "apps": list(apps),
                "users": users,
                "duration": duration,
                "rate_per_user": rate_per_user,
                "seed": seed,
                "access_rtt": access_rtt,
                "events": shard_schedules[shard].events,
                "terminal_dt": shard_schedules[shard].terminal_dt,
                "deploy_kwargs": shard_kwargs,
                "trace_sample": effective_sample if tracing else None,
                "trace_seed": shard_seed(trace_seed, shard),
                "trace_capacity": trace_capacity,
                "estimate_expiration": estimate_expiration,
                "warm_start": warm_start,
                "worker_timeout": worker_timeout,
                "cache_env": cache_env,
                "inject_failure": inject_failure,
                "telemetry": telemetry,
                "slo_config": slo_config,
                "heartbeat_interval": heartbeat_interval,
                "backpressure": backpressure,
            }
        )

    procs = [
        context.Process(
            target=_fleet_worker, args=(spec, barrier, results), daemon=True
        )
        for spec in specs
    ]
    collected: Dict[int, Dict] = {}
    errors: Dict[int, str] = {}
    stop_monitor = threading.Event()
    monitor = threading.Thread(
        target=_monitor_procs, args=(procs, barrier, stop_monitor), daemon=True
    )
    try:
        for proc in procs:
            proc.start()
        monitor.start()
        try:
            barrier.wait(worker_timeout)
        except threading.BrokenBarrierError:
            _drain_queue(results, collected, errors, heartbeats)
            _raise_worker_failure(errors, procs, collected, members, "startup")
        wall_started = time.perf_counter()
        deadline = wall_started + worker_timeout
        while len(collected) < workers:
            try:
                kind, shard, payload = results.get(timeout=0.25)
            except queue_module.Empty:
                crashed_silently = any(
                    shard not in collected and proc.exitcode not in (None, 0)
                    for shard, proc in enumerate(procs)
                )
                if crashed_silently or time.perf_counter() > deadline:
                    _drain_queue(results, collected, errors, heartbeats)
                    if len(collected) == workers:
                        break
                    _raise_worker_failure(
                        errors, procs, collected, members, "serve"
                    )
                continue
            if kind == "ok":
                collected[shard] = payload
            elif kind == "hb":
                # mid-run liveness: fold the heartbeat immediately so a
                # lagging shard surfaces while the fleet is still serving
                if heartbeats is not None:
                    heartbeats.record(shard, payload)
            else:
                errors[shard] = payload
                _drain_queue(results, collected, errors, heartbeats)
                _raise_worker_failure(errors, procs, collected, members, "serve")
        wall_s = time.perf_counter() - wall_started
        # heartbeats racing the final ok messages may still sit queued
        _drain_queue(results, collected, errors, heartbeats)
    finally:
        stop_monitor.set()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
    return collected, wall_s


def _aggregate(
    payloads: Dict[int, Dict],
    members: Sequence[Sequence[int]],
    wall_s: float,
    users: int,
    duration: float,
    workers: int,
    apps: Sequence[str],
    rate_per_user: float,
    seed: int,
    replicas: int,
    worker_timeout: float,
    tracing: bool,
    effective_sample: float,
    trace_seed: int,
    trace_capacity: int,
    trace_path: Optional[str],
    prom_path: Optional[str],
    deploy_kwargs: Dict[str, object],
    schedule_events: int,
    slo_config: Optional[Dict[str, object]] = None,
    heartbeats: Optional[HeartbeatTracker] = None,
) -> Dict[str, object]:
    """Fold worker payloads into one run_scale-shaped aggregate row."""
    rows = [payloads[shard]["row"] for shard in range(workers)]

    merged = MetricRegistry()
    for shard in range(workers):
        merged.merge(payloads[shard]["registry"])

    latencies: List[float] = []
    for row in rows:
        latencies.extend(row.get("latencies_s") or [])

    def total(key: str) -> int:
        return sum(int(row[key]) for row in rows)

    requests = total("requests")
    served = total("served_prefetched")
    forwarded = total("forwarded")
    answered = served + forwarded
    sim_events = total("sim_events")

    by_signature = _merge_int_tables([row["prefetch_by_signature"] for row in rows])

    expiration_rows = [row["expiration"] for row in rows if row["expiration"]]
    expiration = None
    if expiration_rows:
        expiration = {
            key: sum(int(cell[key]) for cell in expiration_rows)
            for key in ("sites", "converged", "probes_issued", "disabled")
        }

    history = None
    if any(row["history"] for row in rows):
        history = _merge_int_tables([row["history"] for row in rows])

    trace_stats: Optional[Dict[str, object]] = None
    if tracing:
        shard_stats = [row["trace"] or {} for row in rows]
        trace_stats = {
            key: sum(int(stats.get(key, 0)) for stats in shard_stats)
            for key in ("started", "sampled", "finished", "dropped")
        }
        trace_stats["sample_rate"] = effective_sample
        trace_stats["capacity"] = trace_capacity
        # the supervisor ring holds every worker's batch: capacity is
        # the fleet-wide sum so absorption itself never drops records
        TRACER.configure(
            sample_rate=effective_sample,
            capacity=max(1, trace_capacity * workers),
            seed=trace_seed,
        )
        absorbed = 0
        for shard in range(workers):
            absorbed += TRACER.absorb(
                payloads[shard]["trace_records"],
                prefix="w{}".format(shard),
                skip_kinds=("summary",),
            )
        TRACER.append_record(
            {
                "trace_id": "summary",
                "user": "-",
                "kind": "summary",
                "spans": [],
                "tags": {
                    "prefetch_by_signature": by_signature,
                    "workers": workers,
                },
            }
        )
        trace_stats["absorbed"] = absorbed
        trace_stats["buffered"] = len(TRACER.records())
        if trace_path is not None:
            trace_stats["exported"] = TRACER.export_jsonl(trace_path)
            trace_stats["path"] = trace_path

    # ---- live telemetry plane fold-back -----------------------------
    # Bucket indices are absolute (int(now // width)), so every shard's
    # windows share one virtual-time grid and merge bucket-wise exactly
    # like registry.merge — order-independent and associative.
    live_rows = [row.get("live") for row in rows]
    live_agg: Optional[Dict[str, object]] = None
    slo_agg: Optional[Dict[str, object]] = None
    bp_rows = [row.get("backpressure") for row in rows]
    bp_agg: Optional[Dict[str, object]] = None
    if any(live_rows):
        present = [live for live in live_rows if live]
        windows = LiveWindows.from_snapshot(present[0]["snapshot"])
        for live in present[1:]:
            windows.merge(live["snapshot"])
        live_now = max(float(live["readings"]["sim_now"]) for live in present)
        live_agg = {
            "ticks": sum(int(live["ticks"]) for live in present),
            "heartbeats_sent": sum(int(live["heartbeats_sent"]) for live in present),
            "alerts": sum(int(live["alerts"]) for live in present),
            "readings": standard_readings(windows, live_now),
            "snapshot": windows.snapshot(),
        }
        if slo_config is not None:
            # the fleet verdict re-runs the engine over the MERGED
            # windows (burn rates over fleet-wide bad/total), while
            # alert counts and per-shard passes come from the shards —
            # the supervisor never saw the mid-run transitions
            shard_reports = [row.get("slo") for row in rows]
            slo_agg = SloEngine(slo_config).report(windows, live_now)
            slo_agg["alerts"] = sum(
                int((report or {}).get("alerts", 0)) for report in shard_reports
            )
            slo_agg["shard_passed"] = [
                bool((report or {}).get("passed", True))
                for report in shard_reports
            ]
            slo_agg["passed"] = bool(slo_agg["passed"]) and all(
                slo_agg["shard_passed"]
            )
    if any(bp_rows):
        bp_agg = {
            key: sum(int((stats or {}).get(key, 0)) for stats in bp_rows)
            for key in (
                "budget_grow",
                "budget_shrink",
                "admission_tighten",
                "admission_relax",
            )
        }
        for key in ("drain_budgets", "base_budgets"):
            bp_agg[key] = [
                value for stats in bp_rows for value in (stats or {}).get(key, [])
            ]

    if prom_path is not None:
        merged.dump_prometheus(prom_path)

    aggregate: Dict[str, object] = {
        "users": users,
        "workers": workers,
        "apps": list(apps),
        "duration_s": duration,
        "rate_per_user": rate_per_user,
        "seed": seed,
        "requests": requests,
        "requests_sent": total("requests_sent"),
        "wall_s": wall_s,
        "per_request_wall_us": (1e6 * wall_s / requests) if requests else 0.0,
        "requests_per_wall_s": (requests / wall_s) if wall_s else 0.0,
        "sim_events": sim_events,
        "sim_events_per_wall_s": (sim_events / wall_s) if wall_s else 0.0,
        "latency_p50_ms": 1000 * percentile(latencies, 50) if latencies else 0.0,
        "latency_p95_ms": 1000 * percentile(latencies, 95) if latencies else 0.0,
        "latency_p99_ms": 1000 * percentile(latencies, 99) if latencies else 0.0,
        "hit_rate": (served / answered) if answered else 0.0,
        "served_prefetched": served,
        "forwarded": forwarded,
        "prefetch_issued": total("prefetch_issued"),
        # per-shard peaks are not simultaneous; their sum is the upper
        # bound on the fleet-wide peak, matching the budget apportioning
        "peak_cache_entries": total("peak_cache_entries"),
        "final_cache_entries": total("final_cache_entries"),
        "cache_stored": total("cache_stored"),
        "cache_expired_evictions": total("cache_expired_evictions"),
        "cache_lru_evictions": total("cache_lru_evictions"),
        "cache_wheel_purged": total("cache_wheel_purged"),
        "peak_rss_bytes": total("peak_rss_bytes"),
        "indexed_cache": deploy_kwargs["indexed_cache"],
        "lazy_drain": deploy_kwargs["lazy_drain"],
        "max_entries_per_user": deploy_kwargs["max_entries_per_user"],
        "max_bytes": deploy_kwargs["max_bytes"],
        "max_entries_total": deploy_kwargs["max_entries_total"],
        "adaptive_budget": deploy_kwargs["adaptive_budget"],
        "admission_threshold": deploy_kwargs["admission_threshold"],
        "strategy": deploy_kwargs["strategy"],
        "learn_mode": deploy_kwargs["learn_mode"],
        "learn_queue_overflows": total("learn_queue_overflows"),
        "learn_deferred_drained": total("learn_deferred_drained"),
        "prefetch_wasted": total("prefetch_wasted"),
        "skipped_admission": total("skipped_admission"),
        "prefetch_by_signature": by_signature,
        "expiration": expiration,
        "history": history,
        "stage_latency_us": stage_latency_from_registry(merged),
        "miss_causes": miss_causes_from_counters(merged.counters),
        "trace": trace_stats,
        "live": live_agg,
        "slo": slo_agg,
        "backpressure": bp_agg,
        "heartbeats": heartbeats.summary() if heartbeats is not None else None,
        "fleet": {
            "replicas": replicas,
            "hash": "blake2b-64",
            "worker_timeout_s": worker_timeout,
            "schedule_events": schedule_events,
            "shard_users": [len(shard_members) for shard_members in members],
            "shard_requests": [int(row["requests"]) for row in rows],
            "shard_wall_s": [float(row["wall_s"]) for row in rows],
            "supervisor_wall_s": wall_s,
        },
        "shards": [
            {
                "shard": shard,
                "users": len(members[shard]),
                "requests": int(rows[shard]["requests"]),
                "hit_rate": float(rows[shard]["hit_rate"]),
                "wall_s": float(rows[shard]["wall_s"]),
                "sim_events": int(rows[shard]["sim_events"]),
                "peak_rss_bytes": int(rows[shard]["peak_rss_bytes"]),
            }
            for shard in range(workers)
        ],
    }
    return aggregate


def format_fleet_table(rows: Sequence[Dict[str, object]]) -> str:
    """Aligned worker-count sweep table (BENCH + CI artifact)."""
    if not rows:
        return "(no fleet rows)"
    first = rows[0]
    lines = [
        "fleet scale-out: users={} duration={}s rate={}/s apps={} seed={}".format(
            first["users"],
            first["duration_s"],
            first["rate_per_user"],
            ",".join(first["apps"]),
            first["seed"],
        ),
        "{:<8} {:>9} {:>11} {:>11} {:>9} {:>8} {:>9}".format(
            "workers", "requests", "req/wall_s", "us/request", "hit", "p50_ms",
            "speedup",
        ),
    ]
    base = None
    for row in rows:
        rate = float(row["requests_per_wall_s"])
        if base is None:
            base = rate or None
        lines.append(
            "{:<8} {:>9} {:>11.0f} {:>11.1f} {:>7.1f}% {:>8.1f} {:>8}".format(
                row["workers"],
                row["requests"],
                rate,
                float(row["per_request_wall_us"]),
                100.0 * float(row["hit_rate"]),
                float(row["latency_p50_ms"]),
                "{:.2f}x".format(rate / base) if base else "-",
            )
        )
    return "\n".join(lines)
